"""Metamodels of containers and iterators.

"Our solution is based on the concept of metaprogramming.  An automatic code
generator produces customized versions of containers and iterators from a
code template.  The template includes information on the available
operations, shared resources and parameterized code fragments."

A metamodel is therefore: the *functional interface* (operations with their
parameters), the set of *bindings* it can be implemented over (each with its
own implementation interface), and the tunable generation parameters.  The
generator (:mod:`repro.metagen.generator`) consumes a metamodel plus a
:class:`GenerationConfig` and emits VHDL, including only "those resources
that are really used by the selected operations".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Sequence


@dataclass(frozen=True)
class OperationParam:
    """A data parameter of an operation (appears as a port of the entity)."""

    name: str
    direction: str            # "in" or "out", from the container's viewpoint
    width: Optional[int] = None  # None means "the element width"


@dataclass(frozen=True)
class Operation:
    """One operation of a functional interface (e.g. ``pop``, ``read``, ``index``)."""

    name: str
    params: Sequence[OperationParam] = ()
    has_done: bool = True
    description: str = ""


@dataclass(frozen=True)
class ImplementationPort:
    """One port of an implementation interface (the ``p_*`` ports of Fig. 4/5)."""

    name: str
    direction: str
    width: Optional[int] = None  # None = element width; "addr" resolved separately
    is_address: bool = False


@dataclass(frozen=True)
class BindingSpec:
    """How a container kind maps onto one physical device."""

    name: str
    implementation_ports: Sequence[ImplementationPort]
    #: Template key used by the generator for the architecture body.
    template: str
    #: Whether the device sits off-chip (affects arbitration/IO generation).
    external: bool = False
    description: str = ""


@dataclass
class GenerationConfig:
    """Designer-selected parameters of one generation run.

    This is the set of "right values for the different parameters considered
    in the metamodel" the paper says the designer must choose: element type
    width, depth, the physical binding, which operations the surrounding
    design actually uses, the physical bus width (for width adaptation) and
    whether the physical resource is shared (for arbitration).
    """

    name: str
    data_width: int = 8
    depth: int = 512
    binding: str = "fifo"
    used_operations: Optional[FrozenSet[str]] = None
    bus_width: Optional[int] = None
    shared_resource: bool = False
    sharers: int = 1

    def effective_bus_width(self) -> int:
        return self.bus_width or self.data_width

    def beats_per_element(self) -> int:
        """How many physical transfers one element needs (width adaptation)."""
        bus = self.effective_bus_width()
        if self.data_width % bus:
            raise ValueError(
                f"data width {self.data_width} is not a multiple of the "
                f"bus width {bus}")
        return self.data_width // bus


@dataclass
class ContainerMetamodel:
    """Metamodel of one container kind."""

    kind: str
    operations: Sequence[Operation]
    bindings: Dict[str, BindingSpec]
    description: str = ""

    def operation_names(self) -> List[str]:
        return [op.name for op in self.operations]

    def get_operation(self, name: str) -> Operation:
        for op in self.operations:
            if op.name == name:
                return op
        raise KeyError(f"container {self.kind!r} has no operation {name!r}")

    def get_binding(self, name: str) -> BindingSpec:
        try:
            return self.bindings[name]
        except KeyError:
            raise KeyError(
                f"container {self.kind!r} has no binding {name!r}; "
                f"available: {sorted(self.bindings)}") from None

    def select_operations(self, config: GenerationConfig) -> List[Operation]:
        """The operations to generate: all of them, or the configured subset."""
        if config.used_operations is None:
            return list(self.operations)
        unknown = set(config.used_operations) - set(self.operation_names())
        if unknown:
            raise KeyError(
                f"unknown operations {sorted(unknown)} for container {self.kind!r}")
        return [op for op in self.operations if op.name in config.used_operations]


@dataclass
class IteratorMetamodel:
    """Metamodel of one iterator family ("one iterator metamodel must be
    defined for each kind of container")."""

    container_kind: str
    traversal: str
    operations: Sequence[Operation]
    readable: bool = True
    writable: bool = False
    description: str = ""

    def operation_names(self) -> List[str]:
        return [op.name for op in self.operations]

    def select_operations(self, config: GenerationConfig) -> List[Operation]:
        if config.used_operations is None:
            return list(self.operations)
        return [op for op in self.operations if op.name in config.used_operations]


# ---------------------------------------------------------------------------
# The standard metamodels of the basic component library
# ---------------------------------------------------------------------------


def _element(name: str, direction: str) -> OperationParam:
    return OperationParam(name=name, direction=direction, width=None)


READ_BUFFER_METAMODEL = ContainerMetamodel(
    kind="read_buffer",
    description="Sequential input container filled by the environment.",
    operations=(
        Operation("empty", params=(OperationParam("is_empty", "out", 1),),
                  has_done=False, description="query whether elements are available"),
        Operation("size", params=(OperationParam("count", "out", 16),),
                  has_done=False, description="query the number of stored elements"),
        Operation("pop", params=(_element("data", "out"),),
                  description="retrieve and consume the next element"),
    ),
    bindings={
        "fifo": BindingSpec(
            name="fifo", template="fifo_wrapper",
            description="on-chip FIFO core wrapper (Figure 4)",
            implementation_ports=(
                ImplementationPort("p_empty", "in", 1),
                ImplementationPort("p_read", "out", 1),
                ImplementationPort("p_data", "in"),
            )),
        "sram": BindingSpec(
            name="sram", template="sram_circular_buffer", external=True,
            description="circular buffer over external SRAM (Figure 5)",
            implementation_ports=(
                ImplementationPort("p_addr", "out", None, is_address=True),
                ImplementationPort("p_data", "in"),
                ImplementationPort("req", "out", 1),
                ImplementationPort("ack", "in", 1),
            )),
        "linebuffer3": BindingSpec(
            name="linebuffer3", template="linebuffer3_wrapper",
            description="3-line buffer delivering pixel columns (blur design)",
            implementation_ports=(
                ImplementationPort("p_push", "out", 1),
                ImplementationPort("p_din", "out"),
                ImplementationPort("p_col_top", "in"),
                ImplementationPort("p_col_mid", "in"),
                ImplementationPort("p_col_bot", "in"),
                ImplementationPort("p_window_valid", "in", 1),
            )),
    },
)


WRITE_BUFFER_METAMODEL = ContainerMetamodel(
    kind="write_buffer",
    description="Sequential output container drained by the environment.",
    operations=(
        Operation("full", params=(OperationParam("is_full", "out", 1),),
                  has_done=False, description="query whether space is available"),
        Operation("size", params=(OperationParam("count", "out", 16),),
                  has_done=False, description="query the number of stored elements"),
        Operation("push", params=(_element("data", "in"),),
                  description="store the next element"),
    ),
    bindings={
        "fifo": BindingSpec(
            name="fifo", template="fifo_wrapper",
            description="on-chip FIFO core wrapper",
            implementation_ports=(
                ImplementationPort("p_full", "in", 1),
                ImplementationPort("p_write", "out", 1),
                ImplementationPort("p_data", "out"),
            )),
        "sram": BindingSpec(
            name="sram", template="sram_circular_buffer", external=True,
            description="circular buffer over external SRAM",
            implementation_ports=(
                ImplementationPort("p_addr", "out", None, is_address=True),
                ImplementationPort("p_data", "out"),
                ImplementationPort("req", "out", 1),
                ImplementationPort("ack", "in", 1),
            )),
    },
)


QUEUE_METAMODEL = ContainerMetamodel(
    kind="queue",
    description="FIFO-ordered queue with both ends on the algorithm side.",
    operations=(
        Operation("empty", params=(OperationParam("is_empty", "out", 1),),
                  has_done=False),
        Operation("full", params=(OperationParam("is_full", "out", 1),),
                  has_done=False),
        Operation("pop", params=(_element("data", "out"),)),
        Operation("push", params=(_element("data_in", "in"),)),
    ),
    bindings={
        "fifo": BindingSpec(
            name="fifo", template="fifo_wrapper",
            implementation_ports=(
                ImplementationPort("p_empty", "in", 1),
                ImplementationPort("p_full", "in", 1),
                ImplementationPort("p_read", "out", 1),
                ImplementationPort("p_write", "out", 1),
                ImplementationPort("p_rdata", "in"),
                ImplementationPort("p_wdata", "out"),
            )),
        "sram": BindingSpec(
            name="sram", template="sram_circular_buffer", external=True,
            implementation_ports=(
                ImplementationPort("p_addr", "out", None, is_address=True),
                ImplementationPort("p_data", "inout"),
                ImplementationPort("req", "out", 1),
                ImplementationPort("ack", "in", 1),
            )),
    },
)


STACK_METAMODEL = ContainerMetamodel(
    kind="stack",
    description="LIFO stack.",
    operations=(
        Operation("empty", params=(OperationParam("is_empty", "out", 1),),
                  has_done=False),
        Operation("full", params=(OperationParam("is_full", "out", 1),),
                  has_done=False),
        Operation("pop", params=(_element("data", "out"),)),
        Operation("push", params=(_element("data_in", "in"),)),
    ),
    bindings={
        "lifo": BindingSpec(
            name="lifo", template="lifo_wrapper",
            implementation_ports=(
                ImplementationPort("p_empty", "in", 1),
                ImplementationPort("p_full", "in", 1),
                ImplementationPort("p_pop", "out", 1),
                ImplementationPort("p_push", "out", 1),
                ImplementationPort("p_rdata", "in"),
                ImplementationPort("p_wdata", "out"),
            )),
        "sram": BindingSpec(
            name="sram", template="sram_stack", external=True,
            implementation_ports=(
                ImplementationPort("p_addr", "out", None, is_address=True),
                ImplementationPort("p_data", "inout"),
                ImplementationPort("req", "out", 1),
                ImplementationPort("ack", "in", 1),
            )),
    },
)


VECTOR_METAMODEL = ContainerMetamodel(
    kind="vector",
    description="Random-access vector.",
    operations=(
        Operation("read", params=(OperationParam("addr", "in", None),
                                  _element("data", "out"))),
        Operation("write", params=(OperationParam("addr_w", "in", None),
                                   _element("data_in", "in"))),
        Operation("size", params=(OperationParam("count", "out", 16),),
                  has_done=False),
    ),
    bindings={
        "bram": BindingSpec(
            name="bram", template="bram_port",
            implementation_ports=(
                ImplementationPort("p_en", "out", 1),
                ImplementationPort("p_we", "out", 1),
                ImplementationPort("p_addr", "out", None, is_address=True),
                ImplementationPort("p_din", "out"),
                ImplementationPort("p_dout", "in"),
            )),
        "sram": BindingSpec(
            name="sram", template="sram_port", external=True,
            implementation_ports=(
                ImplementationPort("p_addr", "out", None, is_address=True),
                ImplementationPort("p_data", "inout"),
                ImplementationPort("req", "out", 1),
                ImplementationPort("ack", "in", 1),
            )),
        "registers": BindingSpec(
            name="registers", template="register_file",
            implementation_ports=()),
    },
)


ASSOC_ARRAY_METAMODEL = ContainerMetamodel(
    kind="assoc_array",
    description="Associative (key/value) array.",
    operations=(
        Operation("lookup", params=(OperationParam("key", "in", None),
                                    OperationParam("found", "out", 1),
                                    _element("value", "out"))),
        Operation("insert", params=(OperationParam("key_in", "in", None),
                                    _element("value_in", "in"))),
        Operation("remove", params=(OperationParam("key_rm", "in", None),)),
    ),
    bindings={
        "cam": BindingSpec(
            name="cam", template="cam_wrapper",
            implementation_ports=(
                ImplementationPort("p_match_key", "out", None),
                ImplementationPort("p_hit", "in", 1),
                ImplementationPort("p_hit_value", "in"),
                ImplementationPort("p_insert", "out", 1),
                ImplementationPort("p_remove", "out", 1),
            )),
    },
)


#: All standard container metamodels, keyed by kind.
CONTAINER_METAMODELS: Dict[str, ContainerMetamodel] = {
    model.kind: model
    for model in (READ_BUFFER_METAMODEL, WRITE_BUFFER_METAMODEL, QUEUE_METAMODEL,
                  STACK_METAMODEL, VECTOR_METAMODEL, ASSOC_ARRAY_METAMODEL)
}


#: Iterator metamodels: one per (container kind, traversal role).
ITERATOR_METAMODELS: Dict[str, IteratorMetamodel] = {
    "read_buffer_forward": IteratorMetamodel(
        container_kind="read_buffer", traversal="forward", readable=True,
        operations=(Operation("inc"), Operation("read", params=(_element("data", "out"),))),
        description="forward input iterator (rbuffer_it)"),
    "write_buffer_forward": IteratorMetamodel(
        container_kind="write_buffer", traversal="forward", readable=False,
        writable=True,
        operations=(Operation("inc"), Operation("write", params=(_element("data", "in"),))),
        description="forward output iterator (wbuffer_it)"),
    "queue_forward_in": IteratorMetamodel(
        container_kind="queue", traversal="forward", readable=True,
        operations=(Operation("inc"), Operation("read", params=(_element("data", "out"),)))),
    "queue_forward_out": IteratorMetamodel(
        container_kind="queue", traversal="forward", writable=True, readable=False,
        operations=(Operation("inc"), Operation("write", params=(_element("data", "in"),)))),
    "vector_random": IteratorMetamodel(
        container_kind="vector", traversal="random", readable=True, writable=True,
        operations=(Operation("inc"), Operation("dec"),
                    Operation("read", params=(_element("data", "out"),)),
                    Operation("write", params=(_element("data", "in"),)),
                    Operation("index", params=(OperationParam("pos", "in", None),)))),
    "read_buffer_window": IteratorMetamodel(
        container_kind="read_buffer", traversal="window", readable=True,
        operations=(Operation("inc"),
                    Operation("read", params=(_element("col_top", "out"),
                                              _element("col_mid", "out"),
                                              _element("col_bot", "out"))))),
}
