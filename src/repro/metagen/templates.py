"""Parameterised VHDL architecture templates.

"The template includes information on the available operations, shared
resources and parameterized code fragments."  Each function here returns the
architecture body for one binding, given the generation parameters.  The
fragments are deliberately close to what the paper describes:

* the FIFO wrapper "is simply a wrapper of the FIFO core and hardly includes
  any logic";
* the SRAM circular buffer "encloses a little finite state machine that
  controls memory access, as well as a few registers to store the begin and
  end pointers of the queue (implemented as a circular buffer)".
"""

from __future__ import annotations

from typing import List

from .metamodel import GenerationConfig


def fifo_wrapper_body(config: GenerationConfig, operations: List[str]) -> List[str]:
    """Concurrent assignments renaming the FIFO core ports (Figure 4 style)."""
    statements: List[str] = ["-- pure wrapper of the FIFO core: no extra logic"]
    if "empty" in operations:
        statements.append("is_empty <= p_empty;")
    if "full" in operations:
        statements.append("is_full <= p_full;")
    if "size" in operations:
        statements.append("count <= (others => '0');  "
                          "-- occupancy is tracked inside the FIFO core")
    if "pop" in operations:
        statements.append("p_read <= m_pop;")
        statements.append("data <= p_data;")
        statements.append("done <= m_pop and not p_empty;")
    if "push" in operations:
        statements.append("p_write <= m_push;")
        statements.append("p_data <= data_in;" if "pop" not in operations
                          else "p_wdata <= data_in;")
        statements.append("done <= m_push and not p_full;")
    return statements


def lifo_wrapper_body(config: GenerationConfig, operations: List[str]) -> List[str]:
    """Concurrent assignments renaming the LIFO core ports."""
    statements: List[str] = ["-- pure wrapper of the LIFO core"]
    if "empty" in operations:
        statements.append("is_empty <= p_empty;")
    if "full" in operations:
        statements.append("is_full <= p_full;")
    if "pop" in operations:
        statements.append("p_pop <= m_pop;")
        statements.append("data <= p_rdata;")
    if "push" in operations:
        statements.append("p_push <= m_push;")
        statements.append("p_wdata <= data_in;")
    return statements


def sram_circular_buffer_body(config: GenerationConfig,
                              operations: List[str]) -> List[str]:
    """Pointer-FSM architecture for the external-SRAM circular buffer (Fig. 5)."""
    beats = config.beats_per_element()
    statements: List[str] = [
        "-- circular buffer over external SRAM: begin/end pointer registers",
        "-- plus an access FSM driving the req/ack handshake",
    ]
    process_lines = [
        "ctrl: process(clk)",
        "begin",
        "  if rising_edge(clk) then",
        "    if rst = '1' then",
        "      head_ptr  <= (others => '0');",
        "      tail_ptr  <= (others => '0');",
        "      occupancy <= (others => '0');",
        "      state     <= st_idle;",
        "    else",
        "      case state is",
        "        when st_idle =>",
    ]
    if "push" in operations:
        process_lines += [
            "          if hold_valid = '1' and occupancy /= DEPTH then",
            "            p_addr <= std_logic_vector(tail_ptr);",
            "            req    <= '1';",
            "            state  <= st_write;",
        ]
    if "pop" in operations:
        keyword = "elsif" if "push" in operations else "if"
        process_lines += [
            f"          {keyword} occupancy /= 0 and prefetch_valid = '0' then",
            "            p_addr <= std_logic_vector(head_ptr);",
            "            req    <= '1';",
            "            state  <= st_read;",
            "          end if;",
        ]
    elif "push" in operations:
        process_lines.append("          end if;")
    if "push" in operations:
        process_lines += [
            "        when st_write =>",
            "          if ack = '1' then",
            "            tail_ptr  <= tail_ptr + 1;",
            "            occupancy <= occupancy + 1;",
            "            req       <= '0';",
            "            state     <= st_release;",
            "          end if;",
        ]
    if "pop" in operations:
        process_lines += [
            "        when st_read =>",
            "          if ack = '1' then",
            "            prefetch       <= p_data;",
            "            prefetch_valid <= '1';",
            "            head_ptr       <= head_ptr + 1;",
            "            occupancy      <= occupancy - 1;",
            "            req            <= '0';",
            "            state          <= st_release;",
            "          end if;",
        ]
    process_lines += [
        "        when st_release =>",
        "          if ack = '0' then",
        "            state <= st_idle;",
        "          end if;",
        "        when others =>",
        "          state <= st_idle;",
        "      end case;",
        "    end if;",
        "  end if;",
        "end process;",
    ]
    statements.append("\n".join(process_lines))
    if beats > 1:
        statements.append(
            f"-- width adaptation: {config.data_width}-bit elements moved as "
            f"{beats} x {config.effective_bus_width()}-bit transfers "
            f"(beat counter 0 to {beats - 1})")
    if "empty" in operations:
        statements.append("is_empty <= '1' when occupancy = 0 else '0';")
    if "full" in operations:
        statements.append("is_full <= '1' when occupancy = DEPTH else '0';")
    if "size" in operations:
        statements.append("count <= std_logic_vector(occupancy);")
    if "pop" in operations:
        statements.append("data <= prefetch;")
        statements.append("done <= m_pop and prefetch_valid;")
    if "push" in operations:
        statements.append("done <= m_push and not is_full;")
    return statements


def sram_stack_body(config: GenerationConfig, operations: List[str]) -> List[str]:
    """Stack-pointer FSM for a stack bound to external SRAM."""
    statements = [
        "-- stack over external SRAM: stack-pointer register plus access FSM",
        "sp_proc: process(clk)",
        "begin",
        "  if rising_edge(clk) then",
        "    if rst = '1' then",
        "      stack_ptr <= (others => '0');",
        "    elsif push_accepted = '1' then",
        "      stack_ptr <= stack_ptr + 1;",
        "    elsif pop_accepted = '1' then",
        "      stack_ptr <= stack_ptr - 1;",
        "    end if;",
        "  end if;",
        "end process;",
    ]
    return ["\n".join(statements)]


def bram_port_body(config: GenerationConfig, operations: List[str]) -> List[str]:
    """Registered-read block-RAM access for the vector container."""
    statements: List[str] = ["-- vector over on-chip block RAM (registered read)"]
    if "read" in operations:
        statements.append("p_en <= m_read or m_write;" if "write" in operations
                          else "p_en <= m_read;")
        statements.append("p_addr <= addr;")
        statements.append("data <= p_dout;")
    if "write" in operations:
        statements.append("p_we <= m_write;")
        statements.append("p_din <= data_in;")
    statements.append("done <= access_pending;  -- pulses one cycle after p_en")
    return statements


def sram_port_body(config: GenerationConfig, operations: List[str]) -> List[str]:
    """Req/ack access for the vector container over external SRAM."""
    return [
        "-- vector over external SRAM: req/ack handshake per access",
        "req  <= m_read or m_write;",
        "p_addr <= addr;",
        "data <= p_data;",
        "done <= ack;",
    ]


def register_file_body(config: GenerationConfig, operations: List[str]) -> List[str]:
    """Register-file storage for small vectors."""
    return [
        "-- vector over a register file (combinational read)",
        f"regs: for i in 0 to {config.depth - 1} generate",
        "  -- one register per element",
        "end generate;",
        "data <= regs_array(to_integer(unsigned(addr)));",
        "done <= m_read or m_write;",
    ]


def linebuffer3_wrapper_body(config: GenerationConfig,
                             operations: List[str]) -> List[str]:
    """Wrapper of the 3-line buffer used by the blur read buffer."""
    return [
        "-- wrapper of the 3-line buffer core: exposes the pixel column",
        "p_push <= m_pop;",
        "p_din  <= stream_data;",
        "data   <= p_col_mid;",
        "done   <= m_pop and p_window_valid;",
    ]


def cam_wrapper_body(config: GenerationConfig, operations: List[str]) -> List[str]:
    """Wrapper of the content-addressable memory for the associative array."""
    statements = ["-- wrapper of the CAM core"]
    if "lookup" in operations:
        statements += ["p_match_key <= key;", "found <= p_hit;",
                       "value <= p_hit_value;", "done <= m_lookup;"]
    if "insert" in operations:
        statements.append("p_insert <= m_insert;")
    if "remove" in operations:
        statements.append("p_remove <= m_remove;")
    return statements


#: Template registry consumed by the generator.
TEMPLATES = {
    "fifo_wrapper": fifo_wrapper_body,
    "lifo_wrapper": lifo_wrapper_body,
    "sram_circular_buffer": sram_circular_buffer_body,
    "sram_stack": sram_stack_body,
    "bram_port": bram_port_body,
    "sram_port": sram_port_body,
    "register_file": register_file_body,
    "linebuffer3_wrapper": linebuffer3_wrapper_body,
    "cam_wrapper": cam_wrapper_body,
}
