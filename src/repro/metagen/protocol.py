"""Communication-protocol selection.

"Metaprogramming ... also provides transparent selection of the communication
protocol between components.  Here transparency refers to the model, not to
the designer that must select the right values for the different parameters
considered in the metamodel."

This module enumerates the inter-component protocols the generator knows how
to emit, the properties that distinguish them, and a selection function that
picks the cheapest protocol compatible with the binding's timing behaviour —
the choice is invisible to the model (algorithms only see iterators), but the
designer can still override it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional


@dataclass(frozen=True)
class ProtocolSpec:
    """One point-to-point communication protocol."""

    name: str
    #: Number of control signals added to the data ports.
    control_signals: int
    #: Whether the consumer can stall the producer.
    supports_backpressure: bool
    #: Whether transfers may take a variable number of cycles.
    supports_variable_latency: bool
    #: Minimum cycles per transfer under ideal conditions.
    min_cycles_per_transfer: int
    description: str = ""


#: Simple strobe: one enable signal, fixed single-cycle transfers.
STROBE = ProtocolSpec(
    name="strobe", control_signals=1, supports_backpressure=False,
    supports_variable_latency=False, min_cycles_per_transfer=1,
    description="single enable strobe; both sides must be always-ready")

#: Valid/ready streaming handshake (the stream interfaces of the library).
VALID_READY = ProtocolSpec(
    name="valid_ready", control_signals=2, supports_backpressure=True,
    supports_variable_latency=False, min_cycles_per_transfer=1,
    description="AXI-stream-style handshake; one transfer per cycle possible")

#: Four-phase request/acknowledge (the external SRAM interface of Figure 5).
REQ_ACK = ProtocolSpec(
    name="req_ack", control_signals=2, supports_backpressure=True,
    supports_variable_latency=True, min_cycles_per_transfer=3,
    description="four-phase handshake tolerating arbitrary device latency")

#: Strobe plus done pulse (the iterator operation protocol of Table 2).
STROBE_DONE = ProtocolSpec(
    name="strobe_done", control_signals=2, supports_backpressure=True,
    supports_variable_latency=True, min_cycles_per_transfer=1,
    description="operation strobe with completion pulse; single cycle when "
                "the binding allows, multi-cycle otherwise")


PROTOCOLS: Dict[str, ProtocolSpec] = {
    spec.name: spec for spec in (STROBE, VALID_READY, REQ_ACK, STROBE_DONE)
}


def select_protocol(fixed_latency: bool, needs_backpressure: bool,
                    override: Optional[str] = None) -> ProtocolSpec:
    """Pick the cheapest protocol meeting the stated requirements.

    Parameters
    ----------
    fixed_latency:
        True when the binding always completes an operation in the same
        number of cycles (FIFO, register file); False for req/ack devices.
    needs_backpressure:
        True when the consumer may stall (almost always true in the library).
    override:
        Explicit designer choice; validated against the requirements.
    """
    if override is not None:
        spec = PROTOCOLS[override]
        if not fixed_latency and not spec.supports_variable_latency:
            raise ValueError(
                f"protocol {override!r} cannot express variable-latency accesses")
        if needs_backpressure and not spec.supports_backpressure:
            raise ValueError(f"protocol {override!r} has no backpressure")
        return spec
    candidates = [spec for spec in PROTOCOLS.values()
                  if (fixed_latency or spec.supports_variable_latency)
                  and (not needs_backpressure or spec.supports_backpressure)]
    # Cheapest: fewest control signals, then lowest per-transfer latency.
    return min(candidates,
               key=lambda spec: (spec.control_signals, spec.min_cycles_per_transfer))


def protocol_for_binding(binding: str, override: Optional[str] = None) -> ProtocolSpec:
    """Protocol used between an iterator and a container of the given binding."""
    fixed = binding in ("fifo", "lifo", "registers", "linebuffer3", "cam", "bram")
    return select_protocol(fixed_latency=fixed, needs_backpressure=True,
                           override=override)
