"""The metaprogramming code generator.

Consumes a container or iterator metamodel plus a :class:`GenerationConfig`
and produces a customised VHDL component, applying the transformations the
paper attributes to the generator:

* **operation pruning** — "including only those resources that are really
  used by the selected operations";
* **width adaptation** — splitting wide elements into several physical
  transfers when the bus is narrower than the element;
* **arbitration** — emitting shared-resource arbitration when the physical
  device is shared (delegated to :mod:`repro.metagen.arbiter_gen`);
* **protocol selection** — choosing the inter-component protocol from the
  binding's timing behaviour (:mod:`repro.metagen.protocol`).

The functions :func:`figure4_rbuffer_fifo` and :func:`figure5_rbuffer_sram`
regenerate the two concrete entities printed in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..rtl import clog2
from .arbiter_gen import generate_arbiter_vhdl
from .metamodel import (
    CONTAINER_METAMODELS,
    ITERATOR_METAMODELS,
    ContainerMetamodel,
    GenerationConfig,
    IteratorMetamodel,
    Operation,
)
from .protocol import ProtocolSpec, protocol_for_binding
from .templates import TEMPLATES
from .vhdl import IN, OUT, Architecture, Entity, Port, VHDLFile, std_logic, std_logic_vector
from .width_adapter import WidthAdaptationPlan


@dataclass
class GeneratedComponent:
    """The result of one generation run."""

    vhdl: VHDLFile
    config: GenerationConfig
    operations: List[str]
    protocol: ProtocolSpec
    width_plan: WidthAdaptationPlan
    extra_files: List[VHDLFile] = field(default_factory=list)

    @property
    def name(self) -> str:
        return self.vhdl.name

    def emit(self) -> str:
        return self.vhdl.emit()

    def all_files(self) -> List[VHDLFile]:
        return [self.vhdl] + list(self.extra_files)


class CodeGenerator:
    """Generate VHDL for containers and iterators from their metamodels."""

    def __init__(self,
                 container_metamodels: Optional[Dict[str, ContainerMetamodel]] = None,
                 iterator_metamodels: Optional[Dict[str, IteratorMetamodel]] = None) -> None:
        self.container_metamodels = dict(container_metamodels or CONTAINER_METAMODELS)
        self.iterator_metamodels = dict(iterator_metamodels or ITERATOR_METAMODELS)

    # -- port construction helpers ------------------------------------------------------

    def _param_width(self, width: Optional[int], config: GenerationConfig) -> int:
        bus = config.effective_bus_width()
        return bus if width is None else width

    def _method_ports(self, operations: List[Operation],
                      config: GenerationConfig) -> List[Port]:
        """Method strobes of the functional interface (``m_pop``, ``m_push`` ...)."""
        ports: List[Port] = []
        for op in operations:
            ports.append(Port(f"m_{op.name}", IN, std_logic(),
                              comment=op.description))
        return ports

    def _param_ports(self, operations: List[Operation],
                     config: GenerationConfig) -> List[Port]:
        """Data/status parameters of the functional interface, plus ``done``."""
        ports: List[Port] = []
        seen = set()
        needs_done = False
        for op in operations:
            for param in op.params:
                if param.name in seen:
                    continue
                seen.add(param.name)
                width = self._param_width(param.width, config)
                vhdl_type = std_logic() if width == 1 else std_logic_vector(width)
                direction = OUT if param.direction == "out" else IN
                ports.append(Port(param.name, direction, vhdl_type))
            needs_done = needs_done or op.has_done
        if needs_done:
            ports.append(Port("done", OUT, std_logic()))
        return ports

    def _implementation_ports(self, metamodel: ContainerMetamodel,
                              config: GenerationConfig) -> List[Port]:
        """The ``p_*`` ports talking to the physical device (Figure 4/5)."""
        binding = metamodel.get_binding(config.binding)
        ports: List[Port] = []
        for impl_port in binding.implementation_ports:
            if impl_port.is_address:
                width = max(1, clog2(max(2, config.depth * config.beats_per_element())))
            elif impl_port.width is None:
                width = config.effective_bus_width()
            else:
                width = impl_port.width
            vhdl_type = std_logic() if width == 1 else std_logic_vector(width)
            direction = {"in": IN, "out": OUT}.get(impl_port.direction,
                                                   impl_port.direction)
            ports.append(Port(impl_port.name, direction, vhdl_type))
        return ports

    # -- container generation -------------------------------------------------------------

    def generate_container(self, kind: str, config: GenerationConfig) -> GeneratedComponent:
        """Generate the VHDL entity + architecture of one container instance."""
        metamodel = self.container_metamodels[kind]
        binding = metamodel.get_binding(config.binding)
        operations = metamodel.select_operations(config)
        op_names = [op.name for op in operations]
        plan = WidthAdaptationPlan(config.data_width, config.effective_bus_width())
        protocol = protocol_for_binding(config.binding)

        entity = Entity(name=config.name)
        entity.add_group("methods", self._method_ports(operations, config))
        entity.add_group("params", self._param_ports(operations, config))
        entity.add_group("implementation interface",
                         self._implementation_ports(metamodel, config))

        arch = Architecture(name="generated", entity=entity)
        if binding.template == "sram_circular_buffer":
            addr_width = max(1, clog2(max(2, config.depth * plan.beats)))
            arch.declare_constant("DEPTH", "natural", str(config.depth * plan.beats))
            arch.declare_signal("head_ptr", f"unsigned({addr_width - 1} downto 0)")
            arch.declare_signal("tail_ptr", f"unsigned({addr_width - 1} downto 0)")
            arch.declare_signal("occupancy", f"unsigned({addr_width} downto 0)")
            arch.declare_signal("prefetch",
                                std_logic_vector(config.effective_bus_width()))
            arch.declare_signal("prefetch_valid", std_logic(), "'0'")
            arch.declare_signal("hold_valid", std_logic(), "'0'")
            arch.declare_signal("state", "state_t", "st_idle")
        template = TEMPLATES[binding.template]
        for statement in template(config, op_names):
            arch.add(statement)
        if plan.needs_adaptation:
            arch.add(plan.vhdl_fragment())

        header = (f"Generated {kind} over {config.binding} "
                  f"(operations: {', '.join(op_names)}; "
                  f"protocol: {protocol.name}; "
                  f"element {config.data_width} bits over a "
                  f"{config.effective_bus_width()}-bit bus)")
        vhdl = VHDLFile(entity=entity, architecture=arch, header_comment=header)

        extra: List[VHDLFile] = []
        if config.shared_resource and binding.external:
            extra.append(generate_arbiter_vhdl(
                num_clients=max(2, config.sharers),
                addr_width=max(1, clog2(max(2, config.depth * plan.beats))),
                data_width=config.effective_bus_width(),
                name=f"{config.name}_arbiter"))

        return GeneratedComponent(vhdl=vhdl, config=config, operations=op_names,
                                  protocol=protocol, width_plan=plan,
                                  extra_files=extra)

    # -- iterator generation ----------------------------------------------------------------

    def generate_iterator(self, key: str, config: GenerationConfig) -> GeneratedComponent:
        """Generate the VHDL of one iterator instance.

        ``key`` selects the iterator metamodel (e.g. ``"read_buffer_forward"``).
        """
        metamodel = self.iterator_metamodels[key]
        operations = metamodel.select_operations(config)
        op_names = [op.name for op in operations]
        plan = WidthAdaptationPlan(config.data_width, config.effective_bus_width())
        protocol = protocol_for_binding(config.binding)

        entity = Entity(name=config.name)
        entity.add_group("iterator operations", self._method_ports(operations, config))
        entity.add_group("params", self._param_ports(operations, config))
        # The iterator's implementation interface is the container's
        # functional interface: method strobes out, data/done in.
        container_metamodel = self.container_metamodels[metamodel.container_kind]
        container_ports: List[Port] = []
        for op in container_metamodel.operations:
            container_ports.append(Port(f"c_{op.name}", OUT, std_logic()))
        container_ports.append(
            Port("c_data", IN if metamodel.readable else OUT,
                 std_logic_vector(config.effective_bus_width())))
        container_ports.append(Port("c_done", IN, std_logic()))
        entity.add_group("container interface", container_ports)

        arch = Architecture(name="generated", entity=entity)
        arch.add("-- iterator wrapper: renames operations onto the container")
        if "inc" in op_names:
            advance_target = ("c_pop" if metamodel.readable else "c_push")
            arch.add(f"{advance_target} <= m_inc;")
        if "read" in op_names and metamodel.readable:
            first_out = next((p.name for op in operations for p in op.params
                              if p.direction == "out"), "data")
            arch.add(f"{first_out} <= c_data;")
        if "write" in op_names and metamodel.writable:
            first_in = next((p.name for op in operations for p in op.params
                             if p.direction == "in"), "data")
            arch.add(f"c_data <= {first_in};")
        arch.add("done <= c_done;")
        if plan.needs_adaptation:
            arch.add(plan.vhdl_fragment())

        header = (f"Generated {metamodel.traversal} iterator over "
                  f"{metamodel.container_kind} "
                  f"(operations: {', '.join(op_names)})")
        vhdl = VHDLFile(entity=entity, architecture=arch, header_comment=header)
        return GeneratedComponent(vhdl=vhdl, config=config, operations=op_names,
                                  protocol=protocol, width_plan=plan)

    # -- whole-design generation ---------------------------------------------------------------

    def generate_design_library(self, design_name: str, binding: str,
                                data_width: int = 8, depth: int = 512,
                                bus_width: Optional[int] = None) -> List[GeneratedComponent]:
        """Generate the container + iterator set of a saa2vga-style design."""
        results: List[GeneratedComponent] = []
        results.append(self.generate_container("read_buffer", GenerationConfig(
            name=f"{design_name}_rbuffer_{binding}", data_width=data_width,
            depth=depth, binding=binding, bus_width=bus_width,
            used_operations=frozenset({"empty", "pop"}))))
        results.append(self.generate_container("write_buffer", GenerationConfig(
            name=f"{design_name}_wbuffer_{binding}", data_width=data_width,
            depth=depth, binding=binding, bus_width=bus_width,
            used_operations=frozenset({"full", "push"}))))
        results.append(self.generate_iterator("read_buffer_forward", GenerationConfig(
            name=f"{design_name}_rbuffer_it", data_width=data_width,
            depth=depth, binding=binding, bus_width=bus_width)))
        results.append(self.generate_iterator("write_buffer_forward", GenerationConfig(
            name=f"{design_name}_wbuffer_it", data_width=data_width,
            depth=depth, binding=binding, bus_width=bus_width)))
        return results


# ---------------------------------------------------------------------------
# The exact entities shown in the paper
# ---------------------------------------------------------------------------


def figure4_rbuffer_fifo(data_width: int = 8) -> GeneratedComponent:
    """Regenerate Figure 4: the read buffer over a FIFO device (``rbuffer_fifo``)."""
    generator = CodeGenerator()
    config = GenerationConfig(name="rbuffer_fifo", data_width=data_width,
                              depth=512, binding="fifo",
                              used_operations=frozenset({"empty", "size", "pop"}))
    return generator.generate_container("read_buffer", config)


def figure5_rbuffer_sram(data_width: int = 8, depth: int = 65536) -> GeneratedComponent:
    """Regenerate Figure 5: the read buffer over an SRAM device (``rbuffer_sram``).

    The paper's entity shows a 16-bit ``p_addr`` port, which corresponds to a
    64k-element address space; ``depth`` defaults accordingly.
    """
    generator = CodeGenerator()
    config = GenerationConfig(name="rbuffer_sram", data_width=data_width,
                              depth=depth, binding="sram",
                              used_operations=frozenset({"empty", "size", "pop"}))
    return generator.generate_container("read_buffer", config)
