"""Arbitration generation for shared physical resources.

"Metaprogramming provides a number of additional benefits.  It allows
automatic generation of arbitration logic for shared physical resources
(e.g. RAM)."

Two artefacts are produced:

* :class:`SharedSRAM` — a simulatable component multiplexing several
  req/ack-style clients onto one external SRAM through a round-robin
  arbiter, so a design can place, for example, both the input and the output
  circular buffers of the saa2vga SRAM variant in a single memory bank;
* :func:`generate_arbiter_vhdl` — the equivalent generated VHDL.
"""

from __future__ import annotations

from typing import List

from ..primitives import AsyncSRAM, RoundRobinArbiter
from ..rtl import Component, SignalBundle, clog2
from .vhdl import IN, OUT, Architecture, Entity, Port, VHDLFile, std_logic, std_logic_vector


class SRAMClientPort(SignalBundle):
    """One client-side access port of a :class:`SharedSRAM`.

    Clients follow the same req/ack protocol as a private
    :class:`~repro.primitives.sram.AsyncSRAM`: drive ``addr``/``wdata``/``we``,
    raise ``req``, wait for ``ack``, capture ``rdata``, drop ``req``.
    """

    def __init__(self, owner: Component, addr_width: int, width: int,
                 name: str) -> None:
        super().__init__(
            name,
            addr=owner.signal(addr_width, name=f"{name}_addr"),
            wdata=owner.signal(width, name=f"{name}_wdata"),
            we=owner.signal(1, name=f"{name}_we"),
            req=owner.signal(1, name=f"{name}_req"),
            ack=owner.signal(1, name=f"{name}_ack"),
            rdata=owner.signal(width, name=f"{name}_rdata"),
        )
        self.addr_width = addr_width
        self.width = width


class SharedSRAM(Component):
    """One external SRAM shared by several clients through a generated arbiter.

    Parameters
    ----------
    num_clients:
        Number of client ports to generate.
    depth, width, latency:
        Geometry and access latency of the underlying SRAM.
    """

    def __init__(self, name: str, num_clients: int, depth: int, width: int,
                 latency: int = 2) -> None:
        super().__init__(name)
        if num_clients < 1:
            raise ValueError("SharedSRAM needs at least one client")
        self.num_clients = num_clients
        self.sram = self.child(AsyncSRAM(f"{name}_sram", depth=depth, width=width,
                                         latency=latency))
        self.arbiter = self.child(RoundRobinArbiter(f"{name}_arb", num_clients))
        addr_width = clog2(depth)
        self.clients: List[SRAMClientPort] = [
            SRAMClientPort(self, addr_width, width, name=f"{name}_client{i}")
            for i in range(num_clients)
        ]

        # Transaction lock: once a client's request has been forwarded to the
        # SRAM, it stays the owner until the four-phase handshake completes
        # (request dropped and acknowledge released).  Without it, a grant
        # rotation while ``ack`` is still high would hand stale data to the
        # next client.
        self._lock_valid = self.state(1, name=f"{name}_lock_valid")
        self._lock_index = self.state(max(1, clog2(max(2, num_clients))),
                                      name=f"{name}_lock_index")

        def current_owner() -> int:
            if self._lock_valid.value:
                return self._lock_index.value
            for i in range(self.num_clients):
                if self.arbiter.grants[i].value:
                    return i
            return -1

        @self.comb
        def interconnect() -> None:
            # Requests feed the arbiter.
            for i, client in enumerate(self.clients):
                self.arbiter.requests[i].next = client.req.value
            granted = current_owner()
            # The owning client drives the SRAM port; everyone else sees ack low.
            if granted >= 0:
                owner = self.clients[granted]
                self.sram.addr.next = owner.addr.value
                self.sram.wdata.next = owner.wdata.value
                self.sram.we.next = owner.we.value
                self.sram.req.next = owner.req.value
            else:
                self.sram.req.next = 0
                self.sram.we.next = 0
            for i, client in enumerate(self.clients):
                is_owner = i == granted
                client.ack.next = self.sram.ack.value if is_owner else 0
                client.rdata.next = self.sram.rdata.value

        @self.seq
        def lock_control() -> None:
            if not self._lock_valid.value:
                owner = current_owner()
                if owner >= 0 and self.clients[owner].req.value:
                    self._lock_valid.next = 1
                    self._lock_index.next = owner
            else:
                owner = self._lock_index.value
                if (not self.clients[owner].req.value
                        and not self.sram.ack.value):
                    self._lock_valid.next = 0

    # -- introspection -----------------------------------------------------------------

    def granted_client(self) -> int:
        """Index of the client currently granted, or -1 when idle."""
        return self.arbiter.granted()


def generate_arbiter_vhdl(num_clients: int, addr_width: int, data_width: int,
                          name: str = "sram_arbiter") -> VHDLFile:
    """Emit the VHDL equivalent of :class:`SharedSRAM`'s arbitration logic."""
    entity = Entity(name=name)
    client_ports: List[Port] = []
    for i in range(num_clients):
        client_ports.extend([
            Port(f"c{i}_addr", IN, std_logic_vector(addr_width)),
            Port(f"c{i}_wdata", IN, std_logic_vector(data_width)),
            Port(f"c{i}_we", IN, std_logic()),
            Port(f"c{i}_req", IN, std_logic()),
            Port(f"c{i}_ack", OUT, std_logic()),
            Port(f"c{i}_rdata", OUT, std_logic_vector(data_width)),
        ])
    entity.add_group("clock and reset",
                     [Port("clk", IN, std_logic()), Port("rst", IN, std_logic())])
    entity.add_group("client ports", client_ports)
    entity.add_group("memory interface", [
        Port("p_addr", OUT, std_logic_vector(addr_width)),
        Port("p_data", IN, std_logic_vector(data_width)),
        Port("p_wdata", OUT, std_logic_vector(data_width)),
        Port("p_we", OUT, std_logic()),
        Port("req", OUT, std_logic()),
        Port("ack", IN, std_logic()),
    ])

    arch = Architecture(name="generated", entity=entity)
    arch.declare_signal("grant", std_logic_vector(max(1, clog2(max(2, num_clients)))))
    arch.declare_signal("grant_locked", std_logic())
    mux_lines = ["with grant select p_addr <="]
    for i in range(num_clients):
        mux_lines.append(f"  c{i}_addr when \"{i:0{max(1, clog2(max(2, num_clients)))}b}\",")
    mux_lines.append("  (others => '0') when others;")
    arch.add("\n".join(mux_lines))
    arch.add("-- round-robin pointer rotates past the last granted client")
    rotate = [
        "rotate: process(clk)",
        "begin",
        "  if rising_edge(clk) then",
        "    if rst = '1' then",
        "      grant <= (others => '0');",
        "    elsif ack = '1' then",
        "      grant <= std_logic_vector(unsigned(grant) + 1);",
        "    end if;",
        "  end if;",
        "end process;",
    ]
    arch.add("\n".join(rotate))
    for i in range(num_clients):
        arch.add(f"c{i}_ack <= ack when unsigned(grant) = {i} else '0';")
        arch.add(f"c{i}_rdata <= p_data;")

    header = (f"Generated arbitration logic: {num_clients} clients sharing one "
              f"external SRAM (round-robin)")
    return VHDLFile(entity=entity, architecture=arch, header_comment=header)
