"""Metaprogramming subsystem: metamodels and the VHDL code generator (Section 3.4).

Generates customised VHDL containers and iterators from metamodels (operation
pruning, width adaptation, arbitration for shared resources, protocol
selection) and provides simulatable width-adaptation components so the
pixel-format scenarios of Section 3.3 can be exercised end to end.
"""

from .arbiter_gen import SharedSRAM, SRAMClientPort, generate_arbiter_vhdl
from .generator import (
    CodeGenerator,
    GeneratedComponent,
    figure4_rbuffer_fifo,
    figure5_rbuffer_sram,
)
from .metamodel import (
    CONTAINER_METAMODELS,
    ITERATOR_METAMODELS,
    BindingSpec,
    ContainerMetamodel,
    GenerationConfig,
    ImplementationPort,
    IteratorMetamodel,
    Operation,
    OperationParam,
)
from .protocol import (
    PROTOCOLS,
    REQ_ACK,
    STROBE,
    STROBE_DONE,
    VALID_READY,
    ProtocolSpec,
    protocol_for_binding,
    select_protocol,
)
from .vhdl import Architecture, Entity, Generic, Port, VHDLFile, check_balanced
from .width_adapter import WidthAdaptationPlan, WidthDownConverter, WidthUpConverter

__all__ = [
    "ContainerMetamodel",
    "IteratorMetamodel",
    "Operation",
    "OperationParam",
    "BindingSpec",
    "ImplementationPort",
    "GenerationConfig",
    "CONTAINER_METAMODELS",
    "ITERATOR_METAMODELS",
    "CodeGenerator",
    "GeneratedComponent",
    "figure4_rbuffer_fifo",
    "figure5_rbuffer_sram",
    "Entity",
    "Architecture",
    "Port",
    "Generic",
    "VHDLFile",
    "check_balanced",
    "WidthAdaptationPlan",
    "WidthDownConverter",
    "WidthUpConverter",
    "SharedSRAM",
    "SRAMClientPort",
    "generate_arbiter_vhdl",
    "ProtocolSpec",
    "PROTOCOLS",
    "STROBE",
    "VALID_READY",
    "REQ_ACK",
    "STROBE_DONE",
    "select_protocol",
    "protocol_for_binding",
]
