"""A small VHDL abstract syntax layer and emitter.

The paper's metaprogramming back-end produces "a set of efficient VHDL
components, ready to be synthesized".  No synthesis tool is available in this
environment, so the emitter's job is to produce *well-formed, readable* VHDL
text (entities like Figures 4 and 5, architectures with the binding's control
logic) that the tests can check structurally: port sets, pruning of unused
operations, width-adaptation counters, and balanced entity/architecture
blocks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

IN = "in"
OUT = "out"
INOUT = "inout"


def std_logic() -> str:
    """The VHDL type of a single-bit port."""
    return "std_logic"


def std_logic_vector(width: int) -> str:
    """The VHDL type of a ``width``-bit vector port (descending range)."""
    if width < 1:
        raise ValueError(f"vector width must be >= 1, got {width}")
    return f"std_logic_vector({width - 1} downto 0)"


@dataclass(frozen=True)
class Port:
    """One entity port."""

    name: str
    direction: str
    vhdl_type: str
    comment: str = ""

    def declaration(self) -> str:
        text = f"{self.name} : {self.direction} {self.vhdl_type}"
        return text


@dataclass(frozen=True)
class Generic:
    """One entity generic."""

    name: str
    vhdl_type: str
    default: Optional[str] = None

    def declaration(self) -> str:
        text = f"{self.name} : {self.vhdl_type}"
        if self.default is not None:
            text += f" := {self.default}"
        return text


@dataclass
class Entity:
    """A VHDL entity: a name plus generics and grouped ports.

    Ports are kept in named groups ("methods", "params", "implementation
    interface" ...) so the emitted text carries the same section comments as
    Figure 4 of the paper.
    """

    name: str
    generics: List[Generic] = field(default_factory=list)
    port_groups: List[tuple] = field(default_factory=list)

    def add_group(self, label: str, ports: Sequence[Port]) -> None:
        """Append a commented group of ports."""
        self.port_groups.append((label, list(ports)))

    def all_ports(self) -> List[Port]:
        return [port for _label, ports in self.port_groups for port in ports]

    def port_names(self) -> List[str]:
        return [port.name for port in self.all_ports()]

    def emit(self) -> str:
        lines: List[str] = [f"entity {self.name} is"]
        if self.generics:
            lines.append("  generic (")
            decls = [f"    {gen.declaration()}" for gen in self.generics]
            lines.append(";\n".join(decls))
            lines.append("  );")
        ports = self.all_ports()
        if ports:
            lines.append("  port (")
            body: List[str] = []
            emitted = 0
            for label, group in self.port_groups:
                if not group:
                    continue
                body.append(f"    -- {label}")
                for port in group:
                    emitted += 1
                    suffix = ";" if emitted < len(ports) else ""
                    body.append(f"    {port.declaration()}{suffix}")
            lines.extend(body)
            lines.append("  );")
        lines.append(f"end {self.name};")
        return "\n".join(lines) + "\n"


@dataclass
class Architecture:
    """A VHDL architecture: declarations plus concurrent/process statements."""

    name: str
    entity: Entity
    declarations: List[str] = field(default_factory=list)
    statements: List[str] = field(default_factory=list)

    def declare_signal(self, name: str, vhdl_type: str,
                       default: Optional[str] = None) -> None:
        text = f"signal {name} : {vhdl_type}"
        if default is not None:
            text += f" := {default}"
        self.declarations.append(text + ";")

    def declare_constant(self, name: str, vhdl_type: str, value: str) -> None:
        self.declarations.append(f"constant {name} : {vhdl_type} := {value};")

    def add(self, statement: str) -> None:
        """Append a concurrent statement or a whole process block."""
        self.statements.append(statement)

    def emit(self) -> str:
        lines = [f"architecture {self.name} of {self.entity.name} is"]
        lines.extend(f"  {decl}" for decl in self.declarations)
        lines.append("begin")
        for statement in self.statements:
            for line in statement.rstrip("\n").split("\n"):
                lines.append(f"  {line}")
        lines.append(f"end {self.name};")
        return "\n".join(lines) + "\n"


@dataclass
class VHDLFile:
    """A complete generated design unit (header + entity + architecture)."""

    entity: Entity
    architecture: Architecture
    header_comment: str = ""

    @property
    def name(self) -> str:
        return self.entity.name

    def emit(self) -> str:
        parts: List[str] = []
        if self.header_comment:
            parts.extend(f"-- {line}" for line in self.header_comment.split("\n"))
        parts.append("library ieee;")
        parts.append("use ieee.std_logic_1164.all;")
        parts.append("use ieee.numeric_std.all;")
        parts.append("")
        parts.append(self.entity.emit())
        parts.append(self.architecture.emit())
        return "\n".join(parts)

    def filename(self) -> str:
        return f"{self.entity.name}.vhd"


def check_balanced(text: str) -> bool:
    """Light structural check used by tests on generated VHDL.

    Verifies that the file declares an entity and an architecture, and that
    the nested constructs that must be closed (``process``, ``if``, ``case``)
    have matching ``end`` statements.  This is not a parser — just enough to
    catch truncated or mis-assembled templates.
    """
    lowered = text.lower()
    if "entity " not in lowered or "architecture " not in lowered:
        return False
    if "end process" in lowered or "process(" in lowered or "process (" in lowered:
        opens = lowered.count("process(") + lowered.count("process (")
        if opens != lowered.count("end process"):
            return False
    # ``if`` statements: count only line-leading ifs (elsif continues a block).
    if_opens = sum(1 for line in lowered.splitlines()
                   if line.strip().startswith("if ") and line.strip().endswith("then"))
    if if_opens != lowered.count("end if"):
        return False
    case_opens = sum(1 for line in lowered.splitlines()
                     if line.strip().startswith("case "))
    if case_opens != lowered.count("end case"):
        return False
    return True
