"""Width adaptation: moving wide elements over narrow physical ports.

Section 3.3: "For an 8-bit data bus, we should also modify the iterator code
to perform three consecutive container reads/writes to get/set the whole
pixel.  In any case, all this scenarios can be considered by the automatic
code generator, thus requiring no designer intervention."

Two things are provided:

* a *plan* (:class:`WidthAdaptationPlan`) plus a VHDL fragment generator, used
  by the code generator when a container/iterator is configured with a bus
  narrower than its element;
* two simulatable components (:class:`WidthDownConverter`,
  :class:`WidthUpConverter`) that perform the same serialisation between
  stream interfaces, so the pixel-format experiment (E8) can run end-to-end
  in simulation: 24-bit RGB pixels travel through 8-bit containers and come
  out bit-exact.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from ..core.interfaces import StreamSinkIface, StreamSourceIface
from ..rtl import Component, clog2
from ..video.pixel import join_word, split_word


@dataclass(frozen=True)
class WidthAdaptationPlan:
    """How one element is carried over a narrower physical data bus."""

    element_width: int
    bus_width: int

    def __post_init__(self) -> None:
        if self.element_width % self.bus_width:
            raise ValueError(
                f"element width {self.element_width} is not a multiple of "
                f"bus width {self.bus_width}")

    @property
    def beats(self) -> int:
        """Number of physical transfers per element."""
        return self.element_width // self.bus_width

    @property
    def needs_adaptation(self) -> bool:
        return self.beats > 1

    def split(self, element: int) -> List[int]:
        """Element -> list of bus-wide beats (most significant first)."""
        return split_word(element, self.element_width, self.bus_width)

    def join(self, beats: List[int]) -> int:
        """Bus-wide beats (most significant first) -> element."""
        if len(beats) != self.beats:
            raise ValueError(f"expected {self.beats} beats, got {len(beats)}")
        return join_word(beats, self.bus_width)

    def vhdl_fragment(self) -> str:
        """The generated serialisation logic (a beat counter + shift register)."""
        if not self.needs_adaptation:
            return "-- element width matches the bus width: no adaptation logic"
        counter_width = max(1, clog2(self.beats))
        return "\n".join([
            f"-- width adaptation: {self.element_width}-bit element over a "
            f"{self.bus_width}-bit bus ({self.beats} beats per element)",
            f"signal beat_count : unsigned({counter_width - 1} downto 0);",
            f"signal shift_reg  : std_logic_vector({self.element_width - 1} downto 0);",
            "adapt: process(clk)",
            "begin",
            "  if rising_edge(clk) then",
            "    if beat_accepted = '1' then",
            f"      shift_reg <= shift_reg({self.element_width - self.bus_width - 1} "
            f"downto 0) & p_data;",
            f"      if beat_count = {self.beats - 1} then",
            "        beat_count   <= (others => '0');",
            "        element_done <= '1';",
            "      else",
            "        beat_count   <= beat_count + 1;",
            "        element_done <= '0';",
            "      end if;",
            "    end if;",
            "  end if;",
            "end process;",
        ])


class WidthDownConverter(Component):
    """Serialise wide elements into narrow beats between two stream interfaces.

    ``wide_in`` (a :class:`StreamSinkIface` of ``element_width`` bits) accepts
    whole elements; ``narrow_out`` (a :class:`StreamSourceIface` of
    ``bus_width`` bits) delivers them most-significant beat first.
    """

    def __init__(self, name: str, element_width: int, bus_width: int) -> None:
        super().__init__(name)
        self.plan = WidthAdaptationPlan(element_width, bus_width)
        self.wide_in = StreamSinkIface(self, element_width, name=f"{name}_wide_in")
        self.narrow_out = StreamSourceIface(self, bus_width, name=f"{name}_narrow_out")

        beats = self.plan.beats
        self._shift = self.state(element_width, name=f"{name}_shift")
        self._remaining = self.state(max(1, clog2(beats + 1)), name=f"{name}_remaining")

        @self.comb
        def wires() -> None:
            remaining = self._remaining.value
            self.wide_in.ready.next = 1 if remaining == 0 else 0
            self.narrow_out.valid.next = 1 if remaining > 0 else 0
            # Present the most significant beat of what is left in the shift
            # register.
            shift = self._shift.value
            top = (shift >> (bus_width * (remaining - 1))) if remaining else 0
            self.narrow_out.data.next = top & ((1 << bus_width) - 1)

        @self.seq
        def control() -> None:
            remaining = self._remaining.value
            if remaining == 0:
                if self.wide_in.push.value:
                    self._shift.next = self.wide_in.data.value
                    self._remaining.next = beats
            elif self.narrow_out.pop.value:
                self._remaining.next = remaining - 1


class WidthUpConverter(Component):
    """Reassemble narrow beats into wide elements between two stream interfaces.

    ``narrow_in`` accepts ``bus_width``-bit beats (most significant first);
    ``wide_out`` delivers complete ``element_width``-bit elements.
    """

    def __init__(self, name: str, element_width: int, bus_width: int) -> None:
        super().__init__(name)
        self.plan = WidthAdaptationPlan(element_width, bus_width)
        self.narrow_in = StreamSinkIface(self, bus_width, name=f"{name}_narrow_in")
        self.wide_out = StreamSourceIface(self, element_width, name=f"{name}_wide_out")

        beats = self.plan.beats
        self._shift = self.state(element_width, name=f"{name}_shift")
        self._collected = self.state(max(1, clog2(beats + 1)), name=f"{name}_collected")

        @self.comb
        def wires() -> None:
            collected = self._collected.value
            complete = collected == beats
            self.narrow_in.ready.next = 0 if complete else 1
            self.wide_out.valid.next = 1 if complete else 0
            self.wide_out.data.next = self._shift.value if complete else 0

        @self.seq
        def control() -> None:
            collected = self._collected.value
            complete = collected == beats
            if complete:
                if self.wide_out.pop.value:
                    self._collected.next = 0
                    self._shift.next = 0
            elif self.narrow_in.push.value:
                mask = (1 << element_width) - 1
                self._shift.next = ((self._shift.value << bus_width)
                                    | self.narrow_in.data.value) & mask
                self._collected.next = collected + 1
