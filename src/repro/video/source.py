"""Video stream source: the camera + video decoder stand-in.

The original system front-end is a camera feeding a SAA711x-style video
decoder that produces a raster-scanned pixel stream.  This component plays
that role: it holds one or more frames and pushes their pixels, in raster
order, into the ``fill`` interface of a read-buffer container, honouring the
container's back-pressure (``ready``).

An optional ``stall_period`` inserts idle cycles between pixels, modelling a
pixel clock slower than the system clock — useful to check that the designs
are latency-insensitive.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from ..core.interfaces import StreamSinkIface
from ..rtl import Component
from .frames import Frame, flatten


class VideoStreamSource(Component):
    """Push frames, pixel by pixel, into a stream sink interface.

    Parameters
    ----------
    sink:
        The ``fill`` interface of a read-buffer container (or any
        :class:`StreamSinkIface`).
    frames:
        Frames to send, in order.  More can be queued later with
        :meth:`queue_frame`.
    stall_period:
        If greater than zero, one pixel is offered only every
        ``stall_period + 1`` cycles.
    """

    def __init__(self, name: str, sink: StreamSinkIface,
                 frames: Optional[Sequence[Frame]] = None,
                 stall_period: int = 0) -> None:
        super().__init__(name)
        self.sink = sink
        self.stall_period = stall_period
        self._pixels: List[int] = []
        self._frames_queued = 0
        for frame in frames or []:
            self.queue_frame(frame)

        self._index = self.state(32, name=f"{name}_index")
        self._stall = self.state(16, name=f"{name}_stall")
        self.pixels_sent = self.state(32, name=f"{name}_pixels_sent")
        # Sensitivity anchor for the event-driven scheduler: ``drive`` depends
        # on the *length* of the Python-level pixel queue, which signal
        # tracing cannot see.  The anchor signal is read by ``drive`` (so the
        # scheduler records the dependency) and forced whenever the queue
        # grows (so ``drive`` is woken); its value itself is never used.
        self._queued = self.signal(32, init=len(self._pixels) & 0xFFFFFFFF,
                                   name=f"{name}_queued")

        @self.comb
        def drive() -> None:
            self._queued.value  # sensitivity anchor (see above)
            index = self._index.value
            have_pixel = index < len(self._pixels)
            stalled = self._stall.value != 0
            offer = have_pixel and not stalled
            self.sink.push.next = 1 if offer else 0
            self.sink.data.next = self._pixels[index] if have_pixel else 0

        @self.seq
        def advance() -> None:
            index = self._index.value
            have_pixel = index < len(self._pixels)
            stalled = self._stall.value != 0
            if stalled:
                self._stall.next = self._stall.value - 1
                return
            if have_pixel and self.sink.ready.value:
                self._index.next = index + 1
                self.pixels_sent.next = self.pixels_sent.value + 1
                if self.stall_period > 0:
                    self._stall.next = self.stall_period

    # -- stimulus management --------------------------------------------------------

    def queue_frame(self, frame: Frame) -> None:
        """Append a frame to the transmit queue (also allowed mid-simulation)."""
        self._pixels.extend(flatten(frame))
        self._frames_queued += 1
        self._notify_queued()

    def queue_pixels(self, pixels: Sequence[int]) -> None:
        """Append raw pixel words to the transmit queue."""
        self._pixels.extend(int(p) for p in pixels)
        self._notify_queued()

    def _notify_queued(self) -> None:
        """Wake ``drive`` after the pixel queue grew (see ``_queued``)."""
        anchor = getattr(self, "_queued", None)
        if anchor is not None:
            anchor.force(len(self._pixels) & 0xFFFFFFFF)

    @property
    def exhausted(self) -> bool:
        """True when every queued pixel has been accepted by the container."""
        return self._index.value >= len(self._pixels)

    @property
    def total_pixels(self) -> int:
        """Number of pixels queued so far."""
        return len(self._pixels)
