"""Video substrate: synthetic stream source/sink, pixel formats and golden models.

Substitutes for the camera, SAA711x video decoder, VGA coder and monitor of
the original system (see DESIGN.md, substitution table).
"""

from .frames import (
    Frame,
    checkerboard_frame,
    flatten,
    frame_dimensions,
    frames_equal,
    golden_blur3x3,
    golden_copy,
    golden_map,
    golden_sum,
    gradient_frame,
    random_frame,
    unflatten,
)
from .pixel import (
    GRAY8,
    RGB24,
    RGB565,
    PixelFormat,
    gray_to_rgb24,
    join_word,
    rgb24_to_gray,
    split_word,
)
from .sink import VideoStreamSink
from .source import VideoStreamSource

__all__ = [
    "Frame",
    "gradient_frame",
    "checkerboard_frame",
    "random_frame",
    "flatten",
    "unflatten",
    "frame_dimensions",
    "frames_equal",
    "golden_copy",
    "golden_map",
    "golden_blur3x3",
    "golden_sum",
    "PixelFormat",
    "GRAY8",
    "RGB24",
    "RGB565",
    "gray_to_rgb24",
    "rgb24_to_gray",
    "split_word",
    "join_word",
    "VideoStreamSource",
    "VideoStreamSink",
]
