"""Video stream sink: the VGA coder + monitor stand-in.

The original system back-end is a VGA coder driving a monitor.  This
component plays that role: it continuously drains the ``drain`` interface of
a write-buffer container and records the received pixels, so test benches and
benchmarks can reassemble output frames and compare them with golden models.

An optional ``stall_period`` models a display that accepts pixels more slowly
than the system clock, exercising back-pressure through the whole pipeline.
"""

from __future__ import annotations

from typing import List

from ..core.interfaces import StreamSourceIface
from ..rtl import Component
from .frames import Frame, unflatten


class VideoStreamSink(Component):
    """Drain a stream source interface and record every received pixel.

    Parameters
    ----------
    source:
        The ``drain`` interface of a write-buffer container (or any
        :class:`StreamSourceIface`).
    stall_period:
        If greater than zero, a pixel is accepted only every
        ``stall_period + 1`` cycles.
    """

    def __init__(self, name: str, source: StreamSourceIface,
                 stall_period: int = 0) -> None:
        super().__init__(name)
        self.source = source
        self.stall_period = stall_period
        #: Every pixel received, in arrival order.
        self.received: List[int] = []

        self._stall = self.state(16, name=f"{name}_stall")
        self.pixels_received = self.state(32, name=f"{name}_pixels_received")

        @self.comb
        def drive() -> None:
            stalled = self._stall.value != 0
            self.source.pop.next = 0 if stalled else 1

        @self.seq
        def capture() -> None:
            if self._stall.value:
                self._stall.next = self._stall.value - 1
                return
            if self.source.valid.value:
                self.received.append(self.source.data.value)
                self.pixels_received.next = self.pixels_received.value + 1
                if self.stall_period > 0:
                    self._stall.next = self.stall_period

    # -- result access ---------------------------------------------------------------

    @property
    def count(self) -> int:
        """Number of pixels received so far."""
        return len(self.received)

    def frame(self, width: int, height: int, offset: int = 0) -> Frame:
        """Reassemble one ``width x height`` frame from the received stream."""
        needed = width * height
        pixels = self.received[offset:offset + needed]
        if len(pixels) < needed:
            raise ValueError(
                f"only {len(pixels)} pixels received, need {needed} for a frame")
        return unflatten(pixels, width)

    def clear(self) -> None:
        """Discard everything received so far (between test phases)."""
        self.received.clear()
