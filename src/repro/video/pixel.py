"""Pixel formats.

Section 3.3 discusses changing "the pixel data representation (from 8-bit
grayscale to 24-bit RGB, for example)" and the two adaptation alternatives
that follow from the memory data-bus width.  This module defines the formats
involved, plus packing/unpacking helpers used by the width-adaptation logic
of the code generator and by the video stream models.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple


@dataclass(frozen=True)
class PixelFormat:
    """A pixel format: a name, a total bit width and named channels."""

    name: str
    width: int
    channels: Tuple[str, ...]
    channel_width: int

    def pack(self, values: Tuple[int, ...]) -> int:
        """Pack per-channel values (first channel most significant) into one word."""
        if len(values) != len(self.channels):
            raise ValueError(
                f"{self.name} expects {len(self.channels)} channel values, "
                f"got {len(values)}")
        mask = (1 << self.channel_width) - 1
        word = 0
        for value in values:
            word = (word << self.channel_width) | (int(value) & mask)
        return word

    def unpack(self, word: int) -> Tuple[int, ...]:
        """Split a packed word back into per-channel values."""
        mask = (1 << self.channel_width) - 1
        values = []
        for i in reversed(range(len(self.channels))):
            values.append((word >> (i * self.channel_width)) & mask)
        return tuple(values)

    @property
    def max_value(self) -> int:
        """Largest packed value."""
        return (1 << self.width) - 1


#: 8-bit grayscale, the base format of the saa2vga designs.
GRAY8 = PixelFormat(name="gray8", width=8, channels=("y",), channel_width=8)

#: 24-bit RGB, the alternative format discussed in Section 3.3.
RGB24 = PixelFormat(name="rgb24", width=24, channels=("r", "g", "b"),
                    channel_width=8)

#: 16-bit RGB565-style format, included to exercise non-multiple bus ratios.
RGB565 = PixelFormat(name="rgb565", width=16, channels=("r", "g", "b"),
                     channel_width=5)


def gray_to_rgb24(gray: int) -> int:
    """Expand an 8-bit grayscale value to a 24-bit RGB word."""
    gray &= 0xFF
    return RGB24.pack((gray, gray, gray))


def rgb24_to_gray(word: int) -> int:
    """Collapse a 24-bit RGB word to 8-bit luminance (integer average)."""
    r, g, b = RGB24.unpack(word)
    return (r + g + b) // 3


def split_word(word: int, total_width: int, bus_width: int) -> List[int]:
    """Split a ``total_width``-bit word into ``bus_width``-bit beats, MSB first.

    This is exactly the transfer sequence the generated iterator performs when
    the pixel is wider than the memory data bus ("three consecutive container
    reads/writes to get/set the whole pixel").
    """
    if total_width % bus_width:
        raise ValueError(
            f"cannot split a {total_width}-bit value over a {bus_width}-bit bus")
    beats = total_width // bus_width
    mask = (1 << bus_width) - 1
    return [(word >> (bus_width * i)) & mask for i in reversed(range(beats))]


def join_word(beats: List[int], bus_width: int) -> int:
    """Reassemble a word from ``bus_width``-bit beats, MSB first."""
    mask = (1 << bus_width) - 1
    word = 0
    for beat in beats:
        word = (word << bus_width) | (int(beat) & mask)
    return word
