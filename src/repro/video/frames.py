"""Frame generation and golden (reference) image operators.

The original system processes frames from a camera through a video decoder;
as a substitution, deterministic synthetic frames are generated here and
software golden models of the image algorithms provide bit-exact references
against which the simulated hardware output is checked.
"""

from __future__ import annotations

from typing import Callable, List

from ..core.algorithms.blur import blur_kernel
from ..verify.rng import stream as _named_stream

Frame = List[List[int]]


def gradient_frame(width: int, height: int, max_value: int = 255) -> Frame:
    """A diagonal gradient: deterministic and spatially smooth (blur-friendly)."""
    return [[(x + y) * max_value // max(1, (width + height - 2)) for x in range(width)]
            for y in range(height)]


def checkerboard_frame(width: int, height: int, tile: int = 4,
                       low: int = 0, high: int = 255) -> Frame:
    """A checkerboard: maximal local contrast, stresses filters and formats."""
    return [[high if ((x // tile) + (y // tile)) % 2 else low for x in range(width)]
            for y in range(height)]


def random_frame(width: int, height: int, seed: int = 0,
                 max_value: int = 255) -> Frame:
    """A reproducible pseudo-random frame.

    Pixels come from the named ``"video.frames"`` stream of
    :mod:`repro.verify.rng`, so the content is a pure function of ``seed``
    and immune to draws made anywhere else in the process — a failure
    report only ever needs to quote the seed.
    """
    rng = _named_stream(seed, "video.frames")
    return [[rng.randint(0, max_value) for _ in range(width)] for _ in range(height)]


def flatten(frame: Frame) -> List[int]:
    """Raster-scan a frame into the pixel stream order used by the designs."""
    return [pixel for row in frame for pixel in row]


def unflatten(pixels: List[int], width: int) -> Frame:
    """Rebuild a frame from a raster-ordered pixel stream."""
    if width < 1 or len(pixels) % width:
        raise ValueError(
            f"cannot reshape {len(pixels)} pixels into rows of {width}")
    return [pixels[i:i + width] for i in range(0, len(pixels), width)]


def frame_dimensions(frame: Frame) -> tuple:
    """Return (width, height) of a frame, validating rectangularity."""
    height = len(frame)
    if height == 0:
        raise ValueError("frame has no rows")
    width = len(frame[0])
    if any(len(row) != width for row in frame):
        raise ValueError("frame rows have inconsistent widths")
    return width, height


# ---------------------------------------------------------------------------
# Golden models
# ---------------------------------------------------------------------------


def golden_copy(frame: Frame) -> Frame:
    """Reference for the stream copy algorithm: the identity."""
    return [list(row) for row in frame]


def golden_map(frame: Frame, func: Callable[[int], int]) -> Frame:
    """Reference for element-wise transforms."""
    return [[func(pixel) for pixel in row] for row in frame]


def golden_blur3x3(frame: Frame) -> Frame:
    """Reference for the 3x3 box blur: interior windows only.

    A ``H x W`` input produces a ``(H-2) x (W-2)`` output, matching the
    hardware pipeline which only emits pixels for fully-populated windows.
    """
    width, height = frame_dimensions(frame)
    if width < 3 or height < 3:
        raise ValueError("blur needs a frame of at least 3x3 pixels")
    output: Frame = []
    for y in range(1, height - 1):
        row = []
        for x in range(1, width - 1):
            window = [frame[y + dy][x + dx]
                      for dy in (-1, 0, 1) for dx in (-1, 0, 1)]
            row.append(blur_kernel(window))
        output.append(row)
    return output


def golden_sum(frame: Frame) -> int:
    """Reference for the reduce (sum) algorithm."""
    return sum(flatten(frame))


def frames_equal(a: Frame, b: Frame) -> bool:
    """Bit-exact frame comparison."""
    return a == b
