"""Command-line entry: ``python -m repro.verify``.

Runs constrained-random verification sessions over a seed matrix, prints a
per-session summary, optionally writes the merged coverage database to
JSON, and exits non-zero — printing the reproducing command — when a
session flags violations or the merged coverage misses ``--min-coverage``.
This is what the CI ``randomized-verification`` job invokes.
"""

from __future__ import annotations

import argparse
import sys

from ..obs import profile as _obs_profile
from .coverage import CoverageDB
from .rng import SEED_ENV, default_seed
from .session import TARGETS, verify, verify_matrix


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.verify",
        description="Constrained-random verification of the pattern library.",
        epilog="With --store DIR, clean sessions persist in the same "
               "content-addressed result store the exploration service uses "
               "(keyed by target x seed x cycles x strategy); a re-run of "
               "an already-clean matrix replays summaries and coverage from "
               "the store without simulating.  Failing sessions are never "
               "cached — they always re-run and print their reproduction "
               "command.  Full operator guide: docs/exploration.md.")
    parser.add_argument("targets", nargs="*",
                        help="target names (default: every registered target)")
    parser.add_argument("--list", action="store_true",
                        help="list registered targets and exit")
    # The default honours $REPRO_SEED so the printed reproduction commands
    # (VerifyResult.repro_command) replay the failing seed, not seed 0.
    parser.add_argument("--seeds", type=int, nargs="+",
                        default=[default_seed()],
                        help=f"root seeds to run (default: ${SEED_ENV} or 0)")
    parser.add_argument("--cycles", type=int, default=None,
                        help="cycle budget override (default: per-target)")
    parser.add_argument("--strategy", default="event",
                        choices=("event", "fixpoint", "compiled",
                                 "compiled-batched"))
    parser.add_argument("--json", metavar="PATH", default=None,
                        help="write the merged coverage database here")
    parser.add_argument("--min-coverage", type=float, default=None, metavar="PCT",
                        help="fail if any target's merged coverage is below PCT")
    parser.add_argument("--store", metavar="DIR", default=None,
                        help="persistent result store; clean sessions are "
                             "replayed from it instead of re-simulating")
    parser.add_argument("--profile", action="store_true",
                        help="print a per-strategy settle/compile wall-time "
                             "breakdown after the matrix "
                             "(docs/observability.md)")
    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)

    if args.list:
        for name, spec in TARGETS.items():
            print(f"{name:<26} default_cycles={spec.default_cycles}")
        return 0

    if args.profile:
        profiler = _obs_profile.enable()
        try:
            return _run(args)
        finally:
            _obs_profile.disable()
            print(profiler.report())
    return _run(args)


def _run(args) -> int:
    names = args.targets or list(TARGETS)
    unknown = [n for n in names if n not in TARGETS]
    if unknown:
        print(f"unknown target(s): {unknown}; see --list", file=sys.stderr)
        return 2

    store = None
    if args.store is not None:
        from ..serve.store import ResultStore

        store = ResultStore(args.store)

    db = CoverageDB()
    failures = []
    for name in names:
        # The store key needs the *resolved* cycle budget — "--cycles 1500"
        # and the bare default must land on one key.
        cycles = (args.cycles if args.cycles is not None
                  else TARGETS[name].default_cycles)
        cached = {}
        if store is not None:
            from ..serve.records import record_matches, verify_key

            for seed in args.seeds:
                record = store.get(
                    verify_key(name, seed, cycles, args.strategy))
                if record_matches(record, "verify"):
                    cached[seed] = record
        fresh_seeds = [seed for seed in args.seeds if seed not in cached]
        # compiled-batched runs the whole seed matrix for a target as ONE
        # lockstep simulation loop (one lane per seed); scalar strategies
        # run one session per (target, seed) pair.
        if args.strategy == "compiled-batched":
            results = verify_matrix(name, fresh_seeds, cycles=args.cycles)
        else:
            results = [verify(name, seed=seed, cycles=args.cycles,
                              strategy=args.strategy)
                       for seed in fresh_seeds]
        by_seed = {result.seed: result for result in results}
        for seed in args.seeds:
            if seed in cached:
                from ..serve.records import verify_summary_line

                record = cached[seed]
                db.add(record["result"]["coverage_group"])
                print(verify_summary_line(record))
                continue
            result = by_seed[seed]
            db.add(result.coverage)
            print(result.summary())
            if not result.ok:
                failures.append(result)
                for violation in result.violations[:5]:
                    print(f"    {violation}")
                print(f"    reproduce with: {result.repro_command()}")
            elif store is not None:
                # Only clean sessions are persisted: a failing session must
                # always re-run and reprint its reproduction command.
                from ..serve.records import verify_key, verify_record

                key = verify_key(name, seed, cycles, args.strategy)
                store.put(key, verify_record(result, key))

    if args.json:
        with open(args.json, "w", encoding="utf-8") as fh:
            fh.write(db.to_json())
        print(f"merged coverage written to {args.json}")

    status = 0
    if failures:
        print(f"\nFAILED: {len(failures)} session(s) flagged violations; "
              f"failing seeds: {sorted({r.seed for r in failures})}")
        status = 1
    if args.min_coverage is not None:
        low = [name for name in names
               if db.percent(name) < args.min_coverage]
        if low:
            print(f"\nFAILED: coverage below {args.min_coverage}% for: {low}")
            for missing in db.unhit():
                print(f"  unhit: {missing}")
            status = 1
    if status == 0:
        print(f"\nall sessions clean; merged coverage {db.percent():.1f}%")
    return status


if __name__ == "__main__":
    sys.exit(main())
