"""Constrained-random verification subsystem (UVM-style, in miniature).

Layers:

* :mod:`~repro.verify.rng` — seeded, named random streams; one root seed
  reproduces an entire session.
* :mod:`~repro.verify.stimulus` — constrained-random drivers for the
  stream, iterator, random-access and associative interfaces.
* :mod:`~repro.verify.monitor` — passive protocol checkers attached via
  ``Simulator.add_watcher`` / detached via ``remove_watcher``.
* :mod:`~repro.verify.coverage` — covergroups, bins, crosses, merged
  coverage databases with JSON export.
* :mod:`~repro.verify.scoreboard` — golden Python reference models checked
  transaction by transaction.
* :mod:`~repro.verify.session` — the one-call :func:`verify` harness and
  the registry of shipped targets (loaded lazily: it pulls in the whole
  container/design stack, which in turn imports this package).
* :mod:`~repro.verify.mutate` — test-only fault injection for the
  mutation smoke tests.

This ``__init__`` stays lightweight on purpose: the primitives import
:mod:`repro.verify.mutate` and :mod:`repro.video.frames` imports
:mod:`repro.verify.rng` at module load, so anything here that imported the
container stack back would create a cycle.
"""

from . import mutate
from .coverage import (
    CoverageDB,
    CoverageError,
    CoverBin,
    CoverCross,
    CoverGroup,
    CoverPoint,
)
from .monitor import (
    ArbiterMonitor,
    AssocMonitor,
    ExpectedStreamMonitor,
    IteratorMonitor,
    ProtocolMonitor,
    RandomPortMonitor,
    StreamContainerMonitor,
    VerificationError,
    Violation,
    WidthAdapterMonitor,
    WindowBufferMonitor,
)
from .rng import SEED_ENV, RngPool, default_seed, derive_seed, stream
from .scoreboard import (
    AssocModel,
    ExpectedStreamModel,
    FifoModel,
    LifoModel,
    LineBufferModel,
    MultisetModel,
    VectorModel,
)
from .stimulus import (
    AssocOpDriver,
    IteratorConstraints,
    IteratorOpDriver,
    RequestDriver,
    StreamConstraints,
    StreamPopDriver,
    StreamPushDriver,
)

#: Names resolved lazily from :mod:`repro.verify.session` (which imports
#: the container/design layers and must not load during package import).
_SESSION_EXPORTS = ("verify", "verify_all", "verify_matrix", "verify_gains",
                    "VerifyResult", "TargetSpec", "TARGETS",
                    "container_targets", "design_targets", "metagen_targets")

__all__ = [
    "mutate",
    "CoverageDB", "CoverageError", "CoverBin", "CoverCross", "CoverGroup",
    "CoverPoint",
    "ArbiterMonitor", "AssocMonitor", "ExpectedStreamMonitor",
    "IteratorMonitor", "ProtocolMonitor", "RandomPortMonitor",
    "StreamContainerMonitor", "VerificationError", "Violation",
    "WidthAdapterMonitor", "WindowBufferMonitor",
    "SEED_ENV", "RngPool", "default_seed", "derive_seed", "stream",
    "AssocModel", "ExpectedStreamModel", "FifoModel", "LifoModel",
    "LineBufferModel", "MultisetModel", "VectorModel",
    "AssocOpDriver", "IteratorConstraints", "IteratorOpDriver",
    "RequestDriver", "StreamConstraints", "StreamPopDriver",
    "StreamPushDriver",
    *_SESSION_EXPORTS,
]


def __getattr__(name):
    if name == "session" or name in _SESSION_EXPORTS:
        # importlib rather than ``from . import session``: the latter
        # probes the package attribute first, which re-enters this hook.
        import importlib

        session = importlib.import_module(".session", __name__)
        if name == "session":
            return session
        return getattr(session, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
