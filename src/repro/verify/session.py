"""One-call verification sessions: ``verify(target, seed, cycles)``.

A session wires a constrained-random driver set, passive protocol
monitors, a golden-model scoreboard and a covergroup around one *target* —
a shipped container binding, a whole pipeline design, or any user
component exposing ``input_fill``/``output_drain`` — and runs the loop
under any settle strategy:

    >>> from repro.verify import verify
    >>> result = verify("queue/fifo", seed=7)
    >>> result.ok, result.coverage_percent
    (True, 100.0)

Every shipped container binding has a registered target whose declared
covergroup closes (100 % of bins and cross combinations hit) within the
target's default cycle budget — enforced by ``tests/verify/``.

Reproduction recipe: every result carries its root seed; rerunning
``verify(target, seed=result.seed)`` (or the printed
``python -m repro.verify`` command) regenerates the identical stimulus,
cycle for cycle, under any strategy.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Union

from ..rtl import (
    COMPILED_BATCHED,
    EVENT,
    BatchedSimulator,
    Component,
    Simulator,
)
from .coverage import CoverageDB, CoverGroup
from .monitor import (
    ArbiterMonitor,
    AssocMonitor,
    ExpectedStreamMonitor,
    IteratorMonitor,
    ProtocolMonitor,
    RandomPortMonitor,
    StreamContainerMonitor,
    VerificationError,
    Violation,
    WidthAdapterMonitor,
    WindowBufferMonitor,
)
from .rng import SEED_ENV, RngPool
from .scoreboard import (
    AssocModel,
    ExpectedStreamModel,
    FifoModel,
    LifoModel,
    LineBufferModel,
    MultisetModel,
    VectorModel,
)
from .stimulus import (
    AssocOpDriver,
    IteratorOpDriver,
    RequestDriver,
    StreamConstraints,
    StreamPopDriver,
    StreamPushDriver,
)


@dataclass
class _Bench:
    """Everything a session loop needs for one target."""

    top: Component
    drivers: List[object]
    monitors: List[ProtocolMonitor]
    group: CoverGroup
    sampler: Callable[[], Dict[str, object]]


@dataclass(frozen=True)
class TargetSpec:
    """A registered verification target.

    Every registered target is held to full coverage closure by
    ``tests/verify/test_session.py`` — declaring a target *is* the claim
    that its covergroup closes within the default budget.
    """

    name: str
    default_cycles: int
    build: Callable[[RngPool], _Bench]


@dataclass
class VerifyResult:
    """Outcome of one verification session."""

    target: str
    seed: int
    cycles: int
    strategy: str
    coverage: CoverGroup
    violations: List[Violation] = field(default_factory=list)
    transactions: int = 0

    @property
    def ok(self) -> bool:
        return not self.violations

    @property
    def coverage_percent(self) -> float:
        return self.coverage.percent

    def repro_command(self) -> str:
        """Shell command reproducing this exact session.

        The seed is passed both ways on purpose: ``--seeds`` pins the CLI
        session, and the ``REPRO_SEED`` export covers everything else the
        run may touch (benchmark frames, testing helpers).
        """
        return (f"{SEED_ENV}={self.seed} PYTHONPATH=src python -m repro.verify "
                f"'{self.target}' --seeds {self.seed} "
                f"--cycles {self.cycles} --strategy {self.strategy}")

    def summary(self) -> str:
        status = "ok" if self.ok else f"{len(self.violations)} VIOLATION(S)"
        return (f"{self.target:<24} seed={self.seed:<3} "
                f"cycles={self.cycles:<6} cov={self.coverage_percent:5.1f}% "
                f"tx={self.transactions:<5} {status}")


# ---------------------------------------------------------------------------
# Covergroups
# ---------------------------------------------------------------------------

_STATES = {"accept": "accept", "blocked": "blocked", "idle": "idle"}


def _stream_covergroup(name: str) -> CoverGroup:
    group = CoverGroup(name)
    group.point("fill", dict(_STATES))
    group.point("drain", dict(_STATES))
    group.point("flow", {"flowing": "flowing", "backpressured": "backpressured",
                         "drained": "drained"})
    # Only structurally-reachable combinations are goals: a container cannot
    # be full and empty at once, so (blocked, blocked) is never declared.
    group.cross("fill_x_drain", ("fill", "drain"), [
        ("accept", "accept"), ("accept", "idle"), ("idle", "accept"),
        ("blocked", "idle"), ("idle", "blocked"), ("idle", "idle"),
    ])
    return group


def _window_covergroup(name: str, line_width: int) -> CoverGroup:
    group = CoverGroup(name)
    group.point("phase", {"warmup": "warmup", "streaming": "streaming"})
    group.point("fill", dict(_STATES))
    group.point("window", {"pop": "pop", "hold": "hold"})
    half = line_width // 2
    group.point("x", {"left": (0, half - 1), "right": (half, line_width - 1)})
    # Warm-up never blocks the fill side (pixels auto-advance into the line
    # memories), so only the streaming-phase blocked combination is a goal.
    group.cross("phase_x_fill", ("phase", "fill"), [
        ("warmup", "accept"), ("streaming", "accept"),
        ("streaming", "blocked"), ("streaming", "idle"),
    ])
    return group


def _vector_covergroup(name: str, capacity: int) -> CoverGroup:
    group = CoverGroup(name)
    group.point("op", {"read": "read", "write": "write", "seek": "seek",
                       "move": "move"})
    half = capacity // 2
    group.point("region", {"low": (0, half - 1), "high": (half, capacity - 1)})
    group.cross("op_x_region", ("op", "region"), [
        ("read", "low"), ("read", "high"), ("write", "low"), ("write", "high"),
    ])
    return group


def _assoc_covergroup(name: str, capacity: int) -> CoverGroup:
    group = CoverGroup(name)
    group.point("op", {
        "lookup_hit": "lookup_hit", "lookup_miss": "lookup_miss",
        "insert_new": "insert_new", "insert_update": "insert_update",
        "remove_hit": "remove_hit", "remove_miss": "remove_miss"})
    group.point("fullness", {"empty": 0, "partial": (1, capacity - 1),
                             "full": capacity})
    group.cross("op_x_fullness", ("op", "fullness"), [
        ("insert_new", "empty"), ("insert_new", "partial"),
        ("lookup_hit", "partial"), ("lookup_miss", "partial"),
        ("remove_hit", "partial"), ("insert_update", "full"),
    ])
    return group


def _adapter_covergroup(name: str) -> CoverGroup:
    group = CoverGroup(name)
    group.point("input", dict(_STATES))
    group.point("output", dict(_STATES))
    group.point("phase", {"load": "load", "shift": "shift"})
    # The two sides are phase-exclusive by construction: the wide side only
    # accepts while loading, the narrow side only delivers while shifting
    # (and vice versa for the up-converter), so accept-in-the-wrong-phase
    # combinations are structurally unreachable and never declared.
    group.cross("input_x_phase", ("input", "phase"), [
        ("accept", "load"), ("idle", "load"),
        ("blocked", "shift"), ("idle", "shift"),
    ])
    group.cross("output_x_phase", ("output", "phase"), [
        ("accept", "shift"), ("idle", "shift"),
        ("blocked", "load"), ("idle", "load"),
    ])
    return group


def _arbiter_covergroup(name: str, ways: int, policy: str) -> CoverGroup:
    group = CoverGroup(name)
    group.point("nreq", {"zero": 0, "one": 1, "many": (2, ways)})
    grant_bins = {"idle": "idle"}
    grant_bins.update({f"g{i}": f"g{i}" for i in range(ways)})
    group.point("grant", grant_bins)
    # Arbitration is combinational: with any request active a grant exists
    # the same cycle, so "idle" pairs only with "zero".  Every requester
    # must win both uncontended ("one") and contended ("many") rounds —
    # except the lowest-priority requester of a fixed-priority arbiter,
    # which by definition only ever wins alone (any competitor outranks
    # it), so its "many" combination is structurally unreachable.
    combos = [("zero", "idle")]
    combos += [("one", f"g{i}") for i in range(ways)]
    contendable = ways - 1 if policy == "priority" else ways
    combos += [("many", f"g{i}") for i in range(contendable)]
    group.cross("nreq_x_grant", ("nreq", "grant"), combos)
    return group


def _design_covergroup(name: str, serialized: bool = False) -> CoverGroup:
    group = CoverGroup(name)
    group.point("input", dict(_STATES))
    group.point("output", {"accept": "accept", "starved": "starved",
                           "idle": "idle"})
    # A fully-serialized pipeline (every element through a multi-cycle
    # external-SRAM handshake) moves one pixel at a time, so input-accept
    # and output-accept cycles strictly alternate: the accept/accept
    # combination is structurally unreachable there and a blocked/idle
    # goal replaces it.
    if serialized:
        combos = [("blocked", "idle"), ("accept", "starved"),
                  ("idle", "accept"), ("idle", "idle")]
    else:
        combos = [("accept", "accept"), ("accept", "starved"),
                  ("idle", "accept"), ("idle", "idle")]
    group.cross("input_x_output", ("input", "output"), combos)
    return group


# ---------------------------------------------------------------------------
# Target registry
# ---------------------------------------------------------------------------

TARGETS: Dict[str, TargetSpec] = {}


def _register(name: str, default_cycles: int):
    def deco(build: Callable[[RngPool], _Bench]):
        TARGETS[name] = TargetSpec(name, default_cycles, build)
        return build
    return deco


def _interfaces_of(container):
    """(sink-style, source-style) interface pair of a stream container."""
    fill = getattr(container, "fill", None) or container.sink
    drain = getattr(container, "drain", None) or container.source
    return fill, drain


def _stream_bench(pool: RngPool, kind: str, binding: str,
                  capacity: int = 4) -> _Bench:
    from ..core import make_container

    container = make_container(kind, binding, "dut", width=8,
                               capacity=capacity)
    fill, drain = _interfaces_of(container)
    is_sram = binding == "sram"
    is_stack = kind == "stack"
    # The queue-family SRAM bindings hold two extra elements in their
    # holding/prefetch registers; the stack SRAM binding's full guard
    # counts those registers inside its capacity.  The model capacity is
    # the *logical* bound the occupancy rule enforces.
    if is_stack:
        logical_capacity = capacity
        model = MultisetModel(capacity) if is_sram else LifoModel(capacity)
    else:
        logical_capacity = capacity + 2 if is_sram else capacity
        model = FifoModel(logical_capacity)
    monitor = StreamContainerMonitor(
        f"{kind}/{binding}", container, fill, drain, model,
        max_occupancy=logical_capacity,
        valid_stable=not (is_stack and is_sram),
        data_stable=not is_stack,
        check_conservation=not (is_stack and is_sram))
    # SRAM bindings serialise every element through a multi-cycle FSM, so
    # the drain side needs longer idle gaps for the prefetched element to
    # survive into a ready cycle (the "flowing" / accept-accept coverage
    # goals); the fast FIFO-class bindings use a denser mix.
    if is_sram:
        pop_constraints = StreamConstraints(burst=(1, 3), gap=(2, 9))
    else:
        pop_constraints = StreamConstraints(burst=(1, 4), gap=(0, 4))
    push = StreamPushDriver(fill, pool.stream("stimulus.fill"),
                            StreamConstraints(burst=(1, 6), gap=(0, 3)))
    pop = StreamPopDriver(drain, pool.stream("stimulus.drain"),
                          pop_constraints)
    group = _stream_covergroup(f"{kind}/{binding}")
    return _Bench(container, [push, pop], [monitor], group,
                  monitor.observation)


def _make_stream_target(kind: str, binding: str, cycles: int) -> None:
    @_register(f"{kind}/{binding}", cycles)
    def build(pool: RngPool, _kind=kind, _binding=binding) -> _Bench:
        return _stream_bench(pool, _kind, _binding)


for _kind, _binding, _cycles in [
    ("read_buffer", "fifo", 2000), ("read_buffer", "sram", 3000),
    ("write_buffer", "fifo", 2000), ("write_buffer", "sram", 3000),
    ("queue", "fifo", 2000), ("queue", "sram", 3000),
    ("stack", "lifo", 2000), ("stack", "sram", 4000),
]:
    _make_stream_target(_kind, _binding, _cycles)


@_register("read_buffer/linebuffer3", 3000)
def _linebuffer_bench(pool: RngPool) -> _Bench:
    from ..core import make_container

    line_width = 8
    container = make_container("read_buffer", "linebuffer3", "dut",
                               width=8, line_width=line_width)
    model = LineBufferModel(line_width)
    monitor = WindowBufferMonitor("read_buffer/linebuffer3", container, model)
    push = StreamPushDriver(container.fill, pool.stream("stimulus.fill"),
                            StreamConstraints(burst=(2, 8), gap=(0, 2)))
    pop = StreamPopDriver(container.window, pool.stream("stimulus.drain"),
                          StreamConstraints(burst=(1, 6), gap=(0, 3)))
    group = _window_covergroup("read_buffer/linebuffer3", line_width)
    return _Bench(container, [push, pop], [monitor], group,
                  monitor.observation)


class _VerifyHarness(Component):
    """Top component wrapping a container plus its iterator for simulation."""

    def __init__(self, name: str, container, iterator) -> None:
        super().__init__(name)
        self.container = self.child(container)
        self.iterator = self.child(iterator)


def _vector_bench(pool: RngPool, binding: str, capacity: int = 8) -> _Bench:
    from ..core import make_container, make_iterator

    container = make_container("vector", binding, "dut", width=8,
                               capacity=capacity)
    iterator = make_iterator(container, "random", readable=True,
                             writable=True, name="it")
    top = _VerifyHarness("harness", container, iterator)
    model = VectorModel(capacity, 8)
    port_monitor = RandomPortMonitor(f"vector/{binding}.port",
                                     container.port, model)
    it_monitor = IteratorMonitor(f"vector/{binding}.iterator",
                                 iterator.iface, capacity)
    driver = IteratorOpDriver(iterator.iface, pool.stream("stimulus.iterator"),
                              capacity)
    group = _vector_covergroup(f"vector/{binding}", capacity)

    seen = [0]

    def sampler() -> Dict[str, object]:
        if len(driver.completed) == seen[0]:
            return {}
        seen[0] = len(driver.completed)
        op = driver.completed[-1]
        obs: Dict[str, object] = {"op": op}
        if op in ("read", "write") and port_monitor.last_access is not None:
            obs["region"] = port_monitor.last_access[1]
        return obs

    return _Bench(top, [driver], [port_monitor, it_monitor], group, sampler)


def _make_vector_target(binding: str, cycles: int) -> None:
    @_register(f"vector/{binding}", cycles)
    def build(pool: RngPool, _binding=binding) -> _Bench:
        return _vector_bench(pool, _binding)


for _binding, _cycles in [("bram", 4000), ("sram", 6000),
                          ("registers", 3000)]:
    _make_vector_target(_binding, _cycles)


@_register("assoc_array/cam", 3000)
def _assoc_bench(pool: RngPool) -> _Bench:
    from ..core import make_container

    capacity = 4
    container = make_container("assoc_array", "cam", "dut", key_width=3,
                               value_width=8, capacity=capacity)
    model = AssocModel(capacity)
    monitor = AssocMonitor("assoc_array/cam", container, model)
    driver = AssocOpDriver(container.port, pool.stream("stimulus.assoc"),
                           capacity)
    group = _assoc_covergroup("assoc_array/cam", capacity)
    return _Bench(container, [driver], [monitor], group, monitor.observation)


# -- metagen components: width adapters and arbiters --------------------------


def _adapter_bench(pool: RngPool, direction: str, element_width: int = 24,
                   bus_width: int = 8) -> _Bench:
    from ..metagen import WidthDownConverter, WidthUpConverter

    name = f"adapter/{direction}"
    if direction == "down":
        converter = WidthDownConverter("dut", element_width=element_width,
                                       bus_width=bus_width)
        in_iface, out_iface = converter.wide_in, converter.narrow_out
        push_max = (1 << element_width) - 1
    else:
        converter = WidthUpConverter("dut", element_width=element_width,
                                     bus_width=bus_width)
        in_iface, out_iface = converter.narrow_in, converter.wide_out
        push_max = (1 << bus_width) - 1
    monitor = WidthAdapterMonitor(name, converter, direction)
    # Push gaps longer than one serialisation (beats) so the idle-while-
    # loadable coverage goal is reachable: a short gap would always be
    # swallowed by the shift phase of the previous element.
    push = StreamPushDriver(in_iface, pool.stream("stimulus.fill"),
                            StreamConstraints(burst=(1, 4), gap=(0, 7),
                                              data_max=push_max))
    pop = StreamPopDriver(out_iface, pool.stream("stimulus.drain"),
                          StreamConstraints(burst=(1, 5), gap=(0, 3)))
    group = _adapter_covergroup(name)
    return _Bench(converter, [push, pop], [monitor], group,
                  monitor.observation)


@_register("adapter/down", 1500)
def _adapter_down_bench(pool: RngPool) -> _Bench:
    return _adapter_bench(pool, "down")


@_register("adapter/up", 1500)
def _adapter_up_bench(pool: RngPool) -> _Bench:
    return _adapter_bench(pool, "up")


def _arbiter_bench(pool: RngPool, policy: str, ways: int = 3) -> _Bench:
    from ..primitives import PriorityArbiter, RoundRobinArbiter

    arbiter_cls = RoundRobinArbiter if policy == "roundrobin" else PriorityArbiter
    arbiter = arbiter_cls("dut", ways)
    name = f"arbiter/{policy}"
    monitor = ArbiterMonitor(name, arbiter, policy)
    driver = RequestDriver(arbiter.requests, pool.stream("stimulus.requests"),
                           hold=(1, 4), idle=(0, 3))
    group = _arbiter_covergroup(name, ways, policy)
    return _Bench(arbiter, [driver], [monitor], group, monitor.observation)


@_register("arbiter/priority", 1500)
def _arbiter_priority_bench(pool: RngPool) -> _Bench:
    return _arbiter_bench(pool, "priority")


@_register("arbiter/roundrobin", 1500)
def _arbiter_roundrobin_bench(pool: RngPool) -> _Bench:
    return _arbiter_bench(pool, "roundrobin")


# -- pipeline designs --------------------------------------------------------


def _pipeline_bench(pool: RngPool, design: Component,
                    group_name: Optional[str] = None) -> _Bench:
    """Bench for any design exposing ``input_fill``/``output_drain``.

    Stimulus is a constrained-random frame (full lines when the design
    declares a ``line_width``), pushed with random bursts and gaps while
    the drain side pops with its own random schedule; accepted outputs are
    checked against the design's golden model
    (:meth:`expected_output`, identity when the design does not define it).
    """
    width_bits = getattr(design, "width", 8)
    data_max = (1 << width_bits) - 1
    line_width = getattr(design, "line_width", 8)
    height = 10
    rng = pool.stream("stimulus.frame")
    pixels = [rng.randint(0, data_max) for _ in range(line_width * height)]
    expected_fn = getattr(design, "expected_output", None)
    expected = expected_fn(pixels) if expected_fn is not None else list(pixels)

    serialized = getattr(design, "binding", "") == "sram"
    monitor = ExpectedStreamMonitor(
        group_name or design.name, design.output_drain,
        ExpectedStreamModel(expected))
    push = StreamPushDriver(design.input_fill, pool.stream("stimulus.fill"),
                            StreamConstraints(burst=(2, 8), gap=(0, 2)),
                            data=pixels)
    pop = StreamPopDriver(design.output_drain, pool.stream("stimulus.drain"),
                          StreamConstraints(burst=(1, 4), gap=(0, 6)))
    group = _design_covergroup(group_name or design.name,
                               serialized=serialized)

    fill = design.input_fill

    def sampler() -> Dict[str, object]:
        if fill.push.value:
            in_state = "accept" if fill.ready.value else "blocked"
        else:
            in_state = "idle"
        obs: Dict[str, object] = {"input": in_state}
        obs.update(monitor.observation())
        return obs

    return _Bench(design, [push, pop], [monitor], group, sampler)


def _make_design_target(name: str, cycles: int, factory) -> None:
    @_register(name, cycles)
    def build(pool: RngPool, _factory=factory, _name=name) -> _Bench:
        return _pipeline_bench(pool, _factory(), group_name=_name)


def _saa2vga_factory(binding: str):
    def factory() -> Component:
        from ..designs import Saa2VgaPatternDesign

        return Saa2VgaPatternDesign(name="dut", binding=binding, width=8,
                                    capacity=8)
    return factory


def _blur_factory() -> Component:
    from ..designs import BlurPatternDesign

    return BlurPatternDesign(name="dut", line_width=8, width=8,
                             out_capacity=8)


_make_design_target("design/saa2vga-fifo", 2000, _saa2vga_factory("fifo"))
_make_design_target("design/saa2vga-sram", 4000, _saa2vga_factory("sram"))
_make_design_target("design/blur", 2500, _blur_factory)


@_register("design/flow-dualpath", 3000)
def _flow_dualpath_bench(pool: RngPool) -> _Bench:
    """An elaborated pipeline graph, verified like any design — plus one
    FIFO-ordered protocol monitor per elastic edge of the graph."""
    from ..designs import build_dual_path_saa2vga
    from ..flow import edge_monitors

    # Tight buffers on purpose: the input-blocked coverage goal needs the
    # whole pipeline to back-pressure within the session's random gaps.
    design = build_dual_path_saa2vga(name="dut", capacity=4, fifo_depth=2)
    bench = _pipeline_bench(pool, design, group_name="design/flow-dualpath")
    bench.monitors.extend(edge_monitors(design))
    return bench


def container_targets() -> List[str]:
    """Names of every registered container-binding target."""
    return [name for name in TARGETS
            if not name.startswith(("design/", "adapter/", "arbiter/"))]


def design_targets() -> List[str]:
    """Names of every registered pipeline-design target."""
    return [name for name in TARGETS if name.startswith("design/")]


def metagen_targets() -> List[str]:
    """Names of the standalone width-adapter and arbiter targets."""
    return [name for name in TARGETS
            if name.startswith(("adapter/", "arbiter/"))]


# ---------------------------------------------------------------------------
# The session runner
# ---------------------------------------------------------------------------


def _run_bench(bench: _Bench, target_name: str, seed: int, cycles: int,
               strategy: str, strict: bool) -> VerifyResult:
    sim = Simulator(bench.top, strategy=strategy)
    for monitor in bench.monitors:
        monitor.attach(sim)
    try:
        for _ in range(cycles):
            for driver in bench.drivers:
                driver.drive(sim.cycles)
            sim.settle()
            for driver in bench.drivers:
                driver.observe(sim.cycles)
            for monitor in bench.monitors:
                monitor.pre_edge(sim.cycles)
            bench.group.sample(**bench.sampler())
            sim.step()
            if strict:
                for monitor in bench.monitors:
                    if monitor.violations:
                        raise VerificationError(
                            f"{monitor.violations[0]}\nreproduce with: "
                            f"{SEED_ENV}={seed} python -m repro.verify "
                            f"'{target_name}'")
    finally:
        for monitor in bench.monitors:
            monitor.detach()
    violations = [v for monitor in bench.monitors
                  for v in monitor.violations]
    violations.sort(key=lambda v: v.cycle)
    return VerifyResult(
        target=target_name, seed=seed, cycles=cycles, strategy=strategy,
        coverage=bench.group, violations=violations,
        transactions=sum(m.transactions for m in bench.monitors))


def _resolve_bench(target: Union[str, Component], pool: RngPool,
                   cycles: Optional[int]) -> tuple:
    """Build one bench for ``target``: (bench, name, cycle budget)."""
    if isinstance(target, str):
        try:
            spec = TARGETS[target]
        except KeyError:
            raise VerificationError(
                f"unknown verification target {target!r}; known targets: "
                f"{sorted(TARGETS)}") from None
        return (spec.build(pool), spec.name,
                spec.default_cycles if cycles is None else cycles)
    if not hasattr(target, "input_fill") or \
            not hasattr(target, "output_drain"):
        raise VerificationError(
            f"component {target!r} exposes no input_fill/output_drain "
            f"interfaces and is not a registered target name")
    return (_pipeline_bench(pool, target), f"component/{target.name}",
            1500 if cycles is None else cycles)


def verify(target: Union[str, Component], seed: int = 0,
           cycles: Optional[int] = None, strategy: str = EVENT,
           strict: bool = False) -> VerifyResult:
    """Run one constrained-random verification session.

    Parameters
    ----------
    target:
        A registered target name (see :data:`TARGETS`) or any component
        exposing ``input_fill``/``output_drain`` stream interfaces (a
        pipeline design); such a component may additionally implement
        ``expected_output(inputs) -> outputs`` as its golden model.
    seed:
        Root seed; every driver derives its own named stream from it, so
        one integer reproduces the whole session.
    cycles:
        Simulated cycle budget (default: the target's registered budget,
        or 1500 for ad-hoc components).
    strategy:
        Settle strategy — sessions behave identically under ``event``,
        ``fixpoint``, ``compiled`` and (as a one-lane batch)
        ``compiled-batched``.
    strict:
        Raise :class:`VerificationError` on the first violation instead of
        collecting all of them.
    """
    if strategy == COMPILED_BATCHED:
        return verify_matrix(target, [seed], cycles=cycles, strict=strict)[0]
    pool = RngPool(seed)
    bench, name, budget = _resolve_bench(target, pool, cycles)
    return _run_bench(bench, name, pool.seed, budget, strategy, strict)


def verify_matrix(target: Union[str, Component], seeds: Sequence[int],
                  cycles: Optional[int] = None,
                  strategy: str = COMPILED_BATCHED,
                  strict: bool = False) -> List[VerifyResult]:
    """Run a whole seed matrix over one target as a single batched session.

    One bench is built per seed — each with its own independent
    :class:`RngPool`, so lane ``i`` receives exactly the stimulus a scalar
    ``verify(target, seed=seeds[i])`` session would — and every lane's DUT
    advances through one :class:`~repro.rtl.BatchedSimulator` lockstep loop.
    Drivers poke and monitors observe through per-lane mirrored signal
    state, so the per-seed results (violations, coverage, transactions) are
    identical to the scalar sessions'.

    A scalar ``strategy`` is accepted as an escape hatch and simply runs
    the seeds sequentially through :func:`verify`.

    For a component target, each lane needs its own DUT instance:
    component targets are re-built per lane via a fresh
    ``type(target)``-independent path only when ``target`` is a registered
    name; passing a live component with more than one seed is rejected
    (two lanes cannot share one hierarchy).
    """
    seeds = list(seeds)
    if not seeds:
        return []
    if strategy != COMPILED_BATCHED:
        return [verify(target, seed=seed, cycles=cycles, strategy=strategy,
                       strict=strict) for seed in seeds]
    if not isinstance(target, str) and len(seeds) > 1:
        raise VerificationError(
            "batched seed matrices over a live component need one DUT per "
            "lane; pass a registered target name instead")
    pools = [RngPool(seed) for seed in seeds]
    benches: List[_Bench] = []
    name = ""
    budget = 0
    for pool in pools:
        bench, name, budget = _resolve_bench(target, pool, cycles)
        benches.append(bench)
    sim = BatchedSimulator([bench.top for bench in benches])
    for lane, bench in enumerate(benches):
        view = sim.lane(lane)
        for monitor in bench.monitors:
            monitor.attach(view)
    try:
        for _ in range(budget):
            cycle = sim.cycles
            for bench in benches:
                for driver in bench.drivers:
                    driver.drive(cycle)
            sim.settle()
            for bench in benches:
                for driver in bench.drivers:
                    driver.observe(cycle)
                for monitor in bench.monitors:
                    monitor.pre_edge(cycle)
                bench.group.sample(**bench.sampler())
            sim.step()
            if strict:
                for pool, bench in zip(pools, benches):
                    for monitor in bench.monitors:
                        if monitor.violations:
                            raise VerificationError(
                                f"{monitor.violations[0]}\nreproduce with: "
                                f"{SEED_ENV}={pool.seed} python -m "
                                f"repro.verify '{name}'")
    finally:
        for bench in benches:
            for monitor in bench.monitors:
                monitor.detach()
    results: List[VerifyResult] = []
    for pool, bench in zip(pools, benches):
        violations = [v for monitor in bench.monitors
                      for v in monitor.violations]
        violations.sort(key=lambda v: v.cycle)
        results.append(VerifyResult(
            target=name, seed=pool.seed, cycles=budget,
            strategy=COMPILED_BATCHED, coverage=bench.group,
            violations=violations,
            transactions=sum(m.transactions for m in bench.monitors)))
    return results


def verify_gains(target: Union[str, Component], seeds: Sequence[int],
                 db: CoverageDB, cycles: Optional[int] = None,
                 strategy: str = COMPILED_BATCHED,
                 strict: bool = False) -> tuple:
    """Run a seed matrix and fold its coverage into ``db``, seed by seed.

    Returns ``(results, gains)`` where ``gains[i]`` is the sorted list of
    goal names seed ``seeds[i]`` *newly* closed in ``db``
    (:meth:`CoverageDB.add_delta`).  Merge order is seed order, so when two
    seeds both hit a previously-open goal the earlier one takes the credit
    — exactly the marginal-closure reward the coverage-directed search
    driver (:mod:`repro.search`) optimises.  Under the default
    ``compiled-batched`` strategy the whole matrix still runs as one
    lockstep session.
    """
    results = verify_matrix(target, seeds, cycles=cycles, strategy=strategy,
                            strict=strict)
    gains = [db.add_delta(result.coverage) for result in results]
    return results, gains


def verify_all(targets: Optional[Sequence[str]] = None,
               seeds: Sequence[int] = (0,), cycles: Optional[int] = None,
               strategy: str = EVENT) -> tuple:
    """Run a seed matrix over many targets; returns (results, merged DB)."""
    names = list(targets) if targets else list(TARGETS)
    results: List[VerifyResult] = []
    db = CoverageDB()
    for name in names:
        for seed in seeds:
            result = verify(name, seed=seed, cycles=cycles, strategy=strategy)
            results.append(result)
            db.add(result.coverage)
    return results, db
