"""Constrained-random stimulus drivers for the library's interfaces.

Drivers are the active side of a verification session: each one owns a
named RNG stream (from :mod:`repro.verify.rng`) and forces the *input*
signals of one interface every cycle, within declarative constraints —
weighted operation mixes, bounded bursts and idle gaps, optional
protocol-violating attempts (pushing while not ready, popping while not
valid) so the monitors' backpressure rules actually get exercised.

The session loop drives the two-phase handshake explicitly::

    driver.drive(cycle)      # force inputs for this cycle
    sim.settle()             # combinational outputs now reflect them
    driver.observe(cycle)    # record what the DUT accepted
    ...                      # monitors sample, coverage samples
    sim.step()               # clock edge

Drivers use :meth:`Signal.force`, the sanctioned test-bench poke, so they
work identically under the fixpoint, event-driven and compiled settle
strategies.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from random import Random
from typing import Dict, List, Optional, Sequence


@dataclass
class StreamConstraints:
    """Shape of a constrained-random stream driver's activity.

    The driver alternates *bursts* (strobe asserted every cycle) and *idle
    gaps* (strobe deasserted), with lengths drawn uniformly from the given
    inclusive ranges.  ``blind_rate`` is the probability that a burst cycle
    strobes even though the DUT is not ready/valid — legal stimulus that
    the container must ignore, and the only way to reach the ``blocked``
    coverage bins (push attempted while full, pop while empty).
    """

    burst: Sequence[int] = (1, 6)
    gap: Sequence[int] = (0, 3)
    blind_rate: float = 1.0
    data_max: int = 255


@dataclass
class IteratorConstraints:
    """Operation mix of an iterator driver (weights need not sum to 1)."""

    weights: Dict[str, float] = field(default_factory=lambda: {
        "read": 4.0, "write": 4.0, "seek": 1.0, "move": 1.0})
    data_max: int = 255
    gap: Sequence[int] = (0, 2)


class _BurstSchedule:
    """Shared burst/gap state machine for stream-style drivers."""

    def __init__(self, rng: Random, constraints: StreamConstraints) -> None:
        self._rng = rng
        self._c = constraints
        self._burst_left = 0
        self._gap_left = 0

    def active(self) -> bool:
        """Advance one cycle; True when this cycle is a burst cycle."""
        if self._burst_left > 0:
            self._burst_left -= 1
            return True
        if self._gap_left > 0:
            self._gap_left -= 1
            return False
        self._burst_left = self._rng.randint(*self._c.burst) - 1
        self._gap_left = self._rng.randint(*self._c.gap)
        return True


class StreamPushDriver:
    """Drive the producer side of a :class:`StreamSinkIface` (data/push).

    ``data`` may be a pre-planned list (pipeline stimulus: pixels of a
    frame, consumed in order as the DUT accepts them) or ``None`` for fresh
    constrained-random values each accepted transfer.
    """

    def __init__(self, iface, rng: Random,
                 constraints: Optional[StreamConstraints] = None,
                 data: Optional[Sequence[int]] = None) -> None:
        self.iface = iface
        self.rng = rng
        self.constraints = constraints or StreamConstraints()
        self._schedule = _BurstSchedule(rng, self.constraints)
        self._planned: Optional[List[int]] = list(data) if data is not None else None
        self._current: Optional[int] = None
        self.sent: List[int] = []
        self.attempts = 0

    def _next_value(self) -> Optional[int]:
        if self._planned is not None:
            if not self._planned:
                return None
            return self._planned[0]
        return self.rng.randint(0, self.constraints.data_max)

    def drive(self, cycle: int) -> None:
        if self._current is None:
            if not self._schedule.active():
                self.iface.push.force(0)
                return
            value = self._next_value()
            if value is None:  # planned stimulus exhausted
                self.iface.push.force(0)
                return
            self._current = value
        if (not self.iface.ready.value
                and self.rng.random() >= self.constraints.blind_rate):
            # Politely wait for ready instead of strobing blind this cycle.
            self.iface.push.force(0)
            return
        self.iface.data.force(self._current)
        self.iface.push.force(1)
        self.attempts += 1

    def observe(self, cycle: int) -> None:
        if (self._current is not None and self.iface.push.value
                and self.iface.ready.value):
            self.sent.append(self._current)
            if self._planned is not None:
                self._planned.pop(0)
            self._current = None

    @property
    def remaining(self) -> Optional[int]:
        return len(self._planned) if self._planned is not None else None


class StreamPopDriver:
    """Drive the consumer side of a :class:`StreamSourceIface` (pop)."""

    def __init__(self, iface, rng: Random,
                 constraints: Optional[StreamConstraints] = None) -> None:
        self.iface = iface
        self.rng = rng
        self.constraints = constraints or StreamConstraints()
        self._schedule = _BurstSchedule(rng, self.constraints)
        self.received: List[int] = []
        self.attempts = 0

    def drive(self, cycle: int) -> None:
        if not self._schedule.active():
            self.iface.pop.force(0)
            return
        if (not self.iface.valid.value
                and self.rng.random() >= self.constraints.blind_rate):
            self.iface.pop.force(0)
            return
        self.iface.pop.force(1)
        self.attempts += 1

    def observe(self, cycle: int) -> None:
        if self.iface.pop.value and self.iface.valid.value:
            # Window sources carry a pixel column instead of a single
            # ``data`` signal; record the centre pixel there.  (Explicit
            # None checks: a Signal holding 0 is falsy.)
            data = getattr(self.iface, "data", None)
            if data is None:
                data = getattr(self.iface, "col_mid", None)
            self.received.append(data.value if data is not None else 0)


class RequestDriver:
    """Drive a bank of 1-bit request lines with random hold/idle spans.

    Each line independently alternates between an asserted span (the
    requester wanting the resource) and an idle span, with lengths drawn
    from the given inclusive ranges — producing the single-requester,
    contended and all-idle arbitration situations a covergroup wants to
    see.  The driver also counts, per line, how many request spans
    completed, so fairness checks have a denominator.
    """

    def __init__(self, requests, rng: Random,
                 hold: Sequence[int] = (1, 4),
                 idle: Sequence[int] = (0, 3)) -> None:
        self.requests = list(requests)
        self.rng = rng
        self.hold = hold
        self.idle = idle
        #: Per line: (asserted?, cycles left in the current span).
        self._state: List[List[int]] = [[0, 0] for _ in self.requests]
        self.spans: List[int] = [0] * len(self.requests)

    def drive(self, cycle: int) -> None:
        for i, line in enumerate(self.requests):
            asserted, left = self._state[i]
            if left <= 0:
                if asserted:
                    self.spans[i] += 1
                asserted = 0 if asserted else 1
                left = self.rng.randint(*(self.hold if asserted else self.idle))
                if asserted and left < 1:
                    left = 1
            self._state[i] = [asserted, left - 1]
            line.force(asserted)

    def observe(self, cycle: int) -> None:
        """Nothing to record: the monitor watches the grant side."""


class IteratorOpDriver:
    """Drive a :class:`IteratorIface` with a weighted operation mix.

    Follows the done-based protocol of Table 2: an operation's strobes are
    held until ``done`` pulses, then released for at least one cycle.
    Reads/writes start only when the matching ``can_read``/``can_write`` is
    high; ``seek`` targets a random position below ``capacity`` (seeking
    out of bounds is the monitor's business to flag, so the driver may be
    configured to try it via ``seek_overshoot``).
    """

    def __init__(self, iface, rng: Random, capacity: int,
                 constraints: Optional[IteratorConstraints] = None,
                 seek_overshoot: bool = False) -> None:
        self.iface = iface
        self.rng = rng
        self.capacity = capacity
        self.constraints = constraints or IteratorConstraints()
        self.seek_overshoot = seek_overshoot
        self._op: Optional[str] = None
        self._cooldown = 0
        self.completed: List[str] = []

    def _release(self) -> None:
        iface = self.iface
        iface.read.force(0)
        iface.write.force(0)
        iface.inc.force(0)
        iface.dec.force(0)
        iface.index.force(0)

    def _choose_op(self) -> Optional[str]:
        ops, weights = zip(*self.constraints.weights.items())
        op = self.rng.choices(ops, weights=weights)[0]
        if op == "read" and not self.iface.can_read.value:
            return None
        if op == "write" and not self.iface.can_write.value:
            return None
        return op

    def drive(self, cycle: int) -> None:
        if self._op is not None:
            return  # strobes held, waiting for done
        self._release()
        if self._cooldown > 0:
            self._cooldown -= 1
            return
        op = self._choose_op()
        if op is None:
            return
        iface = self.iface
        if op == "read":
            iface.read.force(1)
            if self.rng.random() < 0.5:
                iface.inc.force(1)
        elif op == "write":
            iface.wdata.force(self.rng.randint(0, self.constraints.data_max))
            iface.write.force(1)
            if self.rng.random() < 0.5:
                iface.inc.force(1)
        elif op == "seek":
            limit = (2 * self.capacity if self.seek_overshoot
                     else self.capacity) - 1
            iface.pos.force(self.rng.randint(0, max(0, limit)))
            iface.index.force(1)
        else:  # move
            if self.rng.random() < 0.5:
                iface.inc.force(1)
            else:
                iface.dec.force(1)
        self._op = op

    def observe(self, cycle: int) -> None:
        # No forcing here: monitors sample after observe, so strobes must
        # stay as driven; the next drive() releases them.
        if self._op is not None and self.iface.done.value:
            self.completed.append(self._op)
            self._op = None
            self._cooldown = 1 + self.rng.randint(*self.constraints.gap)


class AssocOpDriver:
    """Drive an :class:`AssocIface` with lookups, inserts and removals.

    Keys are drawn from a deliberately small space (twice the capacity) so
    hits, misses, in-place updates and full-CAM inserts all occur within a
    short run.
    """

    def __init__(self, iface, rng: Random, capacity: int,
                 value_max: int = 255) -> None:
        self.iface = iface
        self.rng = rng
        self.capacity = capacity
        self.value_max = value_max
        self.key_space = max(2, 2 * capacity)
        self._op: Optional[str] = None
        self._cooldown = 0
        self.completed: List[str] = []

    def _release(self) -> None:
        iface = self.iface
        iface.lookup.force(0)
        iface.insert.force(0)
        iface.remove.force(0)

    def drive(self, cycle: int) -> None:
        if self._op is not None:
            return
        self._release()
        if self._cooldown > 0:
            self._cooldown -= 1
            return
        if self.rng.random() < 0.25:
            return  # idle cycle
        op = self.rng.choices(("lookup", "insert", "remove"),
                              weights=(3.0, 4.0, 2.0))[0]
        iface = self.iface
        key = self.rng.randrange(self.key_space)
        if op == "lookup":
            iface.key.force(key)
            iface.lookup.force(1)
        elif op == "insert":
            iface.insert_key.force(key)
            iface.insert_value.force(self.rng.randint(0, self.value_max))
            iface.insert.force(1)
        else:
            iface.remove_key.force(key)
            iface.remove.force(1)
        self._op = op

    def observe(self, cycle: int) -> None:
        # Strobes are released by the next drive(), never here (see above).
        # The one-cycle cooldown guarantees a strobe-free cycle between
        # operations, which the monitor uses to delimit transactions.
        if self._op is not None and self.iface.done.value:
            self.completed.append(self._op)
            self._op = None
            self._cooldown = 1
