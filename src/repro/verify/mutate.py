"""Test-only fault injection for the mutation smoke tests.

The verification subsystem is itself verified by seeding known protocol
bugs into the shipped primitives and asserting that the monitors catch
every one.  A mutation is a *named switch*: enabling it before a component
is constructed makes that component register a deliberately-broken variant
of one of its processes.  Construction-time selection keeps the pristine
process source byte-identical to the shipped code (so the compiled
backend's static analysis is unaffected when no mutation is active) and
costs nothing on the simulation hot path.

Usage (tests only)::

    with mutate.inject("fifo.drop_full_guard"):
        dut = make_container("queue", "fifo", "q", width=8, capacity=4)
        result = verify(dut, ...)
    assert not result.ok

This module must stay import-free of the rest of the package: the
primitives import it at module load time, long before the heavier
verification modules are usable.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator, Set

#: Catalogue of every mutation the primitives/containers understand.
KNOWN = {
    "fifo.drop_full_guard":
        "SyncFIFO accepts a push even when full (overwrites, occupancy grows)",
    "fifo.pop_empty_guard":
        "SyncFIFO honours a pop even when empty (occupancy underflows)",
    "fifo.stale_dout":
        "SyncFIFO presents the element *behind* the head on dout",
    "lifo.reverse_order":
        "SyncLIFO presents the bottom of the stack instead of the top",
    "queue.ready_when_full":
        "QueueFIFO asserts sink.ready even when the FIFO is full",
    # Batched-emitter faults: these switch the *vectorized code generator*
    # (repro.rtl.compile.emit_batched), not a primitive — enabling one makes
    # every BatchedSimulator program emitted from then on carry the fault.
    "batched.cross_lane_mask_reuse":
        "Batched emitter ORs a branch's lane mask with its lane-reversed "
        "self, leaking guarded writes into sibling lanes",
    "batched.stale_lane_commit":
        "Batched emitter's clock-edge commit skips the last lane column, "
        "freezing that lane's registers at their pre-edge values",
}

_active: Set[str] = set()


def enable(name: str) -> None:
    """Activate a mutation for components constructed from now on."""
    if name not in KNOWN:
        raise ValueError(
            f"unknown mutation {name!r}; known: {sorted(KNOWN)}")
    _active.add(name)


def disable(name: str) -> None:
    """Deactivate a mutation (no-op if it was not active)."""
    _active.discard(name)


def clear() -> None:
    """Deactivate every mutation."""
    _active.clear()


def enabled(name: str) -> bool:
    """Whether ``name`` is currently active (False for unknown names)."""
    return name in _active


def active() -> Set[str]:
    """A copy of the active mutation set."""
    return set(_active)


@contextmanager
def inject(*names: str) -> Iterator[None]:
    """Context manager enabling mutations for the duration of a block."""
    for name in names:
        enable(name)
    try:
        yield
    finally:
        for name in names:
            disable(name)
