"""Golden Python reference models, checked transaction by transaction.

Each model mirrors the *observable contract* of a container kind: what a
correct DUT must present on its drain side given the sequence of accepted
pushes and pops.  The protocol monitors feed models with accepted
transactions and ask them what the DUT should currently be showing; a
disagreement is a functional bug (or a seeded mutation).

Ordering contracts:

* ``FifoModel`` — strict first-in-first-out (read/write buffers, queues);
* ``LifoModel`` — strict last-in-first-out (stack over the LIFO core, whose
  visible top updates in the push cycle);
* ``MultisetModel`` — conservation only: every popped element must have
  been pushed and not yet popped.  Used for the stack-over-SRAM binding,
  whose *visible* top lags pushes by the few cycles its FSM needs to spill
  the previous top to external memory — order across a concurrent
  push/pop race is defined by what the DUT displays, but data must never
  be invented, duplicated or lost.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List, Optional


class StreamModel:
    """Base reference model for stream (push/pop) containers."""

    #: Ordering contract this model enforces.
    order = "abstract"

    def __init__(self, capacity: int) -> None:
        self.capacity = capacity
        self.pushed = 0
        self.popped = 0

    # -- transaction interface (called by monitors) ------------------------

    def push(self, value: int) -> Optional[str]:
        """Record an accepted push; returns an error string on overflow."""
        raise NotImplementedError

    def pop(self, value: int) -> Optional[str]:
        """Record an accepted pop of ``value``; returns an error on mismatch."""
        raise NotImplementedError

    def front(self) -> Optional[int]:
        """The value a correct DUT presents on its drain side (None = any)."""
        raise NotImplementedError

    @property
    def occupancy(self) -> int:
        raise NotImplementedError


class FifoModel(StreamModel):
    """Strict FIFO ordering over a bounded capacity."""

    order = "fifo"

    def __init__(self, capacity: int) -> None:
        super().__init__(capacity)
        self._items: Deque[int] = deque()

    def push(self, value: int) -> Optional[str]:
        if len(self._items) >= self.capacity:
            return (f"push of 0x{value:x} accepted while the model holds "
                    f"{len(self._items)}/{self.capacity} elements")
        self._items.append(value)
        self.pushed += 1
        return None

    def pop(self, value: int) -> Optional[str]:
        if not self._items:
            return f"pop of 0x{value:x} accepted while the model is empty"
        expected = self._items.popleft()
        self.popped += 1
        if value != expected:
            return f"popped 0x{value:x}, expected head 0x{expected:x}"
        return None

    def front(self) -> Optional[int]:
        return self._items[0] if self._items else None

    @property
    def occupancy(self) -> int:
        return len(self._items)


class LifoModel(StreamModel):
    """Strict LIFO ordering over a bounded capacity.

    Mirrors :class:`repro.primitives.SyncLIFO`'s concurrent push+pop rule:
    both accepted in the same cycle replace the top element in place.
    """

    order = "lifo"

    def __init__(self, capacity: int) -> None:
        super().__init__(capacity)
        self._items: List[int] = []

    def push(self, value: int) -> Optional[str]:
        if len(self._items) >= self.capacity:
            return (f"push of 0x{value:x} accepted while the model holds "
                    f"{len(self._items)}/{self.capacity} elements")
        self._items.append(value)
        self.pushed += 1
        return None

    def pop(self, value: int) -> Optional[str]:
        if not self._items:
            return f"pop of 0x{value:x} accepted while the model is empty"
        expected = self._items.pop()
        self.popped += 1
        if value != expected:
            return f"popped 0x{value:x}, expected top 0x{expected:x}"
        return None

    def replace_top(self, value: int) -> Optional[str]:
        """Concurrent push+pop: the popped top is replaced by the new value."""
        if not self._items:
            return f"push+pop of 0x{value:x} accepted while the model is empty"
        self._items[-1] = value
        self.pushed += 1
        self.popped += 1
        return None

    def front(self) -> Optional[int]:
        return self._items[-1] if self._items else None

    @property
    def occupancy(self) -> int:
        return len(self._items)


class MultisetModel(StreamModel):
    """Conservation-only contract: popped values must have been pushed."""

    order = "multiset"

    def __init__(self, capacity: int) -> None:
        super().__init__(capacity)
        self._counts: Dict[int, int] = {}
        self._size = 0

    def push(self, value: int) -> Optional[str]:
        if self._size >= self.capacity:
            return (f"push of 0x{value:x} accepted while the model holds "
                    f"{self._size}/{self.capacity} elements")
        self._counts[value] = self._counts.get(value, 0) + 1
        self._size += 1
        self.pushed += 1
        return None

    def pop(self, value: int) -> Optional[str]:
        held = self._counts.get(value, 0)
        if not held:
            return (f"popped 0x{value:x}, which was never pushed (or already "
                    f"popped)")
        if held == 1:
            del self._counts[value]
        else:
            self._counts[value] = held - 1
        self._size -= 1
        self.popped += 1
        return None

    def front(self) -> Optional[int]:
        return None  # any held value may be visible

    @property
    def occupancy(self) -> int:
        return self._size


class VectorModel:
    """Reference for random-access vectors: a plain array of words."""

    def __init__(self, capacity: int, width: int) -> None:
        self.capacity = capacity
        self.mask = (1 << width) - 1
        self.words = [0] * capacity
        self.reads = 0
        self.writes = 0

    def write(self, addr: int, value: int) -> None:
        self.words[addr % self.capacity] = value & self.mask
        self.writes += 1

    def read(self, addr: int, value: int) -> Optional[str]:
        """Check a completed read; returns an error string on mismatch."""
        expected = self.words[addr % self.capacity]
        self.reads += 1
        if value != expected:
            return (f"read of word {addr} returned 0x{value:x}, "
                    f"expected 0x{expected:x}")
        return None


class AssocModel:
    """Reference for the associative array (CAM binding semantics).

    Inserting an existing key updates it in place; inserting a new key when
    full is silently dropped (no free entry); removing an absent key is a
    no-op.  These mirror :class:`ContentAddressableMemory`.
    """

    def __init__(self, capacity: int) -> None:
        self.capacity = capacity
        self.entries: Dict[int, int] = {}

    def insert(self, key: int, value: int) -> str:
        """Apply an insert; returns which kind it was for coverage."""
        if key in self.entries:
            self.entries[key] = value
            return "update"
        if len(self.entries) >= self.capacity:
            return "dropped"
        self.entries[key] = value
        return "new"

    def remove(self, key: int) -> bool:
        """Apply a remove; True if the key was present."""
        return self.entries.pop(key, None) is not None

    def lookup(self, key: int, found: int, value: int) -> Optional[str]:
        """Check a completed lookup; returns an error string on mismatch."""
        if key in self.entries:
            if not found:
                return f"lookup of key 0x{key:x} missed a stored entry"
            expected = self.entries[key]
            if value != expected:
                return (f"lookup of key 0x{key:x} returned 0x{value:x}, "
                        f"expected 0x{expected:x}")
        elif found:
            return f"lookup of absent key 0x{key:x} reported a hit"
        return None

    @property
    def occupancy(self) -> int:
        return len(self.entries)


class ExpectedStreamModel:
    """Reference for whole pipelines: outputs must match a golden stream.

    Built from the design's golden model (identity for the copy pipeline,
    interior 3x3 means for the blur pipeline); every pixel the sink accepts
    is compared against the next element of the expected sequence.
    """

    def __init__(self, expected: List[int]) -> None:
        self.expected = list(expected)
        self.index = 0

    def pop(self, value: int) -> Optional[str]:
        if self.index >= len(self.expected):
            return (f"output 0x{value:x} received after the expected "
                    f"{len(self.expected)} outputs were all delivered")
        want = self.expected[self.index]
        self.index += 1
        if value != want:
            return (f"output #{self.index - 1} was 0x{value:x}, "
                    f"expected 0x{want:x}")
        return None


class LineBufferModel:
    """Reference for the 3-line-buffer read buffer's window protocol.

    Pixels enter in raster order; after the two warm-up lines, the column
    presented at the *k*-th accepted window pop must be the pixels at
    stream positions ``k`` (top), ``k + W`` (mid) and ``k + 2W`` (bottom),
    where ``W`` is the line width.
    """

    def __init__(self, line_width: int) -> None:
        self.line_width = line_width
        self.pixels: List[int] = []
        self.pops = 0

    def push(self, value: int) -> None:
        self.pixels.append(value)

    def pop_column(self, top: int, mid: int, bot: int) -> Optional[str]:
        k = self.pops
        w = self.line_width
        if k + 2 * w >= len(self.pixels):
            return (f"window pop #{k} accepted before pixel {k + 2 * w} "
                    f"was pushed (only {len(self.pixels)} pushed)")
        want = (self.pixels[k], self.pixels[k + w], self.pixels[k + 2 * w])
        self.pops += 1
        if (top, mid, bot) != want:
            return (f"window pop #{k} presented column "
                    f"({top:#x}, {mid:#x}, {bot:#x}), expected "
                    f"({want[0]:#x}, {want[1]:#x}, {want[2]:#x})")
        return None
