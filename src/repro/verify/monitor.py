"""Passive protocol monitors, attached through ``Simulator.add_watcher``.

A monitor never drives a signal.  It observes one interface at two points
of every cycle:

* ``pre_edge(cycle)`` — called by the session after the settle phase, when
  the driver-forced inputs and the DUT's combinational responses are both
  visible.  Handshake acceptance is decided here (``push & ready``,
  ``pop & valid``), golden models are fed, and data is compared.
* post-edge — the watcher callback the monitor registers with
  :meth:`Simulator.add_watcher`; it sees the settled state after the clock
  edge and checks the *transition*: occupancy bounds, element
  conservation, and stability of ``valid``/data across a cycle with no
  accepted pop.

Violations are collected (never raised mid-simulation) so one run reports
every broken rule; :func:`repro.verify.session.verify` decides whether to
raise.  Monitors detach cleanly via :meth:`Simulator.remove_watcher`, so a
simulator can be reused across sessions without accumulating watchers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from .scoreboard import (
    AssocModel,
    LifoModel,
    LineBufferModel,
    StreamModel,
    VectorModel,
)


@dataclass
class Violation:
    """One broken protocol rule, with enough context to debug it."""

    cycle: int
    rule: str
    message: str

    def __str__(self) -> str:
        return f"cycle {self.cycle}: [{self.rule}] {self.message}"


class VerificationError(Exception):
    """Raised by strict sessions when a monitor flags a violation."""


class ProtocolMonitor:
    """Base class: violation log, attach/detach, the two-phase hooks."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.violations: List[Violation] = []
        self.transactions = 0
        self._sim = None

    # -- lifecycle ---------------------------------------------------------

    def attach(self, sim) -> "ProtocolMonitor":
        """Register the post-edge hook as a simulator watcher."""
        if self._sim is not None:
            raise VerificationError(f"monitor {self.name!r} already attached")
        sim.add_watcher(self._post_edge, on_reset=self.on_reset)
        self._sim = sim
        return self

    def detach(self) -> None:
        """Unregister from the simulator (idempotent)."""
        if self._sim is not None:
            self._sim.remove_watcher(self._post_edge)
            self._sim = None

    def on_reset(self) -> None:
        """Drop per-cycle sampling state (violations are kept)."""

    # -- reporting ---------------------------------------------------------

    def flag(self, cycle: int, rule: str, message: str) -> None:
        self.violations.append(Violation(cycle, f"{self.name}.{rule}", message))

    @property
    def ok(self) -> bool:
        return not self.violations

    # -- hooks -------------------------------------------------------------

    def pre_edge(self, cycle: int) -> None:
        """Sample the settled pre-edge state (driver inputs + DUT outputs)."""

    def _post_edge(self, cycle: int) -> None:
        """Watcher: check the post-edge state against the pre-edge sample."""

    def observation(self) -> Dict[str, object]:
        """The most recent pre-edge sample, for covergroup sampling."""
        return {}


class StreamContainerMonitor(ProtocolMonitor):
    """Protocol + data checker for push/pop stream containers.

    Parameters
    ----------
    container:
        The DUT; its ``occupancy`` property anchors the conservation check.
    fill / drain:
        The sink-style and source-style interfaces to watch.  ``fill``
        exposes ``push``/``ready``/``data``; ``drain`` exposes
        ``pop``/``valid``/``data``.
    model:
        Golden :class:`~repro.verify.scoreboard.StreamModel`.
    max_occupancy:
        Upper bound for the occupancy rule.  SRAM bindings legitimately
        hold ``capacity + 2`` elements (holding + prefetch registers), so
        this is a parameter rather than ``container.capacity``.
    valid_stable / data_stable:
        Whether ``valid`` (and the presented data) must hold across a cycle
        with no accepted pop.  True for FIFO-ordered bindings; stacks may
        retract their visible top while spilling it to memory (SRAM
        binding) or replace it on a push (LIFO core).
    """

    def __init__(self, name: str, container, fill, drain,
                 model: StreamModel, max_occupancy: Optional[int] = None,
                 valid_stable: bool = True, data_stable: bool = True,
                 check_conservation: bool = True) -> None:
        super().__init__(name)
        self.container = container
        self.fill = fill
        self.drain = drain
        self.model = model
        self.max_occupancy = (container.capacity if max_occupancy is None
                              else max_occupancy)
        self.valid_stable = valid_stable
        self.data_stable = data_stable
        #: The stack-over-SRAM binding transiently "hides" an element while
        #: its FSM spills the visible top back to external memory, so its
        #: occupancy legitimately dips below pushes-minus-pops; such
        #: bindings disable the cycle-exact conservation rule and rely on
        #: the scoreboard's multiset conservation instead.
        self.check_conservation = check_conservation
        self._pre: Optional[dict] = None

    def on_reset(self) -> None:
        self._pre = None

    def pre_edge(self, cycle: int) -> None:
        fill, drain = self.fill, self.drain
        push = bool(fill.push.value)
        ready = bool(fill.ready.value)
        pop = bool(drain.pop.value)
        valid = bool(drain.valid.value)
        data_out = drain.data.value
        accepted_push = push and ready
        accepted_pop = pop and valid
        occupancy = self.container.occupancy

        # The drain must present the model's front element whenever valid.
        front = self.model.front()
        if valid:
            if front is not None and data_out != front:
                self.flag(cycle, "data-mismatch",
                          f"drain presents 0x{data_out:x}, golden front is "
                          f"0x{front:x}")
            elif self.model.order in ("fifo", "lifo") \
                    and self.model.occupancy == 0:
                self.flag(cycle, "phantom-valid",
                          "drain valid while the golden model is empty")

        # Transaction-by-transaction scoreboard update.  A pop consumes the
        # element *visible this cycle*, so it is applied before the push.
        if accepted_push and accepted_pop \
                and isinstance(self.model, LifoModel):
            # The LIFO core replaces its top on concurrent push+pop.
            error = self.model.replace_top(fill.data.value)
            if error:
                self.flag(cycle, "scoreboard", error)
        else:
            if accepted_pop:
                error = self.model.pop(data_out)
                if error:
                    self.flag(cycle, "scoreboard", error)
            if accepted_push:
                error = self.model.push(fill.data.value)
                if error:
                    self.flag(cycle, "scoreboard", error)
        self.transactions += int(accepted_push) + int(accepted_pop)

        self._pre = {
            "push": push, "ready": ready, "pop": pop, "valid": valid,
            "data_out": data_out, "occupancy": occupancy,
            "accepted_push": accepted_push, "accepted_pop": accepted_pop,
        }

    def _post_edge(self, cycle: int) -> None:
        pre = self._pre
        if pre is None:
            return
        occ = self.container.occupancy
        if not 0 <= occ <= self.max_occupancy:
            self.flag(cycle, "occupancy-bound",
                      f"occupancy {occ} outside [0, {self.max_occupancy}]")
        expected = (pre["occupancy"] + int(pre["accepted_push"])
                    - int(pre["accepted_pop"]))
        if self.check_conservation and occ != expected:
            self.flag(cycle, "conservation",
                      f"occupancy went {pre['occupancy']} -> {occ} but "
                      f"accepted {int(pre['accepted_push'])} push / "
                      f"{int(pre['accepted_pop'])} pop")
        if self.valid_stable and pre["valid"] and not pre["accepted_pop"] \
                and not self.drain.valid.value:
            self.flag(cycle, "valid-drop",
                      "valid deasserted with no accepted pop")
        if self.data_stable and pre["valid"] and not pre["accepted_pop"] \
                and not pre["accepted_push"] and self.drain.valid.value \
                and self.drain.data.value != pre["data_out"]:
            self.flag(cycle, "data-stability",
                      f"drain data changed 0x{pre['data_out']:x} -> "
                      f"0x{self.drain.data.value:x} with no accepted pop")
        self._pre = None

    def observation(self) -> Dict[str, object]:
        pre = self._pre or {}
        if not pre:
            return {}

        def state(strobe: str, status: str) -> str:
            if pre[strobe] and pre[status]:
                return "accept"
            if pre[strobe]:
                return "blocked"
            return "idle"

        if pre["ready"] and pre["valid"]:
            flow = "flowing"
        elif not pre["valid"]:
            flow = "drained"
        else:
            flow = "backpressured"
        return {
            "fill": state("push", "ready"),
            "drain": state("pop", "valid"),
            "flow": flow,
        }


class WindowBufferMonitor(ProtocolMonitor):
    """Checker for the 3-line-buffer read buffer's column window protocol."""

    def __init__(self, name: str, container, model: LineBufferModel) -> None:
        super().__init__(name)
        self.container = container
        self.model = model
        self._pre: Optional[dict] = None

    def on_reset(self) -> None:
        self._pre = None

    def pre_edge(self, cycle: int) -> None:
        fill = self.container.fill
        window = self.container.window
        push = bool(fill.push.value)
        ready = bool(fill.ready.value)
        pop = bool(window.pop.value)
        valid = bool(window.valid.value)
        accepted_push = push and ready
        accepted_pop = pop and valid

        warmed = bool(self.container.linebuf.window_valid.value)
        if valid and not warmed:
            self.flag(cycle, "premature-window",
                      "window valid before two lines were buffered")

        # Pop first: the column shown this cycle predates this cycle's push.
        if accepted_pop:
            error = self.model.pop_column(window.col_top.value,
                                          window.col_mid.value,
                                          window.col_bot.value)
            if error:
                self.flag(cycle, "column-mismatch", error)
        if accepted_push:
            self.model.push(fill.data.value)
        self.transactions += int(accepted_push) + int(accepted_pop)

        self._pre = {
            "push": push, "ready": ready, "pop": pop, "valid": valid,
            "warmed": warmed,
            "accepted_push": accepted_push, "accepted_pop": accepted_pop,
            "x": window.x.value,
        }

    def observation(self) -> Dict[str, object]:
        pre = self._pre or {}
        if not pre:
            return {}
        if pre["push"] and pre["ready"]:
            fill = "accept"
        elif pre["push"]:
            fill = "blocked"
        else:
            fill = "idle"
        return {
            "phase": "streaming" if pre["warmed"] else "warmup",
            "fill": fill,
            "window": "pop" if pre["accepted_pop"] else "hold",
            "x": pre["x"],
        }


class IteratorMonitor(ProtocolMonitor):
    """Protocol checker for the canonical done-based iterator interface."""

    def __init__(self, name: str, iface, capacity: int) -> None:
        super().__init__(name)
        self.iface = iface
        self.capacity = capacity
        self._outstanding = False
        self._retiring = False
        self._pre: Optional[dict] = None

    def on_reset(self) -> None:
        self._outstanding = False
        self._retiring = False
        self._pre = None

    def pre_edge(self, cycle: int) -> None:
        iface = self.iface
        strobed = bool(iface.read.value or iface.write.value
                       or iface.inc.value or iface.dec.value
                       or iface.index.value)
        done = bool(iface.done.value)
        if strobed and not self._outstanding:
            self._outstanding = True
            if iface.index.value and iface.pos.value >= self.capacity:
                self.flag(cycle, "seek-out-of-bounds",
                          f"index accepted position {iface.pos.value} >= "
                          f"capacity {self.capacity}")
        if done:
            if not (self._outstanding or self._retiring):
                self.flag(cycle, "done-without-op",
                          "done pulsed with no operation in flight")
            else:
                self.transactions += 1
            # The op retires; strobes may linger one more cycle by protocol.
            self._retiring = self._outstanding
            self._outstanding = False
        elif not strobed:
            self._retiring = False
        self._pre = {"strobed": strobed, "done": done,
                     "can_read": bool(iface.can_read.value),
                     "can_write": bool(iface.can_write.value)}

    def observation(self) -> Dict[str, object]:
        return dict(self._pre or {})


class RandomPortMonitor(ProtocolMonitor):
    """Checker for the random-access (``RandomIface``) done protocol.

    Tracks one access at a time: the request's address/direction/data are
    captured when ``en`` rises, reads are checked against the golden
    :class:`~repro.verify.scoreboard.VectorModel` in the ``done`` cycle,
    and writes update the model there.
    """

    def __init__(self, name: str, iface, model: VectorModel) -> None:
        super().__init__(name)
        self.iface = iface
        self.model = model
        self._request: Optional[dict] = None
        #: ("read"|"write", addr) of the most recently completed access,
        #: kept for covergroup sampling.
        self.last_access: Optional[tuple] = None

    def on_reset(self) -> None:
        self._request = None

    def pre_edge(self, cycle: int) -> None:
        iface = self.iface
        en = bool(iface.en.value)
        if en and self._request is None:
            self._request = {
                "addr": iface.addr.value,
                "we": bool(iface.we.value),
                "wdata": iface.wdata.value,
                "cycle": cycle,
            }
        elif not en and self._request is not None:
            self.flag(cycle, "dropped-request",
                      f"en deasserted before done (request started cycle "
                      f"{self._request['cycle']})")
            self._request = None
        if iface.done.value:
            request = self._request
            if request is None:
                self.flag(cycle, "done-without-request",
                          "done pulsed with no access in flight")
            else:
                if request["we"]:
                    self.model.write(request["addr"], request["wdata"])
                else:
                    error = self.model.read(request["addr"],
                                            iface.rdata.value)
                    if error:
                        self.flag(cycle, "read-mismatch", error)
                self.last_access = ("write" if request["we"] else "read",
                                    request["addr"])
                self.transactions += 1
                self._request = None


class AssocMonitor(ProtocolMonitor):
    """Checker + golden model for the associative-array interface."""

    def __init__(self, name: str, container, model: AssocModel) -> None:
        super().__init__(name)
        self.container = container
        self.model = model
        self._last_op: Optional[str] = None
        self._pre_occ = 0
        self._applied = False

    def on_reset(self) -> None:
        self._last_op = None
        self._applied = False

    def pre_edge(self, cycle: int) -> None:
        port = self.container.port
        self._last_op = None
        self._pre_occ = self.model.occupancy
        if port.lookup.value:
            key = port.key.value
            error = self.model.lookup(key, bool(port.found.value),
                                      port.value.value)
            if error:
                self.flag(cycle, "lookup-mismatch", error)
            self._last_op = ("lookup_hit" if key in self.model.entries
                            else "lookup_miss")
            self.transactions += 1
            self._applied = False
        elif port.insert.value:
            if not self._applied:
                kind = self.model.insert(port.insert_key.value,
                                         port.insert_value.value)
                self._last_op = f"insert_{kind}"
                self.transactions += 1
                self._applied = True
        elif port.remove.value:
            if not self._applied:
                hit = self.model.remove(port.remove_key.value)
                self._last_op = "remove_hit" if hit else "remove_miss"
                self.transactions += 1
                self._applied = True
        else:
            self._applied = False

    def _post_edge(self, cycle: int) -> None:
        occ = self.container.occupancy
        if occ != self.model.occupancy:
            self.flag(cycle, "occupancy-mismatch",
                      f"CAM holds {occ} entries, golden model "
                      f"{self.model.occupancy}")

    def observation(self) -> Dict[str, object]:
        if self._last_op is None:
            return {}
        # Fullness is the occupancy *before* the operation applied, so the
        # (insert_new, empty) cross combination is observable.
        return {"op": self._last_op, "fullness": self._pre_occ}


class WidthAdapterMonitor(ProtocolMonitor):
    """Checker for the metagen width converters (down- and up-conversion).

    The golden model is the converter's own
    :class:`~repro.metagen.width_adapter.WidthAdaptationPlan`: a *down*
    converter must emit exactly ``plan.split(element)`` (most significant
    beat first) for every accepted wide element, and an *up* converter must
    emit ``plan.join(beats)`` for every ``plan.beats`` accepted narrow
    beats.  The two sides of either converter are mutually exclusive by
    construction (load vs. shift phase), which the monitor also enforces.
    """

    def __init__(self, name: str, converter, direction: str) -> None:
        super().__init__(name)
        if direction not in ("down", "up"):
            raise ValueError(f"direction must be 'down' or 'up', got {direction!r}")
        self.converter = converter
        self.direction = direction
        self.plan = converter.plan
        if direction == "down":
            self._in_iface = converter.wide_in
            self._out_iface = converter.narrow_out
        else:
            self._in_iface = converter.narrow_in
            self._out_iface = converter.wide_out
        #: Values the output side still owes, in order.
        self._expected: List[int] = []
        #: Up-conversion only: beats collected toward the next element.
        self._beats: List[int] = []
        self._pre: Optional[dict] = None

    def on_reset(self) -> None:
        self._expected = []
        self._beats = []
        self._pre = None

    def pre_edge(self, cycle: int) -> None:
        inp, out = self._in_iface, self._out_iface
        push = bool(inp.push.value)
        ready = bool(inp.ready.value)
        pop = bool(out.pop.value)
        valid = bool(out.valid.value)
        accepted_in = push and ready
        accepted_out = pop and valid

        if ready and valid:
            self.flag(cycle, "phase-overlap",
                      "converter advertises ready and valid simultaneously")

        # Output first: what is visible this cycle predates this cycle's input.
        if accepted_out:
            if not self._expected:
                self.flag(cycle, "phantom-output",
                          f"output 0x{out.data.value:x} accepted with no "
                          f"element in flight")
            else:
                expected = self._expected.pop(0)
                if out.data.value != expected:
                    self.flag(cycle, "data-mismatch",
                              f"converter emitted 0x{out.data.value:x}, plan "
                              f"says 0x{expected:x}")
            self.transactions += 1
        if accepted_in:
            if self.direction == "down":
                self._expected.extend(self.plan.split(inp.data.value))
            else:
                self._beats.append(inp.data.value)
                if len(self._beats) == self.plan.beats:
                    self._expected.append(self.plan.join(self._beats))
                    self._beats = []
            self.transactions += 1

        # The covergroup phase reflects the converter's *pre-edge* hardware
        # state (the registers that gate ready/valid), not the scoreboard
        # queue — the queue already absorbed this cycle's transfers.
        if self.direction == "down":
            shifting = self.converter._remaining.value != 0
        else:
            shifting = self.converter._collected.value == self.plan.beats
        self._pre = {
            "push": push, "ready": ready, "pop": pop, "valid": valid,
            "data_out": out.data.value,
            "accepted_in": accepted_in, "accepted_out": accepted_out,
            "shifting": shifting,
        }

    def _post_edge(self, cycle: int) -> None:
        pre = self._pre
        if pre is None:
            return
        limit = self.plan.beats
        pending = len(self._expected) + len(self._beats)
        if pending > limit:
            self.flag(cycle, "overrun",
                      f"{pending} beats in flight, converter holds at most "
                      f"{limit}")
        if pre["valid"] and not pre["accepted_out"] \
                and self._out_iface.valid.value \
                and self._out_iface.data.value != pre["data_out"]:
            self.flag(cycle, "data-stability",
                      f"output changed 0x{pre['data_out']:x} -> "
                      f"0x{self._out_iface.data.value:x} with no accepted pop")
        self._pre = None

    def observation(self) -> Dict[str, object]:
        pre = self._pre or {}
        if not pre:
            return {}

        def state(strobe: str, status: str) -> str:
            if pre[strobe] and pre[status]:
                return "accept"
            if pre[strobe]:
                return "blocked"
            return "idle"

        return {
            "input": state("push", "ready"),
            "output": state("pop", "valid"),
            "phase": "shift" if pre["shifting"] else "load",
        }


class ArbiterMonitor(ProtocolMonitor):
    """Checker for the one-hot grant protocol of the arbiter primitives.

    Rules (both policies): grants are one-hot, a grant implies its request,
    ``busy`` mirrors "any grant", and ``grant_index`` names the granted
    requester.  Policy-specific rules: a fixed-priority arbiter must grant
    the lowest-index active request; a round-robin arbiter must hold a
    grant while the granted request persists (the transaction lock).
    """

    def __init__(self, name: str, arbiter, policy: str) -> None:
        super().__init__(name)
        if policy not in ("priority", "roundrobin"):
            raise ValueError(f"unknown arbiter policy {policy!r}")
        self.arbiter = arbiter
        self.policy = policy
        self._pre: Optional[dict] = None
        self._last_granted: Optional[int] = None

    def on_reset(self) -> None:
        self._pre = None
        self._last_granted = None

    def pre_edge(self, cycle: int) -> None:
        arb = self.arbiter
        requests = [bool(req.value) for req in arb.requests]
        grants = [bool(gnt.value) for gnt in arb.grants]
        granted = [i for i, g in enumerate(grants) if g]

        if len(granted) > 1:
            self.flag(cycle, "one-hot", f"multiple grants active: {granted}")
        for i in granted:
            if not requests[i]:
                self.flag(cycle, "grant-without-request",
                          f"requester {i} granted while not requesting")
        if bool(arb.busy.value) != bool(granted):
            self.flag(cycle, "busy-mismatch",
                      f"busy={int(arb.busy.value)} with grants {granted}")
        if granted and arb.grant_index.value != granted[0]:
            self.flag(cycle, "grant-index",
                      f"grant_index={arb.grant_index.value} but grant is "
                      f"{granted[0]}")
        if any(requests) and not granted:
            self.flag(cycle, "starvation",
                      "active requests but no grant (arbitration is "
                      "combinational)")

        winner = granted[0] if granted else None
        if self.policy == "priority" and winner is not None and any(requests):
            lowest = requests.index(True)
            if winner != lowest:
                self.flag(cycle, "priority-order",
                          f"granted {winner} while requester {lowest} "
                          f"(higher priority) is active")
        if self.policy == "roundrobin" and self._last_granted is not None:
            held = self._last_granted
            if requests[held] and winner != held:
                self.flag(cycle, "lock-broken",
                          f"grant moved {held} -> {winner} while requester "
                          f"{held} still active")

        if self._last_granted is not None and winner != self._last_granted:
            self.transactions += 1
        self._last_granted = winner
        self._pre = {
            "active": sum(requests),
            "winner": winner,
        }

    def observation(self) -> Dict[str, object]:
        pre = self._pre or {}
        if not pre:
            return {}
        return {
            "nreq": pre["active"],
            "grant": "idle" if pre["winner"] is None else f"g{pre['winner']}",
        }


class ExpectedStreamMonitor(ProtocolMonitor):
    """Pipeline-output checker: accepted sink pops must match a golden stream."""

    def __init__(self, name: str, drain, expected_model) -> None:
        super().__init__(name)
        self.drain = drain
        self.model = expected_model
        self._pre: Optional[dict] = None

    def on_reset(self) -> None:
        self._pre = None

    def pre_edge(self, cycle: int) -> None:
        pop = bool(self.drain.pop.value)
        valid = bool(self.drain.valid.value)
        if pop and valid:
            error = self.model.pop(self.drain.data.value)
            if error:
                self.flag(cycle, "golden-mismatch", error)
            self.transactions += 1
        self._pre = {"pop": pop, "valid": valid}

    def observation(self) -> Dict[str, object]:
        pre = self._pre or {}
        if not pre:
            return {}
        if pre["pop"] and pre["valid"]:
            out = "accept"
        elif pre["pop"]:
            out = "starved"
        else:
            out = "idle"
        return {"output": out}
