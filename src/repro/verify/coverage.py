"""Functional coverage: covergroups, bins, crosses, merging and JSON export.

The SystemVerilog covergroup idea, reduced to what the reproduction needs:

* a :class:`CoverPoint` declares named *bins* over the values a monitor
  observes (exact values, inclusive ranges or predicates);
* a :class:`CoverCross` declares which *combinations* of bins across two or
  more points must be seen together — only the combinations listed are
  goals, because most full cross-products contain unreachable cells (a FIFO
  cannot be full and empty in the same cycle);
* a :class:`CoverGroup` owns points and crosses and is sampled once per
  cycle with the monitor's observation;
* a :class:`CoverageDB` aggregates groups across targets, seeds and runs
  (hit counts add), and round-trips through JSON so CI can upload one
  merged artifact per run.

Coverage closure — every declared bin hit at least once — is an acceptance
criterion enforced by ``tests/verify/test_session.py`` for every shipped
container binding.
"""

from __future__ import annotations

import json
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple, Union

#: What a bin can be declared as: an exact value, an inclusive (lo, hi)
#: range, or a predicate.
BinSpec = Union[int, str, Tuple[int, int], Callable[[object], bool]]


class CoverageError(Exception):
    """Raised for malformed covergroup declarations or merge mismatches."""


class CoverBin:
    """One named bin of a coverpoint."""

    __slots__ = ("name", "_spec", "hits")

    def __init__(self, name: str, spec: BinSpec) -> None:
        self.name = name
        self._spec = spec
        self.hits = 0

    def matches(self, value: object) -> bool:
        spec = self._spec
        if callable(spec):
            return bool(spec(value))
        if isinstance(spec, tuple):
            lo, hi = spec
            return isinstance(value, int) and lo <= value <= hi
        return value == spec

    def __repr__(self) -> str:
        return f"CoverBin({self.name!r}, hits={self.hits})"


class CoverPoint:
    """A named observation with a set of bins."""

    def __init__(self, name: str, bins: Dict[str, BinSpec]) -> None:
        if not bins:
            raise CoverageError(f"coverpoint {name!r} declares no bins")
        self.name = name
        self.bins: Dict[str, CoverBin] = {
            bname: CoverBin(bname, spec) for bname, spec in bins.items()}
        #: Bin name matched by the most recent sample (None if no bin hit).
        self.last_bin: Optional[str] = None

    def sample(self, value: object) -> Optional[str]:
        """Record ``value``; returns the first matching bin's name."""
        self.last_bin = None
        for cbin in self.bins.values():
            if cbin.matches(value):
                cbin.hits += 1
                self.last_bin = cbin.name
                return cbin.name
        return None

    @property
    def hit_count(self) -> int:
        return sum(1 for b in self.bins.values() if b.hits)

    def unhit(self) -> List[str]:
        return [b.name for b in self.bins.values() if not b.hits]


class CoverCross:
    """Declared combinations of bins across several coverpoints."""

    def __init__(self, name: str, points: Sequence[str],
                 combos: Iterable[Sequence[str]]) -> None:
        self.name = name
        self.points = tuple(points)
        self.combos: Dict[Tuple[str, ...], int] = {
            tuple(combo): 0 for combo in combos}
        if not self.combos:
            raise CoverageError(f"cross {name!r} declares no combinations")
        for combo in self.combos:
            if len(combo) != len(self.points):
                raise CoverageError(
                    f"cross {name!r}: combo {combo} does not match points "
                    f"{self.points}")

    def sample(self, bin_names: Tuple[Optional[str], ...]) -> None:
        if None in bin_names:
            return
        key = tuple(bin_names)  # type: ignore[arg-type]
        if key in self.combos:
            self.combos[key] += 1

    @property
    def hit_count(self) -> int:
        return sum(1 for hits in self.combos.values() if hits)

    def unhit(self) -> List[str]:
        return ["x".join(combo) for combo, hits in self.combos.items()
                if not hits]


class CoverGroup:
    """A named collection of coverpoints and crosses, sampled per cycle."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.points: Dict[str, CoverPoint] = {}
        self.crosses: Dict[str, CoverCross] = {}
        self.samples = 0

    # -- declaration -------------------------------------------------------

    def point(self, name: str, bins: Dict[str, BinSpec]) -> CoverPoint:
        """Declare a coverpoint (returns it for chaining)."""
        if name in self.points:
            raise CoverageError(f"coverpoint {name!r} already declared")
        cp = CoverPoint(name, bins)
        self.points[name] = cp
        return cp

    def cross(self, name: str, points: Sequence[str],
              combos: Iterable[Sequence[str]]) -> CoverCross:
        """Declare a cross over previously-declared points."""
        for pname in points:
            if pname not in self.points:
                raise CoverageError(
                    f"cross {name!r} references unknown point {pname!r}")
        if name in self.crosses:
            raise CoverageError(f"cross {name!r} already declared")
        cc = CoverCross(name, points, combos)
        self.crosses[name] = cc
        return cc

    # -- sampling ----------------------------------------------------------

    def sample(self, **values: object) -> None:
        """Sample named coverpoints; crosses fire when all their points did.

        Points not named in ``values`` are skipped this cycle (their
        ``last_bin`` is cleared so stale bins never feed a cross).
        """
        self.samples += 1
        for pname, cp in self.points.items():
            if pname in values:
                cp.sample(values[pname])
            else:
                cp.last_bin = None
        for cc in self.crosses.values():
            cc.sample(tuple(self.points[p].last_bin for p in cc.points))

    # -- results -----------------------------------------------------------

    @property
    def goal_count(self) -> int:
        return (sum(len(cp.bins) for cp in self.points.values())
                + sum(len(cc.combos) for cc in self.crosses.values()))

    @property
    def hit_count(self) -> int:
        return (sum(cp.hit_count for cp in self.points.values())
                + sum(cc.hit_count for cc in self.crosses.values()))

    @property
    def percent(self) -> float:
        goals = self.goal_count
        return 100.0 * self.hit_count / goals if goals else 100.0

    def unhit(self) -> List[str]:
        """Dotted names of every unhit bin and cross combination."""
        missing: List[str] = []
        for cp in self.points.values():
            missing.extend(f"{self.name}.{cp.name}.{b}" for b in cp.unhit())
        for cc in self.crosses.values():
            missing.extend(f"{self.name}.{cc.name}.{c}" for c in cc.unhit())
        return missing

    # -- serialisation / merging ------------------------------------------

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "samples": self.samples,
            "points": {
                pname: {b.name: b.hits for b in cp.bins.values()}
                for pname, cp in self.points.items()},
            "crosses": {
                cname: {
                    "points": list(cc.points),
                    "hits": {"|".join(combo): hits
                             for combo, hits in cc.combos.items()},
                }
                for cname, cc in self.crosses.items()},
        }

    def merge_dict(self, data: dict) -> None:
        """Add hit counts from a serialised group with the same shape."""
        if data.get("name") != self.name:
            raise CoverageError(
                f"cannot merge group {data.get('name')!r} into {self.name!r}")
        self.samples += int(data.get("samples", 0))
        for pname, bins in data.get("points", {}).items():
            cp = self.points.get(pname)
            if cp is None:
                raise CoverageError(
                    f"merge: unknown coverpoint {self.name}.{pname}")
            for bname, hits in bins.items():
                if bname not in cp.bins:
                    raise CoverageError(
                        f"merge: unknown bin {self.name}.{pname}.{bname}")
                cp.bins[bname].hits += int(hits)
        for cname, cdata in data.get("crosses", {}).items():
            cc = self.crosses.get(cname)
            if cc is None:
                raise CoverageError(f"merge: unknown cross {self.name}.{cname}")
            for key, hits in cdata.get("hits", {}).items():
                combo = tuple(key.split("|"))
                if combo not in cc.combos:
                    raise CoverageError(
                        f"merge: unknown combo {self.name}.{cname}.{key}")
                cc.combos[combo] += int(hits)


class CoverageDB:
    """Merged coverage across targets, seeds and runs (JSON round-trip)."""

    def __init__(self) -> None:
        self._groups: Dict[str, dict] = {}

    def add(self, group: Union[CoverGroup, dict]) -> None:
        """Merge one group (live or serialised) into the database."""
        data = group.to_dict() if isinstance(group, CoverGroup) else group
        name = data["name"]
        existing = self._groups.get(name)
        if existing is None:
            self._groups[name] = json.loads(json.dumps(data))  # deep copy
            return
        existing["samples"] = existing.get("samples", 0) + data.get("samples", 0)
        for pname, bins in data.get("points", {}).items():
            dst = existing.setdefault("points", {}).setdefault(pname, {})
            for bname, hits in bins.items():
                dst[bname] = dst.get(bname, 0) + hits
        for cname, cdata in data.get("crosses", {}).items():
            dst_cross = existing.setdefault("crosses", {}).setdefault(
                cname, {"points": cdata.get("points", []), "hits": {}})
            for key, hits in cdata.get("hits", {}).items():
                dst_cross["hits"][key] = dst_cross["hits"].get(key, 0) + hits

    def add_delta(self, group: Union[CoverGroup, dict]) -> List[str]:
        """Merge one group and return the goal names it *newly* closed.

        The returned names use the same dotted spelling as :meth:`unhit`
        (sorted), so a caller can reward marginal bin/cross closure —
        the fitness signal of coverage-directed search — without diffing
        whole databases.  Goals that were already hit contribute nothing;
        an empty list means the merge moved no goal from open to closed.
        """
        data = group.to_dict() if isinstance(group, CoverGroup) else group
        name = data["name"]
        before = self._hit_goals(name)
        self.add(data)
        return sorted(self._hit_goals(name) - before)

    def _hit_goals(self, name: str) -> set:
        """Dotted names of every *hit* goal of one group (empty if absent)."""
        data = self._groups.get(name)
        if data is None:
            return set()
        hit = set()
        for pname, bins in data.get("points", {}).items():
            hit.update(f"{name}.{pname}.{b}"
                       for b, hits in bins.items() if hits)
        for cname, cdata in data.get("crosses", {}).items():
            hit.update(f"{name}.{cname}.{key.replace('|', 'x')}"
                       for key, hits in cdata["hits"].items() if hits)
        return hit

    def open_goals(self, name: Optional[str] = None) -> List[str]:
        """Unhit goal names, optionally restricted to one group.

        A group the database has never seen has no *declared* goals here —
        callers treating "never sampled" as "everything open" (the search
        driver does) must check :attr:`groups` membership themselves.
        """
        if name is None:
            return self.unhit()
        data = self._groups.get(name)
        if data is None:
            return []
        missing: List[str] = []
        for pname, bins in sorted(data.get("points", {}).items()):
            missing.extend(f"{name}.{pname}.{b}"
                           for b, hits in sorted(bins.items()) if not hits)
        for cname, cdata in sorted(data.get("crosses", {}).items()):
            missing.extend(
                f"{name}.{cname}.{key.replace('|', 'x')}"
                for key, hits in sorted(cdata["hits"].items()) if not hits)
        return missing

    def merge(self, other: "CoverageDB") -> None:
        for data in other._groups.values():
            self.add(data)

    @property
    def groups(self) -> Dict[str, dict]:
        return dict(self._groups)

    def percent(self, name: Optional[str] = None) -> float:
        """Hit percentage of one group, or of every goal in the database."""
        items = ([self._groups[name]] if name is not None
                 else list(self._groups.values()))
        goals = hit = 0
        for data in items:
            for bins in data.get("points", {}).values():
                goals += len(bins)
                hit += sum(1 for hits in bins.values() if hits)
            for cdata in data.get("crosses", {}).values():
                goals += len(cdata.get("hits", {}))
                hit += sum(1 for hits in cdata["hits"].values() if hits)
        return 100.0 * hit / goals if goals else 100.0

    def unhit(self) -> List[str]:
        missing: List[str] = []
        for gname, data in sorted(self._groups.items()):
            for pname, bins in sorted(data.get("points", {}).items()):
                missing.extend(f"{gname}.{pname}.{b}"
                               for b, hits in sorted(bins.items()) if not hits)
            for cname, cdata in sorted(data.get("crosses", {}).items()):
                missing.extend(
                    f"{gname}.{cname}.{key.replace('|', 'x')}"
                    for key, hits in sorted(cdata["hits"].items()) if not hits)
        return missing

    # -- JSON --------------------------------------------------------------

    def to_json(self, indent: int = 2) -> str:
        payload = {"format": "repro-coverage-v1",
                   "groups": {n: self._groups[n] for n in sorted(self._groups)}}
        return json.dumps(payload, indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "CoverageDB":
        payload = json.loads(text)
        if payload.get("format") != "repro-coverage-v1":
            raise CoverageError(
                f"unknown coverage format {payload.get('format')!r}")
        db = cls()
        for data in payload.get("groups", {}).values():
            db.add(data)
        return db

    def report(self) -> str:
        """A compact plain-text summary, one line per group."""
        lines = [f"coverage: {self.percent():.1f}% of "
                 f"{sum(1 for _ in self._groups)} group(s)"]
        for name in sorted(self._groups):
            lines.append(f"  {name}: {self.percent(name):.1f}%")
        missing = self.unhit()
        if missing:
            lines.append(f"  unhit ({len(missing)}):")
            lines.extend(f"    {m}" for m in missing)
        return "\n".join(lines)
