"""Seeded, reproducible random streams with per-component names.

Every source of randomness in the verification subsystem (and, via the
re-exports in :mod:`repro.video.frames` and :mod:`repro.testing`, in the
test benches and benchmarks) flows through here.  A *stream* is an ordinary
:class:`random.Random` whose state is derived from a ``(seed, name)`` pair
by hashing, so:

* the same seed always reproduces the same stimulus, bit for bit, on every
  platform (``random.Random`` guarantees cross-version determinism for the
  Mersenne generator given the same integer seed);
* independently-named streams never interleave — adding a draw to the
  ``"stimulus.fill"`` stream cannot perturb the ``"stimulus.drain"``
  stream, which keeps failures reproducible across unrelated edits;
* a failure message only ever needs to print one integer (the root seed)
  for a full reproduction.

The module deliberately imports nothing from the rest of the package so it
can be used from the lowest layers (``repro.video``) without cycles.
"""

from __future__ import annotations

import hashlib
import os
import random
from typing import Dict

#: Environment variable consulted for the root seed when none is given.
SEED_ENV = "REPRO_SEED"


def default_seed() -> int:
    """The root seed: ``$REPRO_SEED`` when set and numeric, else 0."""
    raw = os.environ.get(SEED_ENV, "")
    try:
        return int(raw)
    except ValueError:
        return 0


def derive_seed(seed: int, name: str) -> int:
    """Derive a stream seed from the root ``seed`` and a stream ``name``.

    Uses SHA-256 so every named stream is statistically independent of every
    other and of the root seed's numeric neighbourhood (seed 1 and seed 2
    share no prefix of draws).
    """
    digest = hashlib.sha256(f"{int(seed)}:{name}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


def stream(seed: int, name: str) -> random.Random:
    """A fresh, deterministic RNG for ``(seed, name)``."""
    return random.Random(derive_seed(seed, name))


class RngPool:
    """A root seed plus a cache of named streams drawn from it.

    The pool is what a verification session threads through its drivers:
    each driver asks for its own named stream once and keeps drawing from
    it, so per-component stimulus stays reproducible even when components
    are added or removed from the session.
    """

    def __init__(self, seed: int = None) -> None:
        self.seed = default_seed() if seed is None else int(seed)
        self._streams: Dict[str, random.Random] = {}

    def stream(self, name: str) -> random.Random:
        """The named stream, created on first use and cached after."""
        rng = self._streams.get(name)
        if rng is None:
            self._streams[name] = rng = random.Random(
                derive_seed(self.seed, name))
        return rng

    def reproduce_hint(self) -> str:
        """The environment assignment that reproduces this pool's draws."""
        return f"{SEED_ENV}={self.seed}"

    def __repr__(self) -> str:
        return f"RngPool(seed={self.seed}, streams={sorted(self._streams)})"
