"""Deterministic epsilon-greedy bandits for the search driver.

One :class:`EpsilonGreedy` instance allocates the simulation budget across
*arms* — covergroup targets in the coverage search, proposal operators in
the seed/design proposers.  Determinism is a hard requirement (the byte-
identical-trajectory regression test pins it), so every stochastic choice
draws from an injected :class:`random.Random` and every tie breaks by a
total order, never by dict/hash iteration order.
"""

from __future__ import annotations

import random
from typing import Dict, Iterable, List, Optional, Sequence


class BanditError(ValueError):
    """Raised for empty arm sets or updates to unknown arms."""


class EpsilonGreedy:
    """Epsilon-greedy arm selection over observed mean rewards.

    Parameters
    ----------
    arms:
        The arm names.  Order does not matter — ties always break by the
        sorted name, so two bandits built from differently-ordered arm
        lists behave identically.
    epsilon:
        Probability of exploring (choosing uniformly among the available
        arms) instead of exploiting the best observed mean.
    rng:
        The random stream every exploration draw comes from.  Inject a
        :meth:`repro.verify.RngPool.stream` so one root seed reproduces
        the whole search; defaults to ``Random(0)``.
    explore_untried:
        When True (default), any available arm that has never been pulled
        is selected before exploit/explore kicks in — each arm gets one
        fair trial.  The proposal-operator bandits turn this off and seed
        a ``prior`` instead, so the exotic operators (mutate/crossover)
        must *earn* budget through epsilon exploration rather than being
        handed a free simulation each.
    prior:
        Optional ``{arm: (pulls, total_reward)}`` pseudo-counts folded
        into the observed statistics (optimistic initialisation).
    """

    def __init__(self, arms: Iterable[str], epsilon: float = 0.1,
                 rng: Optional[random.Random] = None,
                 explore_untried: bool = True,
                 prior: Optional[Dict[str, tuple]] = None) -> None:
        self.arms: List[str] = sorted(set(arms))
        if not self.arms:
            raise BanditError("a bandit needs at least one arm")
        if not 0.0 <= epsilon <= 1.0:
            raise BanditError(f"epsilon must be in [0, 1], got {epsilon}")
        self.epsilon = epsilon
        self.explore_untried = explore_untried
        self._rng = rng if rng is not None else random.Random(0)
        self.pulls: Dict[str, int] = {arm: 0 for arm in self.arms}
        self.rewards: Dict[str, float] = {arm: 0.0 for arm in self.arms}
        for arm, (pulls, reward) in (prior or {}).items():
            if arm not in self.pulls:
                raise BanditError(f"prior for unknown arm {arm!r}")
            self.pulls[arm] = int(pulls)
            self.rewards[arm] = float(reward)

    def mean(self, arm: str) -> float:
        """Observed mean reward of one arm (0.0 before any pull)."""
        if arm not in self.pulls:
            raise BanditError(f"unknown arm {arm!r}")
        pulls = self.pulls[arm]
        return self.rewards[arm] / pulls if pulls else 0.0

    def select(self, available: Optional[Sequence[str]] = None) -> str:
        """Choose one arm among ``available`` (default: all arms)."""
        arms = sorted(set(available)) if available is not None else self.arms
        unknown = [arm for arm in arms if arm not in self.pulls]
        if unknown:
            raise BanditError(f"unknown arm(s) {unknown}")
        if not arms:
            raise BanditError("no arms available to select from")
        if len(arms) == 1:
            return arms[0]
        if self.explore_untried:
            untried = [arm for arm in arms if not self.pulls[arm]]
            if untried:
                return untried[0]  # arms are sorted: deterministic
        if self._rng.random() < self.epsilon:
            return arms[self._rng.randrange(len(arms))]
        # max() keeps the first maximal element of a sorted list, so ties
        # deterministically break toward the lexicographically-smallest arm.
        return max(arms, key=self.mean)

    def update(self, arm: str, reward: float) -> None:
        """Record one pull's reward."""
        if arm not in self.pulls:
            raise BanditError(f"unknown arm {arm!r}")
        self.pulls[arm] += 1
        self.rewards[arm] += float(reward)

    def snapshot(self) -> Dict[str, Dict[str, float]]:
        """Per-arm statistics for reports: pulls, reward sum, mean."""
        return {arm: {"pulls": self.pulls[arm],
                      "reward": round(self.rewards[arm], 6),
                      "mean": round(self.mean(arm), 6)}
                for arm in self.arms}
