"""The budgeted coverage-directed search driver.

Closes the verify→explore feedback loop the ROADMAP left open: instead of
running a fixed rectangular seed matrix (every target × every seed), the
driver *allocates* the simulation budget one proposal at a time —

1. an epsilon-greedy bandit picks the covergroup target whose proposals
   have been closing the most goals (among targets still below
   ``min_coverage``);
2. that target's :class:`~repro.search.propose.SeedProposer` picks the
   next stimulus seeds (scan / mutate / crossover, themselves under an
   operator bandit);
3. the proposals run through the memoized, store-backed
   :class:`~repro.search.state.SessionEvaluator` (one lockstep
   :func:`~repro.verify.session.verify_matrix` lane per fresh seed);
4. each session's covergroup merges into the persistent
   :class:`~repro.verify.coverage.CoverageDB` fitness state, and the
   *marginal* goals it closed (:meth:`CoverageDB.add_delta`) are the
   reward fed back to both bandits.

The loop stops at closure or budget exhaustion.  Everything stochastic
draws from one :class:`~repro.verify.rng.RngPool`, so a root seed fixes
the entire proposal trajectory — byte for byte, across runs and across
fork-pool workers (``tests/search/test_determinism.py``).

:func:`grid_baseline` prices the alternative this driver replaces: a
feedback-free sweep must ship one rectangular matrix ``targets × seeds``
sized for its *worst* target, so its cost is ``len(targets) * max(seeds
needed per target)`` sessions.  The CI ``search-smoke`` job gates that
search closes the same coverage in strictly fewer sessions.

:func:`design_search` is the Pareto half of the tentpole: the same
bandit/proposer machinery over :class:`~repro.explore.grid.DesignPoint`
axes, evaluated through an :class:`~repro.explore.runner.ExplorationRunner`
(memo/store reuse included), rewarding frontier acceptance on
(throughput ↑, synth area ↓).
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..obs import tracing as _obs_tracing
from ..obs.metrics import REGISTRY as _REGISTRY
from ..rtl import COMPILED_BATCHED
from ..verify.coverage import CoverageDB
from ..verify.rng import RngPool
from ..verify.session import TARGETS
from .bandit import EpsilonGreedy
from .propose import DesignProposer, SeedProposer
from .state import SearchState, SessionEvaluator, resolved_cycles

#: Artifact format tags (sorted-key JSON, no timestamps: byte-identical
#: across runs is a tested property, not an aspiration).
SEARCH_FORMAT = "repro-search-v1"
FRONTIER_FORMAT = "repro-frontier-v1"


@dataclass(frozen=True)
class SearchConfig:
    """Everything that determines a coverage search's trajectory."""

    targets: Tuple[str, ...]
    budget: int = 32
    cycles: Optional[int] = None
    seed: int = 0
    strategy: str = COMPILED_BATCHED
    #: Proposals per round — fresh seeds in one round share a single
    #: lockstep simulation (one lane per seed).
    batch: int = 1
    epsilon: float = 0.1
    min_coverage: float = 100.0

    def __post_init__(self) -> None:
        if not self.targets:
            raise ValueError("a search needs at least one target")
        unknown = [t for t in self.targets if t not in TARGETS]
        if unknown:
            raise ValueError(f"unknown target(s) {unknown}; "
                             f"known: {sorted(TARGETS)}")
        if self.budget < 1:
            raise ValueError(f"budget must be >= 1, got {self.budget}")
        if self.batch < 1:
            raise ValueError(f"batch must be >= 1, got {self.batch}")

    def to_dict(self) -> Dict[str, object]:
        return {
            "targets": list(self.targets),
            "budget": self.budget,
            "cycles": {t: resolved_cycles(t, self.cycles)
                       for t in self.targets},
            "seed": self.seed,
            "strategy": self.strategy,
            "batch": self.batch,
            "epsilon": self.epsilon,
            "min_coverage": self.min_coverage,
        }


@dataclass
class SearchReport:
    """Outcome of one coverage search (JSON: ``repro-search-v1``)."""

    config: SearchConfig
    rounds: List[dict] = field(default_factory=list)
    sessions: int = 0
    simulated: int = 0
    memo_hits: int = 0
    store_hits: int = 0
    coverage: Dict[str, float] = field(default_factory=dict)
    unhit: List[str] = field(default_factory=list)
    closed: bool = False
    violations: List[str] = field(default_factory=list)
    bandits: Dict[str, object] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return self.closed and not self.violations

    def seed_trajectory(self, target: Optional[str] = None):
        """Evaluated seeds in proposal order, per target or for one."""
        trajectories: Dict[str, List[int]] = {t: [] for t in
                                              self.config.targets}
        for entry in self.rounds:
            for proposal in entry["proposals"]:
                trajectories[entry["target"]].append(proposal["seed"])
        if target is not None:
            return trajectories[target]
        return trajectories

    def to_dict(self) -> Dict[str, object]:
        return {
            "format": SEARCH_FORMAT,
            "config": self.config.to_dict(),
            "rounds": self.rounds,
            "sessions": self.sessions,
            "simulated": self.simulated,
            "memo_hits": self.memo_hits,
            "store_hits": self.store_hits,
            "coverage": {t: round(pct, 4)
                         for t, pct in self.coverage.items()},
            "unhit": self.unhit,
            "closed": self.closed,
            "violations": self.violations,
            "bandits": self.bandits,
        }

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    def summary(self) -> str:
        lines = [f"search: {self.sessions} session(s) "
                 f"({self.simulated} simulated, {self.memo_hits} memo, "
                 f"{self.store_hits} store) over "
                 f"{len(self.config.targets)} target(s); "
                 f"closed={'yes' if self.closed else 'NO'}"]
        for target in self.config.targets:
            seeds = self.seed_trajectory(target)
            lines.append(f"  {target:<24} cov={self.coverage[target]:5.1f}% "
                         f"seeds={seeds}")
        if self.violations:
            lines.append(f"  VIOLATIONS: {len(self.violations)}")
        return "\n".join(lines)


class CoverageSearch:
    """One budgeted coverage-directed search (see the module docstring).

    Parameters
    ----------
    config:
        The immutable search identity; equal configs (and equal warm
        state) produce byte-identical reports.
    store:
        Optional persistent result store (path or
        :class:`~repro.serve.store.ResultStore`) shared with the verify
        CLI and the sweep service — repeat proposals cost zero
        simulations across processes.
    state:
        Optional :class:`~repro.search.state.SearchState` carrying warm
        fitness coverage (goals already closed earn no reward again).
    on_round:
        Optional callback invoked with each round's trajectory entry —
        the serve layer streams these through the job event log.
    """

    def __init__(self, config: SearchConfig, store=None,
                 state: Optional[SearchState] = None,
                 evaluator: Optional[SessionEvaluator] = None,
                 on_round: Optional[Callable[[dict], None]] = None) -> None:
        self.config = config
        self.state = state if state is not None else SearchState(None)
        self.db: CoverageDB = self.state.db
        self.evaluator = evaluator if evaluator is not None else \
            SessionEvaluator(cycles=config.cycles, strategy=config.strategy,
                             store=store)
        self.on_round = on_round
        pool = RngPool(config.seed)
        self.target_bandit = EpsilonGreedy(
            config.targets, epsilon=config.epsilon,
            rng=pool.stream("search.targets"))
        self.proposers: Dict[str, SeedProposer] = {
            target: SeedProposer(target,
                                 pool.stream(f"search.seeds.{target}"),
                                 epsilon=config.epsilon)
            for target in config.targets}

    def coverage(self, target: str) -> float:
        """Merged coverage of one target (0.0 before its first session)."""
        if target not in self.db.groups:
            return 0.0
        return self.db.percent(target)

    def open_targets(self) -> List[str]:
        return [t for t in self.config.targets
                if self.coverage(t) < self.config.min_coverage]

    def run(self) -> SearchReport:
        config = self.config
        report = SearchReport(config=config)
        round_no = 0
        while report.sessions < config.budget:
            open_targets = self.open_targets()
            if not open_targets:
                break
            target = self.target_bandit.select(open_targets)
            proposer = self.proposers[target]
            count = min(config.batch, config.budget - report.sessions)
            batch = proposer.propose_batch(count)
            with _obs_tracing.span("search.round", round=round_no,
                                   target=target, proposals=count):
                evaluated = self.evaluator.evaluate(
                    target, [seed for seed, _ in batch])
                proposals = []
                round_gain = accepted = 0
                for (seed, op), (_, record, source) in zip(batch, evaluated):
                    payload = record["result"]
                    closed = self.db.add_delta(payload["coverage_group"])
                    gain = len(closed)
                    proposer.update(seed, op, gain)
                    self.target_bandit.update(target, gain)
                    if not payload["ok"]:
                        report.violations.extend(payload["violations"])
                    round_gain += gain
                    accepted += 1 if gain else 0
                    proposals.append({"seed": seed, "op": op,
                                      "source": source, "gain": gain,
                                      "closed": closed,
                                      "ok": payload["ok"]})
                report.sessions += count
                _obs_tracing.add_event("search.gain", target=target,
                                       gain=round_gain)
            _REGISTRY.inc("search_rounds")
            _REGISTRY.inc("search_proposals", count)
            _REGISTRY.inc("search_accepted", accepted)
            _REGISTRY.inc("search_coverage_gain", round_gain)
            _REGISTRY.inc("search_sessions", count)
            entry = {
                "round": round_no,
                "target": target,
                "proposals": proposals,
                "coverage": round(self.coverage(target), 4),
                "open_goals": len(self.db.open_goals(target)),
                "sessions": report.sessions,
            }
            report.rounds.append(entry)
            if self.on_round is not None:
                self.on_round(entry)
            round_no += 1
        report.simulated = self.evaluator.simulated
        report.memo_hits = self.evaluator.memo_hits
        report.store_hits = self.evaluator.store_hits
        report.coverage = {t: self.coverage(t) for t in config.targets}
        report.unhit = self.db.unhit()
        report.closed = not self.open_targets()
        report.bandits = {
            "targets": self.target_bandit.snapshot(),
            "operators": {t: p.ops.snapshot()
                          for t, p in self.proposers.items()},
        }
        return report


def run_search(config: SearchConfig, store=None,
               state: Optional[SearchState] = None,
               on_round: Optional[Callable[[dict], None]] = None
               ) -> SearchReport:
    """Build a :class:`CoverageSearch` and run it (the one-call form)."""
    return CoverageSearch(config, store=store, state=state,
                          on_round=on_round).run()


def grid_baseline(config: SearchConfig,
                  evaluator: Optional[SessionEvaluator] = None,
                  max_seeds: int = 64) -> Dict[str, object]:
    """Price the feedback-free alternative: the rectangular seed matrix.

    Without coverage feedback, a sweep must commit to one seed list up
    front and run *every* target over it; closing every target therefore
    needs the matrix to be as long as the **worst** target's closure
    demands.  Per target this enumerates seeds ``0, 1, 2, …`` (merging
    into a fresh :class:`CoverageDB` each — the baseline gets no cross-
    target credit) until closure; the matrix cost is
    ``len(targets) * max(per-target seeds)``.

    Sharing ``evaluator`` with a finished search makes the baseline cheap
    to *price* — already-searched sessions replay from the memo — without
    changing what it *costs*: ``sessions`` counts the full rectangle.
    """
    evaluator = evaluator if evaluator is not None else SessionEvaluator(
        cycles=config.cycles, strategy=config.strategy)
    per_target: Dict[str, dict] = {}
    for target in config.targets:
        db = CoverageDB()
        used = 0
        closed = False
        for seed in range(max_seeds):
            _, record, _ = evaluator.evaluate(target, [seed])[0]
            db.add(record["result"]["coverage_group"])
            used += 1
            if db.percent(target) >= config.min_coverage:
                closed = True
                break
        per_target[target] = {"seeds": used, "closed": closed,
                              "coverage": round(db.percent(target), 4)}
    matrix_seeds = max(info["seeds"] for info in per_target.values())
    return {
        "per_target": per_target,
        "matrix_seeds": matrix_seeds,
        "sessions": len(config.targets) * matrix_seeds,
        "closed": all(info["closed"] for info in per_target.values()),
    }


def propose_seeds(target: str, count: int, seed: int = 0,
                  cycles: Optional[int] = None,
                  strategy: str = COMPILED_BATCHED) -> List[int]:
    """The first ``count`` stimulus seeds search proposes for one target.

    Runs a real coverage search (budget ``count``) against the healthy
    design and returns its seed trajectory; if closure stops the search
    early the list is padded by the ``scan`` operator's enumeration, so
    callers always get exactly ``count`` distinct seeds.  This is the
    seed-proposal API the mutation-escape test drives: the seeds a
    fault-free search would spend its budget on must catch every seeded
    fault the fixed matrix catches.
    """
    if count < 1:
        raise ValueError(f"count must be >= 1, got {count}")
    config = SearchConfig(targets=(target,), budget=count, cycles=cycles,
                          seed=seed, strategy=strategy)
    search = CoverageSearch(config)
    search.run()
    seeds = list(search.proposers[target].proposed)
    pad = 0
    while len(seeds) < count:
        if pad not in seeds:
            seeds.append(pad)
        pad += 1
    return seeds[:count]


# ---------------------------------------------------------------------------
# Design-axes Pareto search
# ---------------------------------------------------------------------------


class ParetoFrontier:
    """Non-dominated set on (throughput max, synth area min)."""

    def __init__(self) -> None:
        self._entries: List[dict] = []

    @staticmethod
    def fitness(result) -> Dict[str, float]:
        """The two objectives of one exploration result."""
        return {"throughput": result.throughput,
                "area": result.luts + result.ffs}

    @staticmethod
    def _dominates(a: dict, b: dict) -> bool:
        return (a["throughput"] >= b["throughput"]
                and a["area"] <= b["area"]
                and (a["throughput"] > b["throughput"]
                     or a["area"] < b["area"]))

    def consider(self, result) -> bool:
        """Accept ``result`` if no current member dominates it."""
        cand = {
            "point": asdict(result.point),
            "label": result.point.label(),
            **self.fitness(result),
            "luts": result.luts,
            "ffs": result.ffs,
            "brams": result.brams,
            "fmax_mhz": result.fmax_mhz,
            "power_mw": result.power_mw,
        }
        if any(self._dominates(entry, cand) for entry in self._entries):
            return False
        self._entries = [entry for entry in self._entries
                         if not self._dominates(cand, entry)]
        self._entries.append(cand)
        return True

    def entries(self) -> List[dict]:
        """Frontier members, fastest first (ties: smaller area, label)."""
        return sorted(self._entries,
                      key=lambda e: (-e["throughput"], e["area"],
                                     e["label"]))

    def __len__(self) -> int:
        return len(self._entries)


@dataclass
class FrontierReport:
    """Outcome of one design-axes search (JSON: ``repro-frontier-v1``)."""

    budget: int
    seed: int
    evaluations: int
    frontier: List[dict]
    trajectory: List[dict]
    operators: Dict[str, object]
    exhausted: bool

    def to_dict(self) -> Dict[str, object]:
        return {
            "format": FRONTIER_FORMAT,
            "objectives": {"throughput": "max", "area": "min"},
            "budget": self.budget,
            "seed": self.seed,
            "evaluations": self.evaluations,
            "frontier": self.frontier,
            "trajectory": self.trajectory,
            "operators": self.operators,
            "exhausted": self.exhausted,
        }

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)


def design_search(budget: int, seed: int = 0, runner=None, store=None,
                  designs: Sequence[str] = ("saa2vga", "blur"),
                  bindings: Optional[Sequence[str]] = None,
                  pixel_formats: Sequence[str] = ("gray8",),
                  frame_sizes: Sequence[Tuple[int, int]] = ((8, 8), (16, 12)),
                  capacities: Sequence[int] = (4, 8, 16),
                  epsilon: float = 0.2,
                  on_round: Optional[Callable[[dict], None]] = None
                  ) -> FrontierReport:
    """Budgeted mutation/crossover search over design axes.

    Each proposal is evaluated through ``runner``
    (an :class:`~repro.explore.runner.ExplorationRunner`; one is built
    over ``store`` when omitted), so repeat proposals — within a run or
    across warm-store runs — cost zero simulations.  A point joins the
    Pareto frontier only if its directed test passed (``verified``);
    acceptance is the operator bandit's reward.
    """
    if budget < 1:
        raise ValueError(f"budget must be >= 1, got {budget}")
    if runner is None:
        from ..explore.runner import ExplorationRunner

        runner = ExplorationRunner(store=store)
    pool = RngPool(seed)
    proposer = DesignProposer(pool.stream("search.design"), designs=designs,
                              bindings=bindings, pixel_formats=pixel_formats,
                              frame_sizes=frame_sizes, capacities=capacities,
                              epsilon=epsilon)
    frontier = ParetoFrontier()
    trajectory: List[dict] = []
    evaluations = 0
    exhausted = False
    while evaluations < budget:
        proposal = proposer.propose()
        if proposal is None:
            exhausted = True
            break
        point, op = proposal
        with _obs_tracing.span("search.round", mode="frontier",
                               round=evaluations, op=op):
            result = runner.run([point])[0]
        accepted = bool(result.verified) and frontier.consider(result)
        proposer.update(point, op, accepted)
        evaluations += 1
        _REGISTRY.inc("search_rounds")
        _REGISTRY.inc("search_proposals")
        _REGISTRY.inc("search_accepted", 1 if accepted else 0)
        entry = {
            "round": evaluations - 1,
            "op": op,
            "point": asdict(point),
            "label": point.label(),
            "accepted": accepted,
            "verified": bool(result.verified),
            **ParetoFrontier.fitness(result),
            "frontier_size": len(frontier),
        }
        trajectory.append(entry)
        if on_round is not None:
            on_round(entry)
    return FrontierReport(budget=budget, seed=seed, evaluations=evaluations,
                          frontier=frontier.entries(), trajectory=trajectory,
                          operators=proposer.ops.snapshot(),
                          exhausted=exhausted)
