"""Proposal operators: which (seed | design point) to simulate next.

Two proposers share one shape — an epsilon-greedy bandit
(:class:`~repro.search.bandit.EpsilonGreedy`) chooses among proposal
*operators*, each operator turns the evaluation history into one concrete
candidate, and the driver feeds the realised reward (marginal coverage
closure, or Pareto acceptance) back into the bandit:

* :class:`SeedProposer` proposes stimulus root seeds for one verification
  target.  ``scan`` walks the untried non-negative integers in order (the
  grid baseline's enumeration); ``mutate`` XOR-flips low bits of the
  best-gaining seed; ``cross`` recombines the bit patterns of the two
  best-gaining seeds.
* :class:`DesignProposer` proposes
  :class:`~repro.explore.grid.DesignPoint` configurations.  ``scan``
  walks the cartesian grid in :func:`~repro.explore.grid.expand_grid`
  order; ``mutate`` re-draws one axis of a random Pareto-frontier member;
  ``cross`` recombines two frontier members axis by axis.

The operator bandits start with a ``scan`` prior and ``explore_untried``
off: exploitation sticks with plain enumeration until mutate/crossover
*earn* budget through epsilon exploration — a wasted proposal costs a real
simulation, so the exotic operators get no free trials.

Every random draw comes from an injected :class:`random.Random`; one root
seed reproduces every proposal byte for byte.
"""

from __future__ import annotations

import random
from dataclasses import replace
from typing import Dict, List, Optional, Sequence, Tuple

from ..explore.grid import (
    DESIGN_BINDINGS,
    DESIGN_FORMATS,
    DesignPoint,
    expand_grid,
    is_valid_point,
)
from .bandit import EpsilonGreedy

#: Operator names, in scan-first order (also the fallback chain).
SEED_OPERATORS = ("scan", "mutate", "cross")

#: Pseudo-counts seeding the operator bandits: ``scan`` starts as the
#: known-good incumbent so greedy selection never hands mutate/cross a
#: free simulation before epsilon exploration picks them.
_SCAN_PRIOR = {"scan": (1, 1.0)}


class SeedProposer:
    """Propose the next stimulus seeds for one verification target."""

    def __init__(self, target: str, rng: random.Random,
                 epsilon: float = 0.1) -> None:
        self.target = target
        self._rng = rng
        self.ops = EpsilonGreedy(SEED_OPERATORS, epsilon=epsilon, rng=rng,
                                 explore_untried=False,
                                 prior=dict(_SCAN_PRIOR))
        #: Seeds handed out, in proposal order (the trajectory).
        self.proposed: List[int] = []
        self._proposed_set: set = set()
        #: Seed → number of goals it newly closed when evaluated.
        self.gains: Dict[int, int] = {}

    # -- operators ---------------------------------------------------------

    def _scan(self) -> int:
        seed = 0
        while seed in self._proposed_set:
            seed += 1
        return seed

    def _gaining(self) -> List[int]:
        """Seeds that closed goals, best gain first (ties: smaller seed)."""
        return sorted((s for s, g in self.gains.items() if g > 0),
                      key=lambda s: (-self.gains[s], s))

    def _mutate(self) -> Optional[int]:
        parents = self._gaining()
        if not parents:
            return None
        parent = parents[0]
        return parent ^ self._rng.randint(1, 0xFF)

    def _cross(self) -> Optional[int]:
        parents = self._gaining()
        if len(parents) < 2:
            return None
        a, b = parents[0], parents[1]
        width = max(a.bit_length(), b.bit_length(), 1)
        mask = self._rng.getrandbits(width)
        return (a & mask) | (b & (((1 << width) - 1) ^ mask))

    # -- API ---------------------------------------------------------------

    def available_ops(self) -> List[str]:
        gaining = self._gaining()
        ops = ["scan"]
        if gaining:
            ops.append("mutate")
        if len(gaining) >= 2:
            ops.append("cross")
        return ops

    def propose(self) -> Tuple[int, str]:
        """One fresh ``(seed, operator)`` pair (never a repeat seed)."""
        op = self.ops.select(self.available_ops())
        seed = {"scan": self._scan, "mutate": self._mutate,
                "cross": self._cross}[op]()
        if seed is None or seed in self._proposed_set:
            # The operator re-derived something already tried (or had no
            # parents): charge the duplicate to the operator as a zero-gain
            # pull and fall back to plain enumeration for the actual seed.
            if seed is not None:
                self.ops.update(op, 0.0)
            op = "scan"
            seed = self._scan()
        self.proposed.append(seed)
        self._proposed_set.add(seed)
        return seed, op

    def propose_batch(self, count: int) -> List[Tuple[int, str]]:
        """``count`` distinct fresh proposals (one lockstep lane each)."""
        return [self.propose() for _ in range(max(0, count))]

    def update(self, seed: int, op: str, gain: int) -> None:
        """Feed back how many goals the evaluated seed newly closed."""
        self.gains[seed] = int(gain)
        self.ops.update(op, float(gain))


class DesignProposer:
    """Propose design points for the Pareto-frontier search.

    ``axes`` are the :func:`~repro.explore.grid.expand_grid` axis domains;
    the ``scan`` operator enumerates exactly that grid, so an exhausted
    proposer (``propose()`` returning ``None`` with no frontier parents to
    mutate) means the whole reachable space has been evaluated.
    """

    #: Bounded retries for mutate/cross before falling back to scan — a
    #: dead-end draw (invalid or duplicate point) must not loop forever.
    MAX_ATTEMPTS = 8

    def __init__(self, rng: random.Random,
                 designs: Sequence[str] = ("saa2vga", "blur"),
                 bindings: Optional[Sequence[str]] = None,
                 pixel_formats: Sequence[str] = ("gray8",),
                 frame_sizes: Sequence[Tuple[int, int]] = ((8, 8), (16, 12)),
                 capacities: Sequence[int] = (4, 8, 16),
                 epsilon: float = 0.2) -> None:
        self._rng = rng
        self.designs = tuple(designs)
        self.bindings = None if bindings is None else tuple(bindings)
        self.pixel_formats = tuple(pixel_formats)
        self.frame_sizes = tuple((int(w), int(h)) for w, h in frame_sizes)
        self.capacities = tuple(int(c) for c in capacities)
        self._scan_order = expand_grid(
            designs=self.designs, bindings=self.bindings,
            pixel_formats=self.pixel_formats, frame_sizes=self.frame_sizes,
            capacities=self.capacities)
        self._scan_index = 0
        self.ops = EpsilonGreedy(SEED_OPERATORS, epsilon=epsilon, rng=rng,
                                 explore_untried=False,
                                 prior=dict(_SCAN_PRIOR))
        self.proposed: List[DesignPoint] = []
        self._proposed_keys: set = set()
        #: Points currently credited as parents (accepted to the frontier),
        #: in acceptance order.
        self.parents: List[DesignPoint] = []

    # -- operators ---------------------------------------------------------

    def _scan(self) -> Optional[DesignPoint]:
        while self._scan_index < len(self._scan_order):
            point = self._scan_order[self._scan_index]
            self._scan_index += 1
            if point.key() not in self._proposed_keys:
                return point
        return None

    def _axis_values(self, axis: str, point: DesignPoint) -> List[object]:
        if axis == "design":
            return [d for d in self.designs if d != point.design]
        if axis == "binding":
            supported = DESIGN_BINDINGS.get(point.design, ())
            allowed = (supported if self.bindings is None
                       else [b for b in self.bindings if b in supported])
            return [b for b in allowed if b != point.binding]
        if axis == "pixel_format":
            supported = DESIGN_FORMATS.get(point.design, ())
            return [f for f in self.pixel_formats
                    if f in supported and f != point.pixel_format]
        if axis == "frame":
            current = (point.frame_width, point.frame_height)
            return [f for f in self.frame_sizes if f != current]
        return [c for c in self.capacities if c != point.capacity]

    def _apply_axis(self, point: DesignPoint, axis: str,
                    value: object) -> DesignPoint:
        if axis == "frame":
            width, height = value  # type: ignore[misc]
            return replace(point, frame_width=width, frame_height=height)
        if axis == "design":
            # A new design family may not support the old binding/format;
            # re-draw both from its supported sets.
            design = str(value)
            bindings = DESIGN_BINDINGS.get(design, ())
            formats = [f for f in self.pixel_formats
                       if f in DESIGN_FORMATS.get(design, ())]
            if not bindings or not formats:
                return point  # unfixable: caller discards the duplicate
            return replace(
                point, design=design,
                binding=bindings[self._rng.randrange(len(bindings))],
                pixel_format=formats[self._rng.randrange(len(formats))])
        return replace(point, **{axis: value})

    def _mutate(self) -> Optional[DesignPoint]:
        if not self.parents:
            return None
        parent = self.parents[self._rng.randrange(len(self.parents))]
        axes = ["design", "binding", "pixel_format", "frame", "capacity"]
        axis = axes[self._rng.randrange(len(axes))]
        values = self._axis_values(axis, parent)
        if not values:
            return None
        return self._apply_axis(parent, axis,
                                values[self._rng.randrange(len(values))])

    def _cross(self) -> Optional[DesignPoint]:
        if len(self.parents) < 2:
            return None
        a = self.parents[self._rng.randrange(len(self.parents))]
        b = self.parents[self._rng.randrange(len(self.parents))]
        if a.key() == b.key():
            return None
        # Structural axes travel together (design fixes its binding/format
        # support); payload axes mix freely.
        head, tail = (a, b) if self._rng.random() < 0.5 else (b, a)
        frame = ((head.frame_width, head.frame_height)
                 if self._rng.random() < 0.5
                 else (tail.frame_width, tail.frame_height))
        capacity = (head.capacity if self._rng.random() < 0.5
                    else tail.capacity)
        return replace(head, frame_width=frame[0], frame_height=frame[1],
                       capacity=capacity)

    # -- API ---------------------------------------------------------------

    def available_ops(self) -> List[str]:
        ops = ["scan"]
        if self.parents:
            ops.append("mutate")
        if len(self.parents) >= 2:
            ops.append("cross")
        return ops

    def _fresh(self, point: Optional[DesignPoint]) -> Optional[DesignPoint]:
        """``point`` if it is new and buildable, else ``None``."""
        if point is None or point.key() in self._proposed_keys:
            return None
        ok, _ = is_valid_point(point)
        return point if ok else None

    def propose(self) -> Optional[Tuple[DesignPoint, str]]:
        """One fresh ``(point, operator)`` pair; ``None`` when exhausted."""
        op = self.ops.select(self.available_ops())
        make = {"scan": self._scan, "mutate": self._mutate,
                "cross": self._cross}[op]
        point = None
        if op == "scan":
            point = self._fresh(self._scan())
        else:
            for _ in range(self.MAX_ATTEMPTS):
                point = self._fresh(make())
                if point is not None:
                    break
            if point is None:
                # Nothing new in this operator's neighbourhood: charge it
                # a zero-reward pull and fall back to enumeration.
                self.ops.update(op, 0.0)
                op = "scan"
                point = self._fresh(self._scan())
        if point is None:
            return None
        self.proposed.append(point)
        self._proposed_keys.add(point.key())
        return point, op

    def update(self, point: DesignPoint, op: str, accepted: bool) -> None:
        """Feed back whether the evaluated point joined the frontier."""
        if accepted:
            self.parents.append(point)
        self.ops.update(op, 1.0 if accepted else 0.0)
