"""Command-line entry: ``python -m repro.search``.

Runs a budgeted coverage-directed search over registered verification
targets, prints the seed trajectory and final closure, and exits non-zero
when a session flags violations, a target misses ``--min-coverage``, or —
under ``--compare-grid`` — the search fails to beat the rectangular
grid × seed baseline.  This is what the CI ``search-smoke`` job invokes.

Examples::

    python -m repro.search 'queue/fifo' 'queue/sram' --cycles 120 \
        --budget 20 --min-coverage 100 --compare-grid
    python -m repro.search 'queue/fifo' --store /var/tmp/repro-store \
        --state /var/tmp/repro-search --json-coverage coverage.json
    python -m repro.search --frontier --frontier-budget 6 \
        --designs saa2vga --capacities 4 8 --json-frontier frontier.json
"""

from __future__ import annotations

import argparse
import sys

from ..obs import export as _obs_export
from ..obs import profile as _obs_profile
from ..obs import tracing as _obs_tracing
from ..rtl import COMPILED_BATCHED
from ..verify.rng import SEED_ENV, default_seed
from ..verify.session import TARGETS
from .driver import (
    CoverageSearch,
    SearchConfig,
    design_search,
    grid_baseline,
)
from .state import SearchState


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.search",
        description="Coverage-directed search over verification targets "
                    "and design axes.",
        epilog="The search spends its --budget where coverage is still "
               "open: an epsilon-greedy bandit picks the covergroup "
               "target, scan/mutate/crossover operators pick the stimulus "
               "seeds, and marginal bin/cross closure is the reward.  "
               "With --store DIR sessions persist in the same result "
               "store the verify CLI and the sweep service use, so a "
               "warm re-search performs zero simulations.  Full guide: "
               "docs/search.md.")
    parser.add_argument("targets", nargs="*",
                        help="registered verification targets to close "
                             "(see --list)")
    parser.add_argument("--list", action="store_true",
                        help="list registered targets and exit")

    search = parser.add_argument_group("coverage search")
    search.add_argument("--budget", type=int, default=32, metavar="N",
                        help="maximum verification sessions to spend "
                             "(default: 32)")
    search.add_argument("--cycles", type=int, default=None,
                        help="cycle budget override (default: per-target)")
    search.add_argument("--seed", type=int, default=default_seed(),
                        help=f"root seed for every proposal draw "
                             f"(default: ${SEED_ENV} or 0)")
    search.add_argument("--strategy", default=COMPILED_BATCHED,
                        choices=("event", "fixpoint", "compiled",
                                 COMPILED_BATCHED))
    search.add_argument("--batch", type=int, default=1, metavar="N",
                        help="proposals per round; fresh seeds in a round "
                             "share one lockstep simulation (default: 1)")
    search.add_argument("--epsilon", type=float, default=0.1,
                        help="bandit exploration rate (default: 0.1)")
    search.add_argument("--min-coverage", type=float, default=100.0,
                        metavar="PCT",
                        help="per-target closure threshold the search "
                             "drives toward (default: 100)")
    search.add_argument("--compare-grid", action="store_true",
                        help="also price the rectangular grid x seed "
                             "baseline and fail unless the search closed "
                             "in strictly fewer sessions")

    frontier = parser.add_argument_group("design-axes frontier search")
    frontier.add_argument("--frontier", action="store_true",
                          help="also run the Pareto search over design "
                               "points (throughput max, synth area min)")
    frontier.add_argument("--frontier-budget", type=int, default=8,
                          metavar="N",
                          help="design points to evaluate (default: 8)")
    frontier.add_argument("--designs", nargs="+",
                          default=["saa2vga", "blur"], metavar="NAME",
                          help="design families to search over")
    frontier.add_argument("--bindings", nargs="+", default=None,
                          metavar="NAME",
                          help="container bindings (default: all supported)")
    frontier.add_argument("--formats", nargs="+", default=["gray8"],
                          metavar="FMT", help="pixel formats")
    frontier.add_argument("--frames", nargs="+", default=["8x8", "16x12"],
                          metavar="WxH", help="stimulus frame sizes")
    frontier.add_argument("--capacities", nargs="+", type=int,
                          default=[4, 8, 16], metavar="N",
                          help="container capacities")

    state = parser.add_argument_group("persistence")
    state.add_argument("--store", metavar="DIR", default=None,
                       help="persistent result store; repeat proposals "
                            "replay from it instead of re-simulating")
    state.add_argument("--state", metavar="DIR", default=None,
                       help="fitness-state directory (merged coverage.json "
                            "+ frontier.json); warm goals earn no reward "
                            "again")

    out = parser.add_argument_group("output")
    out.add_argument("--json", metavar="PATH", default=None,
                     help="write the search report (trajectory, bandits, "
                          "closure) here")
    out.add_argument("--json-coverage", metavar="PATH", default=None,
                     help="write the merged coverage database here")
    out.add_argument("--json-frontier", metavar="PATH", default=None,
                     help="write the Pareto frontier here (implies "
                          "--frontier)")
    out.add_argument("--quiet", action="store_true",
                     help="suppress stdout summaries (exit status still "
                          "set)")

    obs = parser.add_argument_group("telemetry (docs/observability.md)")
    obs.add_argument("--trace", metavar="PATH", default=None,
                     help="record search-round spans and write them here "
                          "(.ndjson/.jsonl lines or Chrome trace JSON)")
    obs.add_argument("--profile", action="store_true",
                     help="print a per-strategy settle/compile wall-time "
                          "breakdown after the search")
    return parser


def main(argv=None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.list:
        for name, spec in TARGETS.items():
            print(f"{name:<26} default_cycles={spec.default_cycles}")
        return 0
    if args.json_frontier is not None:
        args.frontier = True
    if not args.targets and not args.frontier:
        parser.error("name at least one target (see --list) or pass "
                     "--frontier")
    profiler = _obs_profile.enable() if args.profile else None
    if args.trace is not None:
        _obs_tracing.enable()
    try:
        return _run(args)
    finally:
        if args.trace is not None:
            _obs_tracing.disable()
            dropped = _obs_tracing.stats()["dropped"]
            records = _obs_tracing.drain()
            records.insert(0, _obs_export.meta_record(dropped_spans=dropped))
            fmt = _obs_export.write_trace(records, args.trace)
            if not args.quiet:
                print(f"trace: {len(records)} record(s) written to "
                      f"{args.trace} ({fmt})")
        if profiler is not None:
            _obs_profile.disable()
            if not args.quiet:
                print(profiler.report())


def _parse_frames(frames):
    sizes = []
    for text in frames:
        try:
            width, height = text.lower().split("x", 1)
            sizes.append((int(width), int(height)))
        except ValueError:
            raise SystemExit(f"bad frame size {text!r}; expected WxH "
                             f"(e.g. 16x12)") from None
    return sizes


def _run(args) -> int:
    status = 0
    state = SearchState(args.state) if args.state is not None else None
    frontier_json = None

    if args.targets:
        try:
            config = SearchConfig(
                targets=tuple(args.targets), budget=args.budget,
                cycles=args.cycles, seed=args.seed, strategy=args.strategy,
                batch=args.batch, epsilon=args.epsilon,
                min_coverage=args.min_coverage)
        except ValueError as exc:
            print(str(exc), file=sys.stderr)
            return 2
        search = CoverageSearch(config, store=args.store, state=state)
        with _obs_tracing.span("search.run", targets=len(config.targets),
                               budget=config.budget):
            report = search.run()
        if not args.quiet:
            print(report.summary())
        if args.json:
            with open(args.json, "w", encoding="utf-8") as fh:
                fh.write(report.to_json())
            if not args.quiet:
                print(f"search report written to {args.json}")
        if args.json_coverage:
            with open(args.json_coverage, "w", encoding="utf-8") as fh:
                fh.write(search.db.to_json())
            if not args.quiet:
                print(f"merged coverage written to {args.json_coverage}")
        if report.violations:
            print(f"\nFAILED: {len(report.violations)} violation(s) during "
                  f"search sessions", file=sys.stderr)
            for violation in report.violations[:5]:
                print(f"  {violation}", file=sys.stderr)
            status = 1
        if not report.closed:
            print(f"\nFAILED: coverage below {config.min_coverage}% after "
                  f"{report.sessions} session(s)", file=sys.stderr)
            for missing in report.unhit:
                print(f"  unhit: {missing}", file=sys.stderr)
            status = 1
        if args.compare_grid:
            baseline = grid_baseline(config, evaluator=search.evaluator)
            if not args.quiet:
                print(f"grid baseline: {baseline['sessions']} session(s) "
                      f"({len(config.targets)} target(s) x "
                      f"{baseline['matrix_seeds']} seed(s)); "
                      f"search used {report.sessions}")
            beat = (report.closed
                    and (not baseline["closed"]
                         or report.sessions < baseline["sessions"]))
            if not beat:
                print(f"\nFAILED: search did not close in strictly fewer "
                      f"sessions than the grid baseline "
                      f"({report.sessions} vs {baseline['sessions']})",
                      file=sys.stderr)
                status = 1

    if args.frontier:
        freport = design_search(
            budget=args.frontier_budget, seed=args.seed, store=args.store,
            designs=args.designs, bindings=args.bindings,
            pixel_formats=args.formats,
            frame_sizes=_parse_frames(args.frames),
            capacities=args.capacities)
        frontier_json = freport.to_json()
        if not args.quiet:
            print(f"frontier: {len(freport.frontier)} non-dominated "
                  f"point(s) from {freport.evaluations} evaluation(s)")
            for entry in freport.frontier:
                print(f"  {entry['label']:<40} "
                      f"thr={entry['throughput']:.3f} "
                      f"area={entry['area']}")
        if args.json_frontier:
            with open(args.json_frontier, "w", encoding="utf-8") as fh:
                fh.write(frontier_json)
            if not args.quiet:
                print(f"frontier written to {args.json_frontier}")

    if state is not None:
        state.save(frontier_json=frontier_json)
        if not args.quiet:
            print(f"fitness state saved to {args.state}")
    return status


if __name__ == "__main__":
    sys.exit(main())
