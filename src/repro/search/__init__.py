"""Coverage-directed search: close the verify→explore feedback loop.

``repro.verify`` reports covergroup closure and ``repro.explore``
enumerates grids; this package feeds the first back into the second.  A
budgeted driver proposes (target, stimulus seed) and design-point
candidates, evaluates them through the existing lockstep/runner paths,
and spends the remaining budget where coverage is still open — rewarding
marginal bin/cross closure and Pareto improvement on
(throughput × synth area).

Layers:

* :mod:`~repro.search.bandit` — deterministic epsilon-greedy arm
  selection (targets, proposal operators).
* :mod:`~repro.search.propose` — scan/mutate/crossover proposers for
  stimulus seeds and design axes.
* :mod:`~repro.search.state` — persistent CoverageDB fitness state and
  the memoized, store-backed session evaluator.
* :mod:`~repro.search.driver` — the search loop, the grid baseline it is
  gated against, and the Pareto design-axes search.

CLI: ``python -m repro.search`` (see :mod:`repro.search.__main__` and
``docs/search.md``).
"""

from .bandit import BanditError, EpsilonGreedy
from .driver import (
    FRONTIER_FORMAT,
    SEARCH_FORMAT,
    CoverageSearch,
    FrontierReport,
    ParetoFrontier,
    SearchConfig,
    SearchReport,
    design_search,
    grid_baseline,
    propose_seeds,
    run_search,
)
from .propose import DesignProposer, SeedProposer
from .state import SearchState, SessionEvaluator

__all__ = [
    "BanditError", "EpsilonGreedy",
    "FRONTIER_FORMAT", "SEARCH_FORMAT",
    "CoverageSearch", "FrontierReport", "ParetoFrontier",
    "SearchConfig", "SearchReport",
    "design_search", "grid_baseline", "propose_seeds", "run_search",
    "DesignProposer", "SeedProposer",
    "SearchState", "SessionEvaluator",
]
