"""Persistent fitness state and memoized session evaluation.

The search driver's fitness state is a merged
:class:`~repro.verify.coverage.CoverageDB` — the same
``repro-coverage-v1`` JSON the verify CLI writes — plus, for the design-
axes mode, a Pareto-frontier JSON.  :class:`SearchState` owns loading and
saving both under one directory, so interrupted or repeated searches
resume from what is already closed instead of re-earning it.

:class:`SessionEvaluator` is the driver's only path to simulation.  Every
(target, seed) proposal goes through a three-level lookup:

1. the in-process memo (repeat proposals inside one search are free),
2. the optional persistent :class:`~repro.serve.store.ResultStore`, under
   the exact :func:`~repro.serve.records.verify_key` identity the verify
   CLI and the sweep service use — a warm store re-search performs zero
   simulations (the store-interplay test pins this via
   ``repro.rtl.instrument``),
3. one :func:`~repro.verify.session.verify_matrix` lockstep call for
   whatever is left (one lane per uncached seed).

Clean sessions are written back; failing sessions are never cached,
matching the verify CLI's policy.
"""

from __future__ import annotations

import os
from typing import Dict, List, Optional, Tuple

from ..obs.metrics import REGISTRY as _REGISTRY
from ..rtl import COMPILED_BATCHED
from ..verify.coverage import CoverageDB
from ..verify.session import TARGETS, verify_matrix

#: File names inside a ``--state`` directory.
COVERAGE_FILE = "coverage.json"
FRONTIER_FILE = "frontier.json"


def resolved_cycles(target: str, cycles: Optional[int]) -> int:
    """The cycle budget a session actually runs (store keys need this)."""
    if cycles is not None:
        return int(cycles)
    return TARGETS[target].default_cycles


class SearchState:
    """Fitness-state directory: merged coverage + frontier artifacts."""

    def __init__(self, path: Optional[str] = None) -> None:
        self.path = path
        self.db = CoverageDB()
        if path is not None:
            os.makedirs(path, exist_ok=True)
            coverage = os.path.join(path, COVERAGE_FILE)
            if os.path.exists(coverage):
                with open(coverage, "r", encoding="utf-8") as fh:
                    self.db = CoverageDB.from_json(fh.read())

    def save(self, frontier_json: Optional[str] = None) -> None:
        """Write the merged coverage (and optionally the frontier) back."""
        if self.path is None:
            return
        with open(os.path.join(self.path, COVERAGE_FILE), "w",
                  encoding="utf-8") as fh:
            fh.write(self.db.to_json())
        if frontier_json is not None:
            with open(os.path.join(self.path, FRONTIER_FILE), "w",
                      encoding="utf-8") as fh:
                fh.write(frontier_json)


class SessionEvaluator:
    """Memoized, store-backed evaluation of (target, seed) proposals."""

    def __init__(self, cycles: Optional[int] = None,
                 strategy: str = COMPILED_BATCHED, store=None,
                 strict: bool = False) -> None:
        self.cycles = cycles
        self.strategy = strategy
        if store is not None and not hasattr(store, "get"):
            from ..serve.store import ResultStore

            store = ResultStore(store)
        self.store = store
        self.strict = strict
        self._memo: Dict[str, dict] = {}
        #: Sessions served from the in-process memo.
        self.memo_hits = 0
        #: Sessions served from the persistent store.
        self.store_hits = 0
        #: Sessions that actually built a simulator.
        self.simulated = 0

    def key(self, target: str, seed: int) -> str:
        from ..serve.records import verify_key

        return verify_key(target, seed, resolved_cycles(target, self.cycles),
                          self.strategy)

    def evaluate(self, target: str, seeds: List[int]
                 ) -> List[Tuple[int, dict, str]]:
        """Verify-session records for ``seeds``, cheapest source first.

        Returns ``[(seed, record, source), ...]`` in the input seed order,
        where ``source`` is ``"memo"``, ``"store"`` or ``"sim"`` and
        ``record`` is the :func:`~repro.serve.records.verify_record` dict
        (its ``result.coverage_group`` merges straight into a
        :class:`~repro.verify.coverage.CoverageDB`).  Uncached seeds run
        as one lockstep matrix; only clean fresh sessions are persisted.
        """
        from ..serve.records import record_matches, verify_record

        out: Dict[int, Tuple[dict, str]] = {}
        fresh: List[int] = []
        for seed in seeds:
            key = self.key(target, seed)
            record = self._memo.get(key)
            if record is not None:
                self.memo_hits += 1
                _REGISTRY.inc("search_memo_hits")
                out[seed] = (record, "memo")
                continue
            if self.store is not None:
                record = self.store.get(key)
                if record_matches(record, "verify"):
                    self._memo[key] = record
                    self.store_hits += 1
                    _REGISTRY.inc("search_store_hits")
                    out[seed] = (record, "store")
                    continue
            fresh.append(seed)
        if fresh:
            results = verify_matrix(target, fresh, cycles=self.cycles,
                                    strategy=self.strategy,
                                    strict=self.strict)
            self.simulated += len(fresh)
            _REGISTRY.inc("search_simulated", len(fresh))
            for result in results:
                key = self.key(target, result.seed)
                record = verify_record(result, key)
                self._memo[key] = record
                if self.store is not None and result.ok:
                    self.store.put(key, record)
                out[result.seed] = (record, "sim")
        return [(seed, out[seed][0], out[seed][1]) for seed in seeds]
