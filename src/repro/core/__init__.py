"""The paper's primary contribution: the hardware Iterator pattern library.

Organised, as Section 3.2 prescribes, around three kinds of concepts:

* **containers** — collections of elements implemented over a choice of
  physical structures (:mod:`repro.core.containers`);
* **iterators** — the behavioural design pattern giving algorithms a uniform
  way to traverse containers without exposing their implementation
  (:mod:`repro.core.iterators`);
* **algorithms** — generic data-manipulation components written only against
  iterator interfaces (:mod:`repro.core.algorithms`).

Importing :mod:`repro.core` registers every container kind, binding and
iterator, so the factory functions (:func:`make_container`,
:func:`make_iterator`) are ready to use.
"""

from .container import (
    CONTAINER_BINDINGS,
    CONTAINER_KINDS,
    Container,
    ContainerError,
    bindings_for,
    classification_table,
    container_kinds,
    lookup_binding,
    make_container,
)
from .interfaces import (
    ITERATOR_OPERATIONS,
    Access,
    AssocIface,
    IteratorIface,
    IteratorOp,
    OpDescriptor,
    RandomIface,
    StreamSinkIface,
    StreamSourceIface,
    Traversal,
    WindowIteratorIface,
    WindowSourceIface,
    format_traversals,
)
from .iterator import (
    ITERATOR_REGISTRY,
    HardwareIterator,
    IteratorError,
    iterator_catalog,
    iterators_for,
    make_iterator,
)

# Importing the sub-packages populates the registries.
from . import containers as containers  # noqa: F401
from . import iterators as iterators  # noqa: F401
from . import algorithms as algorithms  # noqa: F401

from .algorithms import (
    EDGE_KERNEL,
    IDENTITY_KERNEL,
    SHARPEN_KERNEL,
    SMOOTH_KERNEL,
    Algorithm,
    BlurAlgorithm,
    Conv3x3Algorithm,
    Kernel3x3,
    golden_convolve3x3,
    CopyAlgorithm,
    FillAlgorithm,
    FindAlgorithm,
    GenericCopyAlgorithm,
    HistogramAlgorithm,
    ReduceAlgorithm,
    TransformAlgorithm,
    blur_kernel,
    gain,
    golden_histogram,
    invert,
    threshold,
)

__all__ = [
    # container machinery
    "Container",
    "ContainerError",
    "CONTAINER_KINDS",
    "CONTAINER_BINDINGS",
    "container_kinds",
    "bindings_for",
    "lookup_binding",
    "make_container",
    "classification_table",
    # interfaces
    "Access",
    "Traversal",
    "IteratorOp",
    "OpDescriptor",
    "ITERATOR_OPERATIONS",
    "format_traversals",
    "StreamSourceIface",
    "StreamSinkIface",
    "WindowSourceIface",
    "RandomIface",
    "AssocIface",
    "IteratorIface",
    "WindowIteratorIface",
    # iterator machinery
    "HardwareIterator",
    "IteratorError",
    "ITERATOR_REGISTRY",
    "make_iterator",
    "iterators_for",
    "iterator_catalog",
    # algorithms
    "Algorithm",
    "CopyAlgorithm",
    "GenericCopyAlgorithm",
    "HistogramAlgorithm",
    "golden_histogram",
    "TransformAlgorithm",
    "BlurAlgorithm",
    "blur_kernel",
    "Conv3x3Algorithm",
    "Kernel3x3",
    "golden_convolve3x3",
    "IDENTITY_KERNEL",
    "SMOOTH_KERNEL",
    "SHARPEN_KERNEL",
    "EDGE_KERNEL",
    "FillAlgorithm",
    "FindAlgorithm",
    "ReduceAlgorithm",
    "invert",
    "threshold",
    "gain",
]
