"""Abstract iterators and the iterator registry.

Iterators "provide a way to access the elements of a data store (aggregate
object) without exposing its underlying representation".  In the hardware
version (Section 3.1) iterators are instantiated at design time and each
container kind has its own concrete iterator, because "although the iterator
provides a common interface for any container, it must have a deep knowledge
of the internals of the container".

Every iterator exposes the canonical :class:`IteratorIface` to the algorithm
side; the concrete subclasses differ in which operations of Table 2 they
support and in how those operations are mapped onto the container's
functional interface.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional, Tuple, Type

from ..rtl import Component
from .container import Container
from .interfaces import IteratorIface, IteratorOp


class IteratorError(Exception):
    """Raised for iterator registry/instantiation problems."""


class HardwareIterator(Component):
    """Base class for all hardware iterators.

    Class attributes
    ----------------
    traversal:
        Which traversal family this iterator belongs to: ``"forward"``,
        ``"backward"``, ``"bidirectional"`` or ``"random"``.
    readable / writable:
        Whether this is an input (read) and/or output (write) iterator, in
        the STL sense.
    container_kind:
        The container kind this concrete iterator knows how to traverse.
    """

    traversal: str = "abstract"
    readable: bool = False
    writable: bool = False
    container_kind: str = "abstract"

    #: Most simple iterators are pure wrappers "dissolved at the time of
    #: synthesizing the design"; subclasses with real state override this.
    transparent: bool = True

    def __init__(self, name: str, container: Container) -> None:
        super().__init__(name)
        self.container = container
        self.iface: Optional[IteratorIface] = None

    # -- operation support (Table 2) --------------------------------------------------

    @classmethod
    def supported_ops(cls) -> FrozenSet[IteratorOp]:
        """The subset of Table-2 operations this iterator implements."""
        ops = set()
        if cls.traversal in ("forward", "bidirectional", "random", "window"):
            ops.add(IteratorOp.INC)
        if cls.traversal in ("backward", "bidirectional", "random"):
            ops.add(IteratorOp.DEC)
        if cls.readable:
            ops.add(IteratorOp.READ)
        if cls.writable:
            ops.add(IteratorOp.WRITE)
        if cls.traversal == "random":
            ops.add(IteratorOp.INDEX)
        return frozenset(ops)

    @classmethod
    def supports(cls, op: IteratorOp) -> bool:
        """Whether operation ``op`` is implemented by this iterator."""
        return op in cls.supported_ops()

    @classmethod
    def describe(cls) -> Dict[str, str]:
        """A summary row used by the Table-2 reproduction bench."""
        return {
            "iterator": cls.__name__,
            "traversal": cls.traversal,
            "container": cls.container_kind,
            "readable": "yes" if cls.readable else "-",
            "writable": "yes" if cls.writable else "-",
            "ops": ", ".join(sorted(op.value for op in cls.supported_ops())),
        }


# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------

#: (container_kind, traversal, readable, writable) -> iterator class
ITERATOR_REGISTRY: Dict[Tuple[str, str, bool, bool], Type[HardwareIterator]] = {}


def register_iterator(cls: Type[HardwareIterator]) -> Type[HardwareIterator]:
    """Class decorator registering a concrete iterator implementation."""
    key = (cls.container_kind, cls.traversal, cls.readable, cls.writable)
    if key in ITERATOR_REGISTRY:
        raise IteratorError(f"iterator for {key!r} already registered")
    ITERATOR_REGISTRY[key] = cls
    return cls


def iterators_for(container_kind: str) -> List[Type[HardwareIterator]]:
    """All iterator classes registered for ``container_kind``."""
    return [cls for (kind, _t, _r, _w), cls in ITERATOR_REGISTRY.items()
            if kind == container_kind]


def make_iterator(container: Container, traversal: str, *, readable: bool = False,
                  writable: bool = False, name: Optional[str] = None) -> HardwareIterator:
    """Factory: build the concrete iterator matching a container and a role.

    Mirrors the paper's rule that "a concrete iterator must exist for each
    type of container in the library": lookup is by the container's *kind*,
    so the same algorithm + iterator combination works for every binding of
    that kind.
    """
    key = (container.kind, traversal, readable, writable)
    try:
        cls = ITERATOR_REGISTRY[key]
    except KeyError:
        available = [k for k in ITERATOR_REGISTRY if k[0] == container.kind]
        raise IteratorError(
            f"no {traversal} iterator (readable={readable}, writable={writable}) "
            f"registered for container kind {container.kind!r}; "
            f"available: {available}") from None
    return cls(name or f"{container.name}_it", container)


def iterator_catalog() -> List[Dict[str, str]]:
    """Describe every registered iterator (used by the Table-2 bench)."""
    return [cls.describe() for cls in ITERATOR_REGISTRY.values()]
