"""The associative-array container and its physical bindings.

Table 1 classifies the associative array as random-access only (no
sequential traversal): elements are addressed by key.  The natural hardware
realisation is a content-addressable memory; a register-file binding with
the same functional interface is also provided for comparison in the
design-space characterisation.
"""

from __future__ import annotations

from ..container import Container, register_binding, register_kind
from ..interfaces import AssocIface
from ...primitives import ContentAddressableMemory


@register_kind
class AssocArray(Container):
    """Abstract associative (key -> value) container.

    Interface
    ---------
    port:
        :class:`AssocIface` — combinational ``lookup`` by key plus
        synchronous ``insert`` and ``remove`` operations.
    """

    kind = "assoc_array"
    random_read = True
    random_write = True

    def __init__(self, name: str, key_width: int, value_width: int,
                 capacity: int) -> None:
        super().__init__(name, value_width, capacity)
        self.key_width = key_width
        self.value_width = value_width
        self.port = AssocIface(self, key_width, value_width, name=f"{name}_port")

    def entries(self) -> dict:
        """Return the currently stored key/value pairs (backdoor)."""
        raise NotImplementedError

    def snapshot(self) -> list:
        return sorted(self.entries().items())


@register_binding
class AssocArrayCAM(AssocArray):
    """Associative array over a content-addressable memory.

    Lookups match all entries in parallel and complete in the same cycle;
    inserts and removals take effect at the next clock edge.
    """

    binding = "cam"

    def __init__(self, name: str, key_width: int, value_width: int,
                 capacity: int) -> None:
        super().__init__(name, key_width, value_width, capacity)
        self.cam = self.child(ContentAddressableMemory(
            f"{name}_cam", depth=capacity, key_width=key_width,
            value_width=value_width))
        self._write_done = self.state(1, name=f"{name}_write_done")

        @self.comb
        def wrap() -> None:
            self.cam.lookup_key.next = self.port.key.value
            self.port.found.next = self.cam.hit.value if self.port.lookup.value else 0
            self.port.value.next = self.cam.hit_value.value
            self.port.full.next = self.cam.full.value

            self.cam.insert.next = self.port.insert.value
            self.cam.insert_key.next = self.port.insert_key.value
            self.cam.insert_value.next = self.port.insert_value.value
            self.cam.remove.next = self.port.remove.value
            self.cam.remove_key.next = self.port.remove_key.value

            # Lookups complete combinationally; inserts/removals complete at
            # the following edge, signalled by the registered pulse.
            self.port.done.next = (1 if self.port.lookup.value
                                   else self._write_done.value)

        @self.seq
        def track() -> None:
            self._write_done.next = (
                1 if (self.port.insert.value or self.port.remove.value) else 0)

    def entries(self) -> dict:
        return self.cam.entries()

    @property
    def occupancy(self) -> int:
        return self.cam.occupancy
