"""Concrete containers of the basic component library (Section 3.2.1).

Importing this package registers every container kind and binding in the
registries of :mod:`repro.core.container`, in the order Table 1 lists them.
"""

from .stack import Stack, StackLIFO, StackSRAM
from .queue import Queue, QueueFIFO, QueueSRAM
from .read_buffer import ReadBuffer, ReadBufferFIFO, ReadBufferLine3, ReadBufferSRAM
from .write_buffer import WriteBuffer, WriteBufferFIFO, WriteBufferSRAM
from .vector import Vector, VectorBRAM, VectorRegisters, VectorSRAM
from .assoc_array import AssocArray, AssocArrayCAM
from .circular_sram import CircularBufferSRAM

__all__ = [
    "Stack",
    "StackLIFO",
    "StackSRAM",
    "Queue",
    "QueueFIFO",
    "QueueSRAM",
    "ReadBuffer",
    "ReadBufferFIFO",
    "ReadBufferSRAM",
    "ReadBufferLine3",
    "WriteBuffer",
    "WriteBufferFIFO",
    "WriteBufferSRAM",
    "Vector",
    "VectorBRAM",
    "VectorSRAM",
    "VectorRegisters",
    "AssocArray",
    "AssocArrayCAM",
    "CircularBufferSRAM",
]
