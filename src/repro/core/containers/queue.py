"""The queue container and its physical bindings.

A queue is a general FIFO-ordered container whose *both* ends face the
algorithm side: producers push through output iterators and consumers pop
through input iterators, both traversing forward (Table 1: sequential F/F).
The paper notes queues map most efficiently onto FIFO cores but "the same
queue over an external RAM" may lower overall system cost.
"""

from __future__ import annotations

from ..container import Container, register_binding, register_kind
from ..interfaces import F, StreamSinkIface, StreamSourceIface
from ...primitives import SyncFIFO
from ...verify import mutate
from .circular_sram import CircularBufferSRAM


@register_kind
class Queue(Container):
    """Abstract FIFO-ordered queue.

    Interfaces
    ----------
    sink:
        :class:`StreamSinkIface` — output iterators push elements here.
    source:
        :class:`StreamSourceIface` — input iterators pop elements here.
    """

    kind = "queue"
    seq_read = F
    seq_write = F

    def __init__(self, name: str, width: int, capacity: int) -> None:
        super().__init__(name, width, capacity)
        self.sink = StreamSinkIface(self, width, name=f"{name}_sink")
        self.source = StreamSourceIface(self, width, name=f"{name}_source")


@register_binding
class QueueFIFO(Queue):
    """Queue over an on-chip FIFO core ("the most efficient implementation")."""

    binding = "fifo"
    transparent = True

    def __init__(self, name: str, width: int, capacity: int) -> None:
        super().__init__(name, width, capacity)
        self.fifo = self.child(SyncFIFO(f"{name}_fifo", depth=capacity, width=width))

        # Construction-time mutation switch (see repro.verify.mutate).
        _ready_when_full = mutate.enabled("queue.ready_when_full")

        def wrap() -> None:
            self.fifo.din.next = self.sink.data.value
            self.fifo.push.next = self.sink.push.value
            self.sink.ready.next = 0 if self.fifo.full.value else 1
            self.source.data.next = self.fifo.dout.value
            self.source.valid.next = 0 if self.fifo.empty.value else 1
            self.fifo.pop.next = self.source.pop.value

        def wrap_always_ready() -> None:
            # MUTATED (test-only): advertises ready even when full, so
            # accepted pushes are silently dropped by the guarded FIFO.
            self.fifo.din.next = self.sink.data.value
            self.fifo.push.next = self.sink.push.value
            self.sink.ready.next = 1
            self.source.data.next = self.fifo.dout.value
            self.source.valid.next = 0 if self.fifo.empty.value else 1
            self.fifo.pop.next = self.source.pop.value

        self.comb(wrap_always_ready if _ready_when_full else wrap)

    @property
    def occupancy(self) -> int:
        return self.fifo.occupancy

    def snapshot(self) -> list:
        return self.fifo.contents()


@register_binding
class QueueSRAM(Queue):
    """Queue over external static RAM ("may lower the overall system cost")."""

    binding = "sram"
    external_storage = True
    transparent = True

    def __init__(self, name: str, width: int, capacity: int,
                 sram_latency: int = 2) -> None:
        super().__init__(name, width, capacity)
        self.buffer = self.child(CircularBufferSRAM(
            f"{name}_cbuf", capacity=capacity, width=width,
            sram_latency=sram_latency))

        @self.comb
        def wrap() -> None:
            self.buffer.fill.data.next = self.sink.data.value
            self.buffer.fill.push.next = self.sink.push.value
            self.sink.ready.next = self.buffer.fill.ready.value
            self.source.data.next = self.buffer.drain.data.value
            self.source.valid.next = self.buffer.drain.valid.value
            self.buffer.drain.pop.next = self.source.pop.value

    @property
    def occupancy(self) -> int:
        return self.buffer.occupancy

    def snapshot(self) -> list:
        return self.buffer.snapshot()
