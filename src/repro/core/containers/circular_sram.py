"""Circular buffer over external SRAM.

The paper describes the SRAM binding of the read buffer as "a little finite
state machine that controls memory access, as well as a few registers to
store the begin and end pointers of the queue (implemented as a circular
buffer) over the static RAM".  This component is exactly that machine; the
read-buffer, write-buffer and queue SRAM bindings embed it and simply expose
its two stream interfaces under the role names of their kind.

Structure
---------
* a *fill* side (:class:`StreamSinkIface`): incoming elements are accepted
  into a one-element holding register and then written to SRAM at the tail
  pointer;
* a *drain* side (:class:`StreamSourceIface`): the element at the head
  pointer is prefetched from SRAM into a data register, so the consumer sees
  single-cycle reads whenever ``valid`` is high — exactly how a generated
  container keeps the iterator a pure wrapper even over slow memory.
"""

from __future__ import annotations

from ..interfaces import StreamSinkIface, StreamSourceIface
from ...primitives import AsyncSRAM
from ...rtl import Component, FSM, clog2


class CircularBufferSRAM(Component):
    """FIFO-ordered circular buffer stored in external SRAM.

    Parameters
    ----------
    capacity:
        Number of elements the SRAM region can hold.
    width:
        Element width in bits.
    sram_latency:
        Access latency of the external memory, in cycles.
    """

    def __init__(self, name: str, capacity: int, width: int,
                 sram_latency: int = 2) -> None:
        super().__init__(name)
        self.capacity = capacity
        self.width = width

        self.fill = StreamSinkIface(self, width, name=f"{name}_fill")
        self.drain = StreamSourceIface(self, width, name=f"{name}_drain")

        self.sram = self.child(AsyncSRAM(
            f"{name}_sram", depth=capacity, width=width, latency=sram_latency))

        ptr_width = clog2(capacity)
        cnt_width = clog2(capacity + 1)

        # Begin/end pointers and occupancy of the circular buffer.
        self._head = self.state(ptr_width, name=f"{name}_head")
        self._tail = self.state(ptr_width, name=f"{name}_tail")
        self._count = self.state(cnt_width, name=f"{name}_count")

        # Holding register on the fill side.
        self._hold = self.state(width, name=f"{name}_hold")
        self._hold_valid = self.state(1, name=f"{name}_hold_valid")

        # Prefetch register on the drain side.
        self._pref = self.state(width, name=f"{name}_pref")
        self._pref_valid = self.state(1, name=f"{name}_pref_valid")

        self._fsm = FSM(self, ["IDLE", "WRITE", "READ", "RELEASE"],
                        name=f"{name}_ctrl")

        @self.comb
        def handshake() -> None:
            self.fill.ready.next = 0 if self._hold_valid.value else 1
            self.drain.valid.next = self._pref_valid.value
            self.drain.data.next = self._pref.value

        @self.seq
        def control() -> None:
            fsm = self._fsm
            count = self._count.value
            hold_valid = self._hold_valid.value
            pref_valid = self._pref_valid.value

            # Accept a new element into the holding register.
            accepted_fill = False
            if self.fill.push.value and not hold_valid:
                self._hold.next = self.fill.data.value
                self._hold_valid.next = 1
                accepted_fill = True

            # Hand the prefetched element to the consumer.
            consumed = False
            if self.drain.pop.value and pref_valid:
                self._pref_valid.next = 0
                consumed = True

            if fsm.is_in("IDLE"):
                if hold_valid and count < self.capacity:
                    # Write the held element to the tail position.
                    self.sram.addr.next = self._tail.value
                    self.sram.wdata.next = self._hold.value
                    self.sram.we.next = 1
                    self.sram.req.next = 1
                    fsm.goto("WRITE")
                elif count > 0 and not pref_valid and not consumed:
                    # Prefetch the head element for the consumer.
                    self.sram.addr.next = self._head.value
                    self.sram.we.next = 0
                    self.sram.req.next = 1
                    fsm.goto("READ")
            elif fsm.is_in("WRITE"):
                if self.sram.ack.value:
                    self._tail.next = (self._tail.value + 1) % self.capacity
                    self._count.next = count + 1
                    if not accepted_fill:
                        self._hold_valid.next = 0
                    self.sram.req.next = 0
                    fsm.goto("RELEASE")
            elif fsm.is_in("READ"):
                if self.sram.ack.value:
                    self._pref.next = self.sram.rdata.value
                    if not consumed:
                        self._pref_valid.next = 1
                    self._head.next = (self._head.value + 1) % self.capacity
                    self._count.next = count - 1
                    self.sram.req.next = 0
                    fsm.goto("RELEASE")
            elif fsm.is_in("RELEASE"):
                if not self.sram.ack.value:
                    fsm.goto("IDLE")

    # -- introspection ---------------------------------------------------------------

    @property
    def occupancy(self) -> int:
        """Total elements logically held (SRAM + holding + prefetch registers)."""
        return (self._count.value
                + (1 if self._hold_valid.value else 0)
                + (1 if self._pref_valid.value else 0))

    def snapshot(self) -> list:
        """Logical contents in FIFO order (prefetched element first)."""
        items = []
        if self._pref_valid.value:
            items.append(self._pref.value)
        head = self._head.value
        for i in range(self._count.value):
            items.append(self.sram.read_word((head + i) % self.capacity))
        if self._hold_valid.value:
            items.append(self._hold.value)
        return items
