"""The stack container and its physical bindings.

Table 1 classifies the stack as a sequential container whose input traversal
is forward and whose output traversal is backward: elements pushed in order
``e0, e1, e2`` come back out as ``e2, e1, e0``.  The paper points out that
"stacks can also be implemented over FIFO cores" — in practice they map most
naturally onto LIFO cores or register files, and onto external RAM with a
stack-pointer FSM when capacity matters; all three bindings are provided.
"""

from __future__ import annotations

from ..container import Container, register_binding, register_kind
from ..interfaces import B, F, StreamSinkIface, StreamSourceIface
from ...primitives import AsyncSRAM, SyncLIFO
from ...rtl import FSM, clog2


@register_kind
class Stack(Container):
    """Abstract LIFO stack.

    Interfaces
    ----------
    sink:
        :class:`StreamSinkIface` — output iterators push elements here.
    source:
        :class:`StreamSourceIface` — input iterators pop elements here
        (most recently pushed element first).
    """

    kind = "stack"
    seq_read = F
    seq_write = B

    def __init__(self, name: str, width: int, capacity: int) -> None:
        super().__init__(name, width, capacity)
        self.sink = StreamSinkIface(self, width, name=f"{name}_sink")
        self.source = StreamSourceIface(self, width, name=f"{name}_source")


@register_binding
class StackLIFO(Stack):
    """Stack over an on-chip LIFO core: a pure wrapper."""

    binding = "lifo"
    transparent = True

    def __init__(self, name: str, width: int, capacity: int) -> None:
        super().__init__(name, width, capacity)
        self.lifo = self.child(SyncLIFO(f"{name}_lifo", depth=capacity, width=width))

        @self.comb
        def wrap() -> None:
            self.lifo.din.next = self.sink.data.value
            self.lifo.push.next = self.sink.push.value
            self.sink.ready.next = 0 if self.lifo.full.value else 1
            self.source.data.next = self.lifo.dout.value
            self.source.valid.next = 0 if self.lifo.empty.value else 1
            self.lifo.pop.next = self.source.pop.value

    @property
    def occupancy(self) -> int:
        return self.lifo.occupancy

    def snapshot(self) -> list:
        return self.lifo.contents()


@register_binding
class StackSRAM(Stack):
    """Stack over external static RAM with a stack-pointer FSM.

    Pushes write the held element at the stack pointer and increment it;
    pops prefetch the element below the stack pointer so the consumer sees
    single-cycle reads, exactly like the circular-buffer SRAM binding of the
    queue family.
    """

    binding = "sram"
    external_storage = True

    def __init__(self, name: str, width: int, capacity: int,
                 sram_latency: int = 2) -> None:
        super().__init__(name, width, capacity)
        self.sram = self.child(AsyncSRAM(
            f"{name}_sram", depth=capacity, width=width, latency=sram_latency))

        cnt_width = clog2(capacity + 1)
        # Stack pointer counts elements stored in SRAM (excluding prefetch).
        self._sp = self.state(cnt_width, name=f"{name}_sp")
        self._hold = self.state(width, name=f"{name}_hold")
        self._hold_valid = self.state(1, name=f"{name}_hold_valid")
        # Top-of-stack prefetch register.
        self._top = self.state(width, name=f"{name}_top")
        self._top_valid = self.state(1, name=f"{name}_top_valid")
        self._fsm = FSM(self, ["IDLE", "PUSH", "FETCH", "RELEASE"],
                        name=f"{name}_ctrl")

        @self.comb
        def handshake() -> None:
            # Full guard: accept a push only while the *logical* occupancy
            # (SRAM region + prefetched top + holding register) is below
            # capacity.  Without the occupancy term the stack pointer grows
            # past the SRAM region and wraps, silently overwriting the
            # bottom of the stack — found by the constrained-random
            # verification monitors (occupancy-bound rule).
            occupied = (self._sp.value + self._top_valid.value
                        + self._hold_valid.value)
            self.sink.ready.next = 0 if (self._hold_valid.value
                                         or occupied >= self.capacity) else 1
            self.source.valid.next = self._top_valid.value
            self.source.data.next = self._top.value

        @self.seq
        def control() -> None:
            fsm = self._fsm
            sp = self._sp.value
            hold_valid = self._hold_valid.value
            top_valid = self._top_valid.value

            # Acceptance mirrors the advertised ready (including the full
            # guard): a push is latched only when the handshake offered it.
            occupied = sp + top_valid + hold_valid
            if self.sink.push.value and not hold_valid \
                    and occupied < self.capacity:
                self._hold.next = self.sink.data.value
                self._hold_valid.next = 1
                hold_valid = True

            consumed = False
            if self.source.pop.value and top_valid:
                self._top_valid.next = 0
                consumed = True

            if fsm.is_in("IDLE"):
                # FSM decisions use only committed values: an element accepted
                # into the holding register this very cycle is handled next cycle.
                if self._hold_valid.value:
                    # A push supersedes the prefetched top: the new element
                    # becomes the top of stack.  Spill the current prefetch
                    # (if any) back by keeping it counted in SRAM order.
                    if top_valid and not consumed:
                        # Write the old top back first so ordering is kept.
                        self.sram.addr.next = sp % self.capacity
                        self.sram.wdata.next = self._top.value
                        self.sram.we.next = 1
                        self.sram.req.next = 1
                        self._top_valid.next = 0
                        fsm.goto("PUSH")
                    else:
                        # Promote the held element directly to the top register.
                        self._top.next = self._hold.value
                        self._top_valid.next = 1
                        self._hold_valid.next = 0
                        fsm.stay()
                elif not top_valid and sp > 0 and not consumed:
                    # Prefetch the element at the top of the SRAM region.
                    self.sram.addr.next = (sp - 1) % self.capacity
                    self.sram.we.next = 0
                    self.sram.req.next = 1
                    fsm.goto("FETCH")
            elif fsm.is_in("PUSH"):
                if self.sram.ack.value:
                    self._sp.next = sp + 1
                    # The held element now becomes the visible top of stack.
                    self._top.next = self._hold.value
                    self._top_valid.next = 1
                    self._hold_valid.next = 0
                    self.sram.req.next = 0
                    fsm.goto("RELEASE")
            elif fsm.is_in("FETCH"):
                if self.sram.ack.value:
                    self._top.next = self.sram.rdata.value
                    self._top_valid.next = 1
                    self._sp.next = sp - 1
                    self.sram.req.next = 0
                    fsm.goto("RELEASE")
            elif fsm.is_in("RELEASE"):
                if not self.sram.ack.value:
                    fsm.goto("IDLE")

    @property
    def occupancy(self) -> int:
        return (self._sp.value
                + (1 if self._top_valid.value else 0)
                + (1 if self._hold_valid.value else 0))

    def snapshot(self) -> list:
        """Contents from bottom to top (holding register counts as topmost)."""
        items = [self.sram.read_word(i) for i in range(self._sp.value)]
        if self._top_valid.value:
            items.append(self._top.value)
        if self._hold_valid.value:
            items.append(self._hold.value)
        return items
