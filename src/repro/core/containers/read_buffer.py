"""The read-buffer container and its physical bindings.

A read buffer is the container used "to acquire the video stream": the
environment (video decoder) fills it, and algorithms read it sequentially
forward through an input iterator.  Table 1 classifies it as
sequential-input, forward-only.

Bindings provided (Section 3.4): on-chip FIFO core (``"fifo"``), external
static RAM (``"sram"``, Figure 5) and the special 3-line buffer used by the
blur design (``"linebuffer3"``).
"""

from __future__ import annotations

from ..container import Container, register_binding, register_kind
from ..interfaces import F, NONE, StreamSinkIface, StreamSourceIface, WindowSourceIface
from ...primitives import LineBuffer3, SyncFIFO
from ...rtl import clog2
from .circular_sram import CircularBufferSRAM


@register_kind
class ReadBuffer(Container):
    """Abstract read buffer: filled by the environment, read by algorithms.

    Interfaces
    ----------
    fill:
        :class:`StreamSinkIface` — the environment (e.g. the video decoder
        front-end) pushes elements here.
    source:
        :class:`StreamSourceIface` — iterators read elements here.
    """

    kind = "read_buffer"
    seq_read = F
    seq_write = NONE

    def __init__(self, name: str, width: int, capacity: int) -> None:
        super().__init__(name, width, capacity)
        self.fill = StreamSinkIface(self, width, name=f"{name}_fill")
        self.source = StreamSourceIface(self, width, name=f"{name}_source")


@register_binding
class ReadBufferFIFO(ReadBuffer):
    """Read buffer over an on-chip FIFO core (Figure 4).

    The container architecture "is simply a wrapper of the FIFO core and
    hardly includes any logic": all glue is combinational renaming, so the
    container itself is marked transparent and only the FIFO contributes
    resources.
    """

    binding = "fifo"
    transparent = True

    def __init__(self, name: str, width: int, capacity: int) -> None:
        super().__init__(name, width, capacity)
        self.fifo = self.child(SyncFIFO(f"{name}_fifo", depth=capacity, width=width))

        @self.comb
        def wrap() -> None:
            # Fill side: environment pushes straight into the FIFO.
            self.fifo.din.next = self.fill.data.value
            self.fifo.push.next = self.fill.push.value
            self.fill.ready.next = 0 if self.fifo.full.value else 1
            # Source side: first-word-fall-through FIFO output.
            self.source.data.next = self.fifo.dout.value
            self.source.valid.next = 0 if self.fifo.empty.value else 1
            self.fifo.pop.next = self.source.pop.value

    @property
    def occupancy(self) -> int:
        return self.fifo.occupancy

    def snapshot(self) -> list:
        return self.fifo.contents()


@register_binding
class ReadBufferSRAM(ReadBuffer):
    """Read buffer over external static RAM (Figure 5).

    The element stream lives in a circular buffer held in off-chip SRAM, so
    the binding uses no block RAM ("the SRAM implementation is much smaller,
    but performance will depend on memory access times").
    """

    binding = "sram"
    external_storage = True
    transparent = True

    def __init__(self, name: str, width: int, capacity: int,
                 sram_latency: int = 2) -> None:
        super().__init__(name, width, capacity)
        self.buffer = self.child(CircularBufferSRAM(
            f"{name}_cbuf", capacity=capacity, width=width,
            sram_latency=sram_latency))

        @self.comb
        def wrap() -> None:
            # Fill side forwards to the circular buffer's fill interface.
            self.buffer.fill.data.next = self.fill.data.value
            self.buffer.fill.push.next = self.fill.push.value
            self.fill.ready.next = self.buffer.fill.ready.value
            # Source side forwards the prefetched head element.
            self.source.data.next = self.buffer.drain.data.value
            self.source.valid.next = self.buffer.drain.valid.value
            self.buffer.drain.pop.next = self.source.pop.value

    @property
    def occupancy(self) -> int:
        return self.buffer.occupancy

    def snapshot(self) -> list:
        return self.buffer.snapshot()


@register_binding
class ReadBufferLine3(ReadBuffer):
    """Read buffer over a 3-line buffer, delivering vertical pixel columns.

    Used by the blur design: "the rbuffer container, instead of a simple FIFO
    has been mapped over a special one ... structured to provide 3 pixels in
    a column for each access".  Besides the ordinary ``source`` interface
    (which carries the centre pixel), it exposes ``window`` with the full
    column so a window iterator can feed a convolution algorithm.
    """

    binding = "linebuffer3"

    def __init__(self, name: str, width: int, line_width: int) -> None:
        super().__init__(name, width, capacity=2 * line_width)
        self.line_width = line_width
        self.linebuf = self.child(LineBuffer3(
            f"{name}_lb3", line_width=line_width, width=width))
        self.window = WindowSourceIface(
            self, width, x_width=clog2(line_width), name=f"{name}_window")

        # One-element holding register decoupling the environment push rate
        # from the algorithm pop rate.
        self._hold = self.state(width, name=f"{name}_hold")
        self._hold_valid = self.state(1, name=f"{name}_hold_valid")

        @self.comb
        def wrap() -> None:
            hold_valid = self._hold_valid.value
            warmed_up = self.linebuf.window_valid.value

            # The held pixel is offered to the line buffer; during warm-up
            # (first two lines) it is consumed automatically, afterwards only
            # when the algorithm pops a column.
            self.linebuf.din.next = self._hold.value
            advance = hold_valid and (not warmed_up
                                      or self.window.pop.value
                                      or self.source.pop.value)
            self.linebuf.push.next = 1 if advance else 0

            # Pass-through acceptance: a new pixel can be taken in the same
            # cycle the held one advances, sustaining one pixel per clock
            # ("ideally a new filtered pixel can be generated at each clock
            # cycle").
            self.fill.ready.next = 1 if (not hold_valid or advance) else 0

            column_ready = 1 if (hold_valid and warmed_up) else 0
            self.window.valid.next = column_ready
            self.window.col_top.next = self.linebuf.col_top.value
            self.window.col_mid.next = self.linebuf.col_mid.value
            self.window.col_bot.next = self.linebuf.col_bot.value
            self.window.x.next = self.linebuf.x.value

            # The plain source interface exposes the centre pixel of the
            # column, so ordinary forward iterators still work over this
            # binding.
            self.source.valid.next = column_ready
            self.source.data.next = self.linebuf.col_mid.value

        @self.seq
        def hold_control() -> None:
            hold_valid = self._hold_valid.value
            warmed_up = self.linebuf.window_valid.value
            advance = hold_valid and (not warmed_up
                                      or self.window.pop.value
                                      or self.source.pop.value)
            accepted = self.fill.push.value and (not hold_valid or advance)
            if accepted:
                self._hold.next = self.fill.data.value
                self._hold_valid.next = 1
            elif advance:
                self._hold_valid.next = 0

    @property
    def occupancy(self) -> int:
        return 1 if self._hold_valid.value else 0

    def snapshot(self) -> list:
        return [self._hold.value] if self._hold_valid.value else []
