"""The write-buffer container and its physical bindings.

A write buffer is the container used "to accommodate the output video
stream": algorithms write it sequentially forward through an output iterator,
and the environment (VGA coder) drains it.  Table 1 classifies it as
sequential-output, forward-only.
"""

from __future__ import annotations

from ..container import Container, register_binding, register_kind
from ..interfaces import F, NONE, StreamSinkIface, StreamSourceIface
from ...primitives import SyncFIFO
from .circular_sram import CircularBufferSRAM


@register_kind
class WriteBuffer(Container):
    """Abstract write buffer: written by algorithms, drained by the environment.

    Interfaces
    ----------
    sink:
        :class:`StreamSinkIface` — iterators push elements here.
    drain:
        :class:`StreamSourceIface` — the environment (e.g. the VGA coder
        back-end) pulls elements from here.
    """

    kind = "write_buffer"
    seq_read = NONE
    seq_write = F

    def __init__(self, name: str, width: int, capacity: int) -> None:
        super().__init__(name, width, capacity)
        self.sink = StreamSinkIface(self, width, name=f"{name}_sink")
        self.drain = StreamSourceIface(self, width, name=f"{name}_drain")


@register_binding
class WriteBufferFIFO(WriteBuffer):
    """Write buffer over an on-chip FIFO core: a pure wrapper around the core."""

    binding = "fifo"
    transparent = True

    def __init__(self, name: str, width: int, capacity: int) -> None:
        super().__init__(name, width, capacity)
        self.fifo = self.child(SyncFIFO(f"{name}_fifo", depth=capacity, width=width))

        @self.comb
        def wrap() -> None:
            # Sink side: algorithm pushes into the FIFO.
            self.fifo.din.next = self.sink.data.value
            self.fifo.push.next = self.sink.push.value
            self.sink.ready.next = 0 if self.fifo.full.value else 1
            # Drain side: environment pops from the FIFO.
            self.drain.data.next = self.fifo.dout.value
            self.drain.valid.next = 0 if self.fifo.empty.value else 1
            self.fifo.pop.next = self.drain.pop.value

    @property
    def occupancy(self) -> int:
        return self.fifo.occupancy

    def snapshot(self) -> list:
        return self.fifo.contents()


@register_binding
class WriteBufferSRAM(WriteBuffer):
    """Write buffer over external static RAM (circular buffer + pointer FSM)."""

    binding = "sram"
    external_storage = True
    transparent = True

    def __init__(self, name: str, width: int, capacity: int,
                 sram_latency: int = 2) -> None:
        super().__init__(name, width, capacity)
        self.buffer = self.child(CircularBufferSRAM(
            f"{name}_cbuf", capacity=capacity, width=width,
            sram_latency=sram_latency))

        @self.comb
        def wrap() -> None:
            # Sink side forwards to the circular buffer's fill interface.
            self.buffer.fill.data.next = self.sink.data.value
            self.buffer.fill.push.next = self.sink.push.value
            self.sink.ready.next = self.buffer.fill.ready.value
            # Drain side forwards the prefetched head element.
            self.drain.data.next = self.buffer.drain.data.value
            self.drain.valid.next = self.buffer.drain.valid.value
            self.buffer.drain.pop.next = self.drain.pop.value

    @property
    def occupancy(self) -> int:
        return self.buffer.occupancy

    def snapshot(self) -> list:
        return self.buffer.snapshot()
