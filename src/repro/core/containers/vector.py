"""The vector container and its physical bindings.

The vector is the only Table-1 container with both random and sequential
access, in both directions: random iterators use its ``index`` operation,
while forward/backward/bidirectional iterators traverse it with an address
register.  Bindings are provided over on-chip block RAM, external SRAM and a
register file; they differ only in access latency and in where the storage
bits are counted by the synthesis estimator.
"""

from __future__ import annotations

from typing import List, Optional

from ..container import Container, register_binding, register_kind
from ..interfaces import FB, RandomIface
from ...primitives import AsyncSRAM, RegisterFile, SinglePortRAM
from ...rtl import FSM, clog2


@register_kind
class Vector(Container):
    """Abstract fixed-capacity vector with random read/write access.

    Interface
    ---------
    port:
        :class:`RandomIface` — iterators start an access by driving ``en``
        (with ``we``, ``addr`` and ``wdata``) and hold it until ``done``
        pulses; ``rdata`` is valid in the ``done`` cycle.
    """

    kind = "vector"
    random_read = True
    random_write = True
    seq_read = FB
    seq_write = FB

    def __init__(self, name: str, width: int, capacity: int) -> None:
        super().__init__(name, width, capacity)
        self.addr_width = clog2(capacity)
        self.port = RandomIface(self, self.addr_width, width, name=f"{name}_port")

    # Concrete bindings implement backdoor access for test benches.
    def read_word(self, addr: int) -> int:
        raise NotImplementedError

    def write_word(self, addr: int, value: int) -> None:
        raise NotImplementedError

    def load(self, values: List[int], offset: int = 0) -> None:
        """Preload elements (backdoor, zero simulation time)."""
        for i, value in enumerate(values):
            self.write_word(offset + i, value)

    def snapshot(self) -> list:
        return [self.read_word(i) for i in range(self.capacity)]

    @property
    def occupancy(self) -> int:
        # A vector always holds `capacity` elements; occupancy is structural.
        return self.capacity


@register_binding
class VectorBRAM(Vector):
    """Vector over on-chip block RAM (1-cycle registered read)."""

    binding = "bram"

    def __init__(self, name: str, width: int, capacity: int,
                 init: Optional[List[int]] = None) -> None:
        super().__init__(name, width, capacity)
        self.ram = self.child(SinglePortRAM(
            f"{name}_ram", depth=capacity, width=width, init=init))
        self._busy = self.state(1, name=f"{name}_busy")

        @self.comb
        def wrap() -> None:
            busy = self._busy.value
            # Start a RAM access only when idle; the registered read data is
            # presented (and `done` pulsed) in the following cycle.
            start = self.port.en.value and not busy
            self.ram.en.next = 1 if start else 0
            self.ram.we.next = self.port.we.value if start else 0
            self.ram.addr.next = self.port.addr.value
            self.ram.din.next = self.port.wdata.value
            self.port.rdata.next = self.ram.dout.value
            self.port.done.next = busy
            self.port.idle.next = 0 if busy else 1

        @self.seq
        def track() -> None:
            if self._busy.value:
                self._busy.next = 0
            elif self.port.en.value:
                self._busy.next = 1

    def read_word(self, addr: int) -> int:
        return self.ram.read_word(addr)

    def write_word(self, addr: int, value: int) -> None:
        self.ram.write_word(addr, value)


@register_binding
class VectorSRAM(Vector):
    """Vector over external static RAM (req/ack handshake, multi-cycle)."""

    binding = "sram"
    external_storage = True

    def __init__(self, name: str, width: int, capacity: int,
                 sram_latency: int = 2, init: Optional[List[int]] = None) -> None:
        super().__init__(name, width, capacity)
        self.sram = self.child(AsyncSRAM(
            f"{name}_sram", depth=capacity, width=width, latency=sram_latency,
            init=init))
        self._data = self.state(width, name=f"{name}_data")
        self._done = self.state(1, name=f"{name}_done")
        self._fsm = FSM(self, ["IDLE", "WAIT", "RELEASE"], name=f"{name}_ctrl")

        @self.comb
        def wrap() -> None:
            self.port.rdata.next = self._data.value
            self.port.done.next = self._done.value
            self.port.idle.next = 1 if self._fsm.is_in("IDLE") else 0

        @self.seq
        def control() -> None:
            fsm = self._fsm
            self._done.next = 0
            if fsm.is_in("IDLE"):
                if self.port.en.value:
                    self.sram.addr.next = self.port.addr.value
                    self.sram.wdata.next = self.port.wdata.value
                    self.sram.we.next = self.port.we.value
                    self.sram.req.next = 1
                    fsm.goto("WAIT")
            elif fsm.is_in("WAIT"):
                if self.sram.ack.value:
                    self._data.next = self.sram.rdata.value
                    self._done.next = 1
                    self.sram.req.next = 0
                    fsm.goto("RELEASE")
            elif fsm.is_in("RELEASE"):
                if not self.sram.ack.value:
                    fsm.goto("IDLE")

    def read_word(self, addr: int) -> int:
        return self.sram.read_word(addr)

    def write_word(self, addr: int, value: int) -> None:
        self.sram.write_word(addr, value)


@register_binding
class VectorRegisters(Vector):
    """Vector over a register file (combinational read, single-cycle ops).

    Suitable only for small capacities; the estimator charges one flip-flop
    per storage bit, which is exactly the area trade-off the design-space
    characterisation of Section 3.4 is meant to expose.
    """

    binding = "registers"
    transparent = True

    def __init__(self, name: str, width: int, capacity: int) -> None:
        super().__init__(name, width, capacity)
        self.regs = self.child(RegisterFile(
            f"{name}_regs", depth=capacity, width=width))

        @self.comb
        def wrap() -> None:
            self.regs.raddr.next = self.port.addr.value
            self.regs.waddr.next = self.port.addr.value
            self.regs.wdata.next = self.port.wdata.value
            self.regs.wen.next = 1 if (self.port.en.value and self.port.we.value) else 0
            self.port.rdata.next = self.regs.rdata.value
            # Reads complete combinationally, writes at the next clock edge;
            # either way the access is accepted immediately.
            self.port.done.next = self.port.en.value
            self.port.idle.next = 1

    def read_word(self, addr: int) -> int:
        return self.regs.read_word(addr)

    def write_word(self, addr: int, value: int) -> None:
        self.regs.write_word(addr, value)
