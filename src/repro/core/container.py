"""Abstract containers and the container/binding registry.

Containers are the Aggregate role of the Iterator pattern (Figure 2): they
hold elements and hide the physical storage behind a small functional
interface that only iterators (and the code generator) ever touch.

Every abstract container *kind* (``read_buffer``, ``queue``, ``stack``,
``vector``, ``assoc_array``, ``write_buffer``) declares its Table-1
classification as class attributes.  Concrete subclasses add a *binding* — the
physical device the container is implemented over (on-chip FIFO/LIFO, block
RAM, external SRAM, register file, 3-line buffer) — and are registered in a
global registry so designs can select implementations late, as Section 3.4
prescribes ("metaprogramming defers until the last moment the selection of
the proper implementation of a container").
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional, Tuple, Type

from ..rtl import Component
from .interfaces import NONE, Traversal, format_traversals


class ContainerError(Exception):
    """Raised for container registry/instantiation problems."""


class Container(Component):
    """Base class for all containers (the Aggregate of the Iterator pattern).

    Class attributes
    ----------------
    kind:
        The abstract container kind (row of Table 1).
    binding:
        The physical implementation target (``"fifo"``, ``"sram"``, ...);
        ``None`` on abstract kinds.
    random_read / random_write:
        Whether random-access input/output is supported (Table 1, "Random").
    seq_read / seq_write:
        Supported traversal directions for sequential input/output iterators
        (Table 1, "Sequential").
    external_storage:
        True when the binding stores elements off-chip (external SRAM), in
        which case the storage does not count against on-chip block RAM.
    """

    kind: str = "abstract"
    binding: Optional[str] = None
    random_read: bool = False
    random_write: bool = False
    seq_read: FrozenSet[Traversal] = NONE
    seq_write: FrozenSet[Traversal] = NONE
    external_storage: bool = False

    def __init__(self, name: str, width: int, capacity: int) -> None:
        super().__init__(name)
        if width < 1:
            raise ContainerError(f"element width must be >= 1, got {width}")
        if capacity < 1:
            raise ContainerError(f"capacity must be >= 1, got {capacity}")
        self.width = width
        self.capacity = capacity

    # -- classification helpers (Table 1) ------------------------------------------

    @classmethod
    def classification_row(cls) -> Dict[str, str]:
        """One row of Table 1 for this container kind."""
        return {
            "container": cls.kind.replace("_", " "),
            "random_input": "yes" if cls.random_read else "-",
            "random_output": "yes" if cls.random_write else "-",
            "seq_input": format_traversals(cls.seq_read),
            "seq_output": format_traversals(cls.seq_write),
        }

    @classmethod
    def supports_traversal(cls, traversal: Traversal, for_write: bool = False) -> bool:
        """Whether a sequential iterator with ``traversal`` can target this kind."""
        allowed = cls.seq_write if for_write else cls.seq_read
        return traversal in allowed

    # -- behavioural introspection (overridden by concrete containers) ----------------

    def snapshot(self) -> List[int]:
        """Return the logical contents for test benches (order is kind-specific)."""
        raise NotImplementedError

    @property
    def occupancy(self) -> int:
        """Number of elements currently held."""
        raise NotImplementedError


# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------

#: kind -> abstract container class
CONTAINER_KINDS: Dict[str, Type[Container]] = {}

#: (kind, binding) -> concrete container class
CONTAINER_BINDINGS: Dict[Tuple[str, str], Type[Container]] = {}


def register_kind(cls: Type[Container]) -> Type[Container]:
    """Class decorator registering an abstract container kind."""
    if cls.kind in CONTAINER_KINDS:
        raise ContainerError(f"container kind {cls.kind!r} already registered")
    CONTAINER_KINDS[cls.kind] = cls
    return cls


def register_binding(cls: Type[Container]) -> Type[Container]:
    """Class decorator registering a concrete (kind, binding) implementation."""
    if cls.binding is None:
        raise ContainerError(
            f"{cls.__name__} must define a 'binding' before registration")
    key = (cls.kind, cls.binding)
    if key in CONTAINER_BINDINGS:
        raise ContainerError(f"binding {key!r} already registered")
    CONTAINER_BINDINGS[key] = cls
    return cls


def container_kinds() -> List[str]:
    """All registered abstract kinds, in registration (Table 1) order."""
    return list(CONTAINER_KINDS)


def bindings_for(kind: str) -> List[str]:
    """All registered bindings for ``kind``."""
    return [binding for (k, binding) in CONTAINER_BINDINGS if k == kind]


def lookup_binding(kind: str, binding: str) -> Type[Container]:
    """Return the concrete class implementing ``kind`` over ``binding``."""
    try:
        return CONTAINER_BINDINGS[(kind, binding)]
    except KeyError:
        known = bindings_for(kind)
        raise ContainerError(
            f"no binding {binding!r} for container kind {kind!r}; "
            f"known bindings: {known}") from None


def make_container(kind: str, binding: str, name: str, **params) -> Container:
    """Factory: instantiate container ``kind`` bound to ``binding``.

    This is the Python equivalent of the paper's metaprogramming step that
    "defers until the last moment the selection of the proper implementation
    of a container, depending on the requirements of the application".
    """
    cls = lookup_binding(kind, binding)
    return cls(name=name, **params)


def classification_table() -> List[Dict[str, str]]:
    """Reproduce Table 1 of the paper from the registered abstract kinds."""
    return [cls.classification_row() for cls in CONTAINER_KINDS.values()]
