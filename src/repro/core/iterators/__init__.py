"""Concrete iterators of the basic component library (Section 3.2.2).

Importing this package registers every iterator in the registry of
:mod:`repro.core.iterator`, so :func:`repro.core.iterator.make_iterator` can
resolve the right concrete iterator for a container kind and traversal role.
"""

from .stream import (
    QueueForwardInputIterator,
    QueueForwardOutputIterator,
    ReadBufferForwardIterator,
    StackBackwardOutputIterator,
    StackForwardInputIterator,
    WriteBufferForwardIterator,
)
from .window import Line3WindowIterator
from .random_access import (
    VectorBackwardInputIterator,
    VectorBidirectionalIterator,
    VectorForwardInputIterator,
    VectorForwardOutputIterator,
    VectorRandomIterator,
)

__all__ = [
    "ReadBufferForwardIterator",
    "WriteBufferForwardIterator",
    "QueueForwardInputIterator",
    "QueueForwardOutputIterator",
    "StackForwardInputIterator",
    "StackBackwardOutputIterator",
    "Line3WindowIterator",
    "VectorRandomIterator",
    "VectorBidirectionalIterator",
    "VectorForwardInputIterator",
    "VectorForwardOutputIterator",
    "VectorBackwardInputIterator",
]
