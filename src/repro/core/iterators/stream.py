"""Sequential (stream) iterators over buffer, queue and stack containers.

These are the iterators of the revisited example (Section 3.3): "in fact
they are no more than a wrapper that renames some signals and provides the
common interface already mentioned".  Accordingly every class here is purely
combinational wiring between the canonical :class:`IteratorIface` and the
container's stream interface, is marked ``transparent`` and is charged zero
resources by the synthesis estimator — the paper's "iterators ... will be
dissolved at the time of synthesizing the design".

Protocol recap (single-cycle, Mealy style):

* input side: ``can_read`` mirrors the container's ``valid``; asserting
  ``inc`` (optionally together with ``read``) while ``can_read`` is high
  consumes the element whose value is combinationally present on ``rdata``.
* output side: ``can_write`` mirrors the container's ``ready``; asserting
  ``write`` and ``inc`` together while ``can_write`` is high stores
  ``wdata`` and advances.
"""

from __future__ import annotations

from ..container import Container
from ..interfaces import IteratorIface, StreamSinkIface, StreamSourceIface
from ..iterator import HardwareIterator, register_iterator


class _StreamInputIteratorBase(HardwareIterator):
    """Shared implementation of forward input iterators over stream sources."""

    traversal = "forward"
    readable = True
    writable = False
    transparent = True

    def __init__(self, name: str, container: Container) -> None:
        super().__init__(name, container)
        source = self._source(container)
        self.iface = IteratorIface(self, container.width, name=f"{name}_if")

        @self.comb
        def wrap() -> None:
            self.iface.can_read.next = source.valid.value
            self.iface.can_write.next = 0
            self.iface.rdata.next = source.data.value
            source.pop.next = self.iface.inc.value
            self.iface.done.next = (
                1 if (self.iface.inc.value and source.valid.value) else 0)

    def _source(self, container: Container) -> StreamSourceIface:
        return container.source  # type: ignore[attr-defined]


class _StreamOutputIteratorBase(HardwareIterator):
    """Shared implementation of forward output iterators over stream sinks."""

    traversal = "forward"
    readable = False
    writable = True
    transparent = True

    #: Which iterator strobe triggers the advance: ``inc`` for forward
    #: traversal, ``dec`` for the backward stack output iterator.
    advance_op = "inc"

    def __init__(self, name: str, container: Container) -> None:
        super().__init__(name, container)
        sink = self._sink(container)
        self.iface = IteratorIface(self, container.width, name=f"{name}_if")

        @self.comb
        def wrap() -> None:
            advance = getattr(self.iface, self.advance_op).value
            self.iface.can_write.next = sink.ready.value
            self.iface.can_read.next = 0
            sink.data.next = self.iface.wdata.value
            push = 1 if (self.iface.write.value and advance) else 0
            sink.push.next = push
            self.iface.done.next = 1 if (push and sink.ready.value) else 0

    def _sink(self, container: Container) -> StreamSinkIface:
        return container.sink  # type: ignore[attr-defined]


@register_iterator
class ReadBufferForwardIterator(_StreamInputIteratorBase):
    """Forward input iterator over a read buffer (``rbuffer_it`` in Figure 3)."""

    container_kind = "read_buffer"


@register_iterator
class WriteBufferForwardIterator(_StreamOutputIteratorBase):
    """Forward output iterator over a write buffer (``wbuffer_it`` in Figure 3)."""

    container_kind = "write_buffer"


@register_iterator
class QueueForwardInputIterator(_StreamInputIteratorBase):
    """Forward input (consumer) iterator over a queue."""

    container_kind = "queue"


@register_iterator
class QueueForwardOutputIterator(_StreamOutputIteratorBase):
    """Forward output (producer) iterator over a queue."""

    container_kind = "queue"


@register_iterator
class StackForwardInputIterator(_StreamInputIteratorBase):
    """Forward input iterator over a stack: pops elements most-recent first."""

    container_kind = "stack"


@register_iterator
class StackBackwardOutputIterator(_StreamOutputIteratorBase):
    """Backward output iterator over a stack.

    Table 1 classifies the stack's sequential output traversal as backward:
    elements written through this iterator come back out of the container in
    reverse order.  The advance strobe is therefore ``dec``.
    """

    container_kind = "stack"
    traversal = "backward"
    advance_op = "dec"
