"""Window iterator over the 3-line-buffer read buffer.

The blur example needs "specialized iterators" (Section 5): this one exposes,
for every forward step, the vertical column of three pixels delivered by the
:class:`~repro.core.containers.read_buffer.ReadBufferLine3` binding.  It is
still a pure renaming wrapper — all the buffering lives in the container — so
it remains transparent to the synthesis estimator.
"""

from __future__ import annotations

from ..container import Container
from ..interfaces import WindowIteratorIface
from ..iterator import HardwareIterator, IteratorError, register_iterator


@register_iterator
class Line3WindowIterator(HardwareIterator):
    """Forward input iterator delivering 3-pixel vertical columns.

    In addition to the canonical interface, ``iface.rdata_top``,
    ``iface.rdata_mid`` and ``iface.rdata_bot`` carry the column; ``rdata``
    aliases the centre pixel so ordinary single-pixel algorithms also work.
    """

    container_kind = "read_buffer"
    traversal = "window"
    readable = True
    writable = False
    transparent = True

    def __init__(self, name: str, container: Container) -> None:
        super().__init__(name, container)
        window = getattr(container, "window", None)
        if window is None:
            raise IteratorError(
                f"container {container.name!r} has no window interface; "
                f"a window iterator requires the 'linebuffer3' binding")
        self.window = window
        self.iface = WindowIteratorIface(
            self, container.width, pos_width=window.x_width, name=f"{name}_if")

        @self.comb
        def wrap() -> None:
            self.iface.can_read.next = window.valid.value
            self.iface.can_write.next = 0
            self.iface.rdata_top.next = window.col_top.value
            self.iface.rdata_mid.next = window.col_mid.value
            self.iface.rdata_bot.next = window.col_bot.value
            self.iface.rdata.next = window.col_mid.value
            self.iface.pos.next = window.x.value
            window.pop.next = self.iface.inc.value
            self.iface.done.next = (
                1 if (self.iface.inc.value and window.valid.value) else 0)
