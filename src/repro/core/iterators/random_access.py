"""Random, bidirectional, forward and backward iterators over the vector container.

Unlike the stream iterators, these keep real state: "all iterators keep track
of their current position in the traversal of the container" — here that is
an explicit position register, exactly the "memory address register pointing
to the appropriate position in RAM" that the motivating example of Section 2
had to scatter through its ad-hoc FSM.  Because the position register and the
access control FSM are genuine logic, these iterators are *not* transparent.

Operation protocol (multi-cycle, done-based):

* ``index`` (random iterators only): load ``pos`` into the position register;
  completes with a ``done`` pulse on the next cycle.
* ``inc`` / ``dec`` alone: move the position register; ``done`` on the next
  cycle.
* ``read`` / ``write`` (optionally combined with ``inc``/``dec``): perform a
  container access at the current position, then advance; ``done`` pulses
  when the access has completed and ``rdata`` holds the element.
* ``can_read`` / ``can_write`` are high only when a new operation can be
  accepted.
"""

from __future__ import annotations

from ..container import Container
from ..interfaces import IteratorIface, IteratorOp
from ..iterator import HardwareIterator, register_iterator
from ...rtl import FSM


class _VectorIteratorBase(HardwareIterator):
    """Shared position-register + access-FSM implementation."""

    container_kind = "vector"
    transparent = False

    def __init__(self, name: str, container: Container, start: int = 0) -> None:
        super().__init__(name, container)
        width = container.width
        addr_width = container.addr_width
        self.capacity = container.capacity
        port = container.port
        self.iface = IteratorIface(self, width, pos_width=addr_width,
                                   name=f"{name}_if")

        self._pos = self.state(addr_width, init=start % container.capacity,
                               name=f"{name}_pos")
        self._data = self.state(width, name=f"{name}_data")
        self._done = self.state(1, name=f"{name}_done")
        self._we = self.state(1, name=f"{name}_we")
        self._wdata = self.state(width, name=f"{name}_wdata")
        self._post_inc = self.state(1, name=f"{name}_post_inc")
        self._post_dec = self.state(1, name=f"{name}_post_dec")
        self._fsm = FSM(self, ["IDLE", "ACCESS"], name=f"{name}_ctrl")

        supports = type(self).supported_ops()
        allow_inc = IteratorOp.INC in supports
        allow_dec = IteratorOp.DEC in supports
        allow_read = IteratorOp.READ in supports
        allow_write = IteratorOp.WRITE in supports
        allow_index = IteratorOp.INDEX in supports

        @self.comb
        def wrap() -> None:
            idle = self._fsm.is_in("IDLE")
            accepting = (idle and port.idle.value and not self._done.value)
            self.iface.can_read.next = 1 if (accepting and allow_read) else 0
            self.iface.can_write.next = 1 if (accepting and allow_write) else 0
            self.iface.rdata.next = self._data.value
            self.iface.done.next = self._done.value
            in_access = self._fsm.is_in("ACCESS")
            port.en.next = 1 if in_access else 0
            port.we.next = self._we.value
            port.addr.next = self._pos.value
            port.wdata.next = self._wdata.value

        @self.seq
        def control() -> None:
            fsm = self._fsm
            self._done.next = 0
            pos = self._pos.value
            if fsm.is_in("IDLE"):
                if self._done.value:
                    # Give the algorithm one cycle to retire its strobes.
                    return
                if allow_index and self.iface.index.value:
                    self._pos.next = self.iface.pos.value % self.capacity
                    self._done.next = 1
                elif ((allow_read and self.iface.read.value)
                      or (allow_write and self.iface.write.value)):
                    if port.idle.value:
                        do_write = allow_write and self.iface.write.value
                        self._we.next = 1 if do_write else 0
                        self._wdata.next = self.iface.wdata.value
                        self._post_inc.next = (
                            1 if (allow_inc and self.iface.inc.value) else 0)
                        self._post_dec.next = (
                            1 if (allow_dec and self.iface.dec.value) else 0)
                        fsm.goto("ACCESS")
                elif allow_inc and self.iface.inc.value:
                    self._pos.next = (pos + 1) % self.capacity
                    self._done.next = 1
                elif allow_dec and self.iface.dec.value:
                    self._pos.next = (pos - 1) % self.capacity
                    self._done.next = 1
            elif fsm.is_in("ACCESS"):
                if port.done.value:
                    self._data.next = port.rdata.value
                    self._done.next = 1
                    if self._post_inc.value:
                        self._pos.next = (pos + 1) % self.capacity
                    elif self._post_dec.value:
                        self._pos.next = (pos - 1) % self.capacity
                    fsm.goto("IDLE")

    # -- introspection ----------------------------------------------------------------

    @property
    def position(self) -> int:
        """The committed value of the position register."""
        return self._pos.value


@register_iterator
class VectorRandomIterator(_VectorIteratorBase):
    """Random iterator: full Table-2 operation set (inc, dec, read, write, index)."""

    traversal = "random"
    readable = True
    writable = True


@register_iterator
class VectorBidirectionalIterator(_VectorIteratorBase):
    """Bidirectional iterator: inc, dec, read and write but no index operation."""

    traversal = "bidirectional"
    readable = True
    writable = True


@register_iterator
class VectorForwardInputIterator(_VectorIteratorBase):
    """Forward read-only traversal of a vector, starting at element 0."""

    traversal = "forward"
    readable = True
    writable = False


@register_iterator
class VectorForwardOutputIterator(_VectorIteratorBase):
    """Forward write-only traversal of a vector, starting at element 0."""

    traversal = "forward"
    readable = False
    writable = True


@register_iterator
class VectorBackwardInputIterator(_VectorIteratorBase):
    """Backward read-only traversal of a vector.

    By default the position register starts at the last element so that a
    sequence of ``read``/``dec`` operations walks the vector back to front.
    """

    traversal = "backward"
    readable = True
    writable = False

    def __init__(self, name: str, container: Container, start: int = -1) -> None:
        if start < 0:
            start = container.capacity - 1
        super().__init__(name, container, start=start)
