"""Functional interfaces of the pattern library.

The paper separates, for every generated VHDL entity, a *functional
interface* (the operations and parameters of the abstract model: ``read``,
``inc``, ``empty`` ...) from an *implementation interface* (the ports that
talk to the physical device: ``p_addr``, ``p_data``, ``req`` ...).

This module defines the functional interfaces as :class:`SignalBundle`
subclasses, plus the classification vocabulary used by Tables 1 and 2 of the
paper (access kinds, traversal directions and iterator operations).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import FrozenSet

from ..rtl import Component, SignalBundle


class Access(enum.Enum):
    """How a container's elements are addressed."""

    RANDOM = "random"
    SEQUENTIAL = "sequential"


class Traversal(enum.Enum):
    """Direction of a sequential traversal."""

    FORWARD = "F"
    BACKWARD = "B"


#: Shorthand traversal sets used in container classification (Table 1).
F = frozenset({Traversal.FORWARD})
B = frozenset({Traversal.BACKWARD})
FB = frozenset({Traversal.FORWARD, Traversal.BACKWARD})
NONE: FrozenSet[Traversal] = frozenset()


class IteratorOp(enum.Enum):
    """The iterator operation set of Table 2."""

    INC = "inc"
    DEC = "dec"
    READ = "read"
    WRITE = "write"
    INDEX = "index"


@dataclass(frozen=True)
class OpDescriptor:
    """Static description of an iterator operation (one row of Table 2)."""

    op: IteratorOp
    meaning: str
    applicability: str


#: The rows of Table 2, verbatim.
ITERATOR_OPERATIONS = (
    OpDescriptor(IteratorOp.INC, "move forward", "F / F, B"),
    OpDescriptor(IteratorOp.DEC, "move backwards", "B / F, B"),
    OpDescriptor(IteratorOp.READ, "get the element", "random / F, B"),
    OpDescriptor(IteratorOp.WRITE, "put the element", "random / F, B"),
    OpDescriptor(IteratorOp.INDEX, "set the current position", "random"),
)


def format_traversals(traversals: FrozenSet[Traversal]) -> str:
    """Render a traversal set the way Table 1 prints it ('F', 'B', 'F, B' or '-')."""
    if not traversals:
        return "-"
    ordered = [t.value for t in (Traversal.FORWARD, Traversal.BACKWARD)
               if t in traversals]
    return ", ".join(ordered)


# ---------------------------------------------------------------------------
# Functional interfaces (signal bundles)
# ---------------------------------------------------------------------------


class StreamSourceIface(SignalBundle):
    """Sequential read-side interface of a container (read buffer, queue...).

    ``data``/``valid`` are driven by the container; ``pop`` is driven by the
    consumer (an iterator).  A transfer happens in any cycle where ``valid``
    and ``pop`` are both high.
    """

    def __init__(self, owner: Component, width: int, name: str = "src") -> None:
        super().__init__(
            name,
            data=owner.signal(width, name=f"{name}_data"),
            valid=owner.signal(1, name=f"{name}_valid"),
            pop=owner.signal(1, name=f"{name}_pop"),
        )
        self.width = width


class StreamSinkIface(SignalBundle):
    """Sequential write-side interface of a container (write buffer, queue...).

    ``ready`` is driven by the container; ``data`` and ``push`` by the
    producer.  A transfer happens when ``ready`` and ``push`` are both high.
    """

    def __init__(self, owner: Component, width: int, name: str = "snk") -> None:
        super().__init__(
            name,
            data=owner.signal(width, name=f"{name}_data"),
            ready=owner.signal(1, name=f"{name}_ready"),
            push=owner.signal(1, name=f"{name}_push"),
        )
        self.width = width


class WindowSourceIface(SignalBundle):
    """Column-window read interface of the 3-line-buffer read buffer.

    Each accepted ``pop`` consumes one input pixel and presents the vertical
    column of three pixels at that horizontal position.
    """

    def __init__(self, owner: Component, width: int, x_width: int,
                 name: str = "win") -> None:
        super().__init__(
            name,
            col_top=owner.signal(width, name=f"{name}_col_top"),
            col_mid=owner.signal(width, name=f"{name}_col_mid"),
            col_bot=owner.signal(width, name=f"{name}_col_bot"),
            valid=owner.signal(1, name=f"{name}_valid"),
            pop=owner.signal(1, name=f"{name}_pop"),
            x=owner.signal(x_width, name=f"{name}_x"),
        )
        self.width = width
        self.x_width = x_width


class RandomIface(SignalBundle):
    """Random-access interface of a container (vector).

    The requester drives ``en`` (with ``we``/``addr``/``wdata``) and holds it
    until ``done`` pulses; ``rdata`` is valid in the ``done`` cycle for reads.
    ``idle`` is high when a new access can be started.
    """

    def __init__(self, owner: Component, addr_width: int, width: int,
                 name: str = "ram") -> None:
        super().__init__(
            name,
            en=owner.signal(1, name=f"{name}_en"),
            we=owner.signal(1, name=f"{name}_we"),
            addr=owner.signal(addr_width, name=f"{name}_addr"),
            wdata=owner.signal(width, name=f"{name}_wdata"),
            rdata=owner.signal(width, name=f"{name}_rdata"),
            done=owner.signal(1, name=f"{name}_done"),
            idle=owner.signal(1, init=1, name=f"{name}_idle"),
        )
        self.addr_width = addr_width
        self.width = width


class AssocIface(SignalBundle):
    """Associative (key/value) interface of the associative-array container."""

    def __init__(self, owner: Component, key_width: int, value_width: int,
                 name: str = "assoc") -> None:
        super().__init__(
            name,
            lookup=owner.signal(1, name=f"{name}_lookup"),
            key=owner.signal(key_width, name=f"{name}_key"),
            found=owner.signal(1, name=f"{name}_found"),
            value=owner.signal(value_width, name=f"{name}_value"),
            insert=owner.signal(1, name=f"{name}_insert"),
            insert_key=owner.signal(key_width, name=f"{name}_insert_key"),
            insert_value=owner.signal(value_width, name=f"{name}_insert_value"),
            remove=owner.signal(1, name=f"{name}_remove"),
            remove_key=owner.signal(key_width, name=f"{name}_remove_key"),
            done=owner.signal(1, name=f"{name}_done"),
            full=owner.signal(1, name=f"{name}_full"),
        )
        self.key_width = key_width
        self.value_width = value_width


class IteratorIface(SignalBundle):
    """The canonical iterator interface presented to algorithms (Table 2).

    Control signals (driven by the algorithm): ``inc``, ``dec``, ``read``,
    ``write``, ``index``, ``pos`` and ``wdata``.  Status/data signals (driven
    by the iterator): ``rdata``, ``done``, ``can_read`` and ``can_write``.

    Protocol: the algorithm may assert operation strobes in any cycle where
    the corresponding ``can_read``/``can_write`` is high; ``done`` pulses in
    the cycle the operation completes and ``rdata`` is valid in that cycle.
    For single-cycle bindings ``done`` coincides with the strobe; multi-cycle
    bindings keep ``can_*`` low while busy.
    """

    def __init__(self, owner: Component, width: int, pos_width: int = 1,
                 name: str = "it") -> None:
        super().__init__(
            name,
            inc=owner.signal(1, name=f"{name}_inc"),
            dec=owner.signal(1, name=f"{name}_dec"),
            read=owner.signal(1, name=f"{name}_read"),
            write=owner.signal(1, name=f"{name}_write"),
            index=owner.signal(1, name=f"{name}_index"),
            pos=owner.signal(pos_width, name=f"{name}_pos"),
            wdata=owner.signal(width, name=f"{name}_wdata"),
            rdata=owner.signal(width, name=f"{name}_rdata"),
            done=owner.signal(1, name=f"{name}_done"),
            can_read=owner.signal(1, name=f"{name}_can_read"),
            can_write=owner.signal(1, name=f"{name}_can_write"),
        )
        self.width = width
        self.pos_width = pos_width


class WindowIteratorIface(IteratorIface):
    """Iterator interface extended with a vertical 3-pixel window read port."""

    def __init__(self, owner: Component, width: int, pos_width: int = 1,
                 name: str = "wit") -> None:
        super().__init__(owner, width, pos_width, name)
        self.add("rdata_top", owner.signal(width, name=f"{name}_rdata_top"))
        self.add("rdata_mid", owner.signal(width, name=f"{name}_rdata_mid"))
        self.add("rdata_bot", owner.signal(width, name=f"{name}_rdata_bot"))
