"""Done-handshake copy algorithm for arbitrary iterator pairs.

The parallel :class:`~repro.core.algorithms.copy.CopyAlgorithm` assumes
single-cycle stream iterators.  This variant sequences one element at a time
through an explicit FSM and waits for each iterator's ``done`` pulse, so it
works with *any* registered iterator — including the multi-cycle random and
bidirectional iterators over vectors — at the cost of throughput.  It is the
component used to demonstrate that the same algorithm model runs unchanged
over radically different containers (Section 3.3's reuse claim), and it is
also the baseline for the throughput ablation bench.
"""

from __future__ import annotations


from ..iterator import HardwareIterator
from .base import Algorithm
from ...rtl import FSM


class GenericCopyAlgorithm(Algorithm):
    """Copy ``max_count`` elements using the full done-based protocol.

    Parameters
    ----------
    in_it, out_it:
        Iterators with read and write capability respectively.  Each element
        is read (with ``inc``) and, once ``done`` arrives, written (with
        ``inc``) to the output iterator.
    max_count:
        Number of elements to copy; required because vector traversals have
        a definite length rather than an endless stream.
    """

    def __init__(self, name: str, in_it: HardwareIterator, out_it: HardwareIterator,
                 max_count: int) -> None:
        if max_count is None or max_count < 1:
            raise ValueError("GenericCopyAlgorithm needs a positive max_count")
        super().__init__(name, max_count=max_count)
        self.in_it = in_it
        self.out_it = out_it
        src = in_it.iface
        dst = out_it.iface
        self._check_iterator(src, needs_read=True, role="input iterator")
        self._check_iterator(dst, needs_write=True, role="output iterator")

        self._element = self.state(src.width, name=f"{name}_element")
        self._fsm = FSM(self, ["READ", "READ_WAIT", "WRITE", "WRITE_WAIT", "DONE"],
                        name=f"{name}_ctrl")

        @self.comb
        def strobes() -> None:
            fsm = self._fsm
            reading = fsm.is_in("READ") and src.can_read.value
            read_pending = fsm.is_in("READ_WAIT")
            writing = fsm.is_in("WRITE") and dst.can_write.value
            write_pending = fsm.is_in("WRITE_WAIT")
            src.read.next = 1 if (reading or read_pending) else 0
            src.inc.next = 1 if (reading or read_pending) else 0
            dst.write.next = 1 if (writing or write_pending) else 0
            dst.inc.next = 1 if (writing or write_pending) else 0
            dst.wdata.next = self._element.value

        @self.seq
        def control() -> None:
            fsm = self._fsm
            if fsm.is_in("READ"):
                if self.finished.value:
                    fsm.goto("DONE")
                elif src.can_read.value:
                    if src.done.value:
                        # Single-cycle iterator: data is already valid.
                        self._element.next = src.rdata.value
                        fsm.goto("WRITE")
                    else:
                        fsm.goto("READ_WAIT")
            elif fsm.is_in("READ_WAIT"):
                if src.done.value:
                    self._element.next = src.rdata.value
                    fsm.goto("WRITE")
            elif fsm.is_in("WRITE"):
                if dst.can_write.value:
                    if dst.done.value:
                        self._account(1)
                        fsm.goto("READ")
                    else:
                        fsm.goto("WRITE_WAIT")
            elif fsm.is_in("WRITE_WAIT"):
                if dst.done.value:
                    self._account(1)
                    fsm.goto("READ")
            elif fsm.is_in("DONE"):
                fsm.stay()
