"""Common machinery for the algorithm components of the library.

Algorithms (Section 3.2.3) "use the interface provided by iterators to access
data in the containers.  This would guarantee reusability of the algorithm,
despite of the container chosen for a certain implementation."  Every
algorithm component therefore receives already-constructed iterators and is
forbidden (by convention and by the tests) from touching container or device
ports directly.
"""

from __future__ import annotations

from typing import Optional

from ..interfaces import IteratorIface
from ...rtl import Component, Signal


class Algorithm(Component):
    """Base class for algorithm components.

    Provides the bookkeeping every algorithm shares: an element counter, an
    optional element budget and a ``finished`` flag.  Subclasses implement
    the actual data movement in their own processes.
    """

    def __init__(self, name: str, max_count: Optional[int] = None,
                 counter_width: int = 32) -> None:
        super().__init__(name)
        self.max_count = max_count
        #: Number of elements processed so far.
        self.count: Signal = self.state(counter_width, name=f"{name}_count")
        #: Latched high once ``max_count`` elements have been processed.
        self.finished: Signal = self.state(1, name=f"{name}_finished")

    # -- helpers used by subclasses inside their sequential processes ----------------

    def _account(self, processed: int = 1) -> None:
        """Record ``processed`` elements and update the ``finished`` flag."""
        new_count = self.count.value + processed
        self.count.next = new_count
        if self.max_count is not None and new_count >= self.max_count:
            self.finished.next = 1

    def _budget_open(self) -> bool:
        """True while more elements may be processed."""
        if self.finished.value:
            return False
        if self.max_count is None:
            return True
        return self.count.value < self.max_count

    # -- introspection ------------------------------------------------------------------

    @property
    def elements_processed(self) -> int:
        """The committed element count."""
        return self.count.value

    @property
    def is_finished(self) -> bool:
        """Whether the element budget has been exhausted."""
        return bool(self.finished.value)

    @staticmethod
    def _check_iterator(iface: IteratorIface, *, needs_read: bool = False,
                        needs_write: bool = False, role: str = "iterator") -> None:
        """Sanity-check that an iterator interface offers the needed signals."""
        if needs_read and "rdata" not in iface:
            raise TypeError(f"{role} does not expose read data")
        if needs_write and "wdata" not in iface:
            raise TypeError(f"{role} does not expose write data")
