"""Algorithm components of the basic component library (Section 3.2.3).

Every algorithm here is written exclusively against iterator interfaces, so
the same component instance works unchanged over any container binding — the
model-reuse property the paper demonstrates with the copy and blur examples.
"""

from .base import Algorithm
from .blur import BlurAlgorithm, blur_kernel
from .convolution import (
    EDGE_KERNEL,
    IDENTITY_KERNEL,
    SHARPEN_KERNEL,
    SMOOTH_KERNEL,
    Conv3x3Algorithm,
    Kernel3x3,
    golden_convolve3x3,
)
from .copy import CopyAlgorithm
from .fill import FillAlgorithm
from .find import FindAlgorithm
from .generic_copy import GenericCopyAlgorithm
from .histogram import HistogramAlgorithm, golden_histogram
from .reduce import ReduceAlgorithm
from .transform import TransformAlgorithm, gain, invert, threshold

__all__ = [
    "Algorithm",
    "CopyAlgorithm",
    "GenericCopyAlgorithm",
    "HistogramAlgorithm",
    "golden_histogram",
    "TransformAlgorithm",
    "BlurAlgorithm",
    "blur_kernel",
    "Conv3x3Algorithm",
    "Kernel3x3",
    "golden_convolve3x3",
    "IDENTITY_KERNEL",
    "SMOOTH_KERNEL",
    "SHARPEN_KERNEL",
    "EDGE_KERNEL",
    "FillAlgorithm",
    "FindAlgorithm",
    "ReduceAlgorithm",
    "invert",
    "threshold",
    "gain",
]
