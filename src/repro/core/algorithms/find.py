"""Find (search) algorithm over an input iterator.

The hardware counterpart of ``std::find``: scan elements delivered by an
input iterator until one matches the target value, then report the element's
ordinal position.  Used in the examples to show that a completely different
algorithm reuses the same iterators and containers untouched.
"""

from __future__ import annotations

from ..iterator import HardwareIterator
from .base import Algorithm
from ...rtl import Signal


class FindAlgorithm(Algorithm):
    """Search for ``target`` among the first ``max_count`` elements.

    Outputs
    -------
    found:
        Latched high when the target value is seen.
    found_index:
        Ordinal position (0-based) of the first match.
    finished:
        High once the search ends, either on a match or after ``max_count``
        elements have been examined.
    """

    def __init__(self, name: str, in_it: HardwareIterator, target: int,
                 max_count: int, index_width: int = 32) -> None:
        if max_count < 1:
            raise ValueError("FindAlgorithm needs a positive max_count")
        super().__init__(name, max_count=max_count)
        self.in_it = in_it
        self.target = target
        src = in_it.iface
        self._check_iterator(src, needs_read=True, role="input iterator")

        self.found: Signal = self.state(1, name=f"{name}_found")
        self.found_index: Signal = self.state(index_width, name=f"{name}_found_index")

        @self.comb
        def strobes() -> None:
            scanning = (src.can_read.value and self._budget_open()
                        and not self.found.value)
            strobe = 1 if scanning else 0
            src.read.next = strobe
            src.inc.next = strobe

        @self.seq
        def scan() -> None:
            if self.found.value or not self._budget_open():
                return
            if not src.can_read.value:
                return
            if src.rdata.value == self.target:
                self.found.next = 1
                self.found_index.next = self.count.value
                self.finished.next = 1
            self._account(1)
