"""Element-wise transform algorithm (pixel-wise filtering).

The paper lists "pixel-wise filtering" among the domain algorithms a basic
component library should offer.  :class:`TransformAlgorithm` generalises the
stream copy: every element read from the input iterator is passed through a
combinational function before being written to the output iterator.  The
function is supplied as a plain Python callable over unsigned integers plus a
LUT-cost hint that the synthesis estimator charges for the datapath logic.
"""

from __future__ import annotations

from typing import Callable, Optional

from ..iterator import HardwareIterator
from .base import Algorithm

ElementFunction = Callable[[int], int]


def invert(width: int) -> ElementFunction:
    """Bitwise inversion (photographic negative for grayscale pixels)."""
    mask = (1 << width) - 1

    def apply(value: int) -> int:
        return (~value) & mask

    return apply


def threshold(level: int, width: int) -> ElementFunction:
    """Binarisation: full-scale white above ``level``, black otherwise."""
    full = (1 << width) - 1

    def apply(value: int) -> int:
        return full if value >= level else 0

    return apply


def gain(numerator: int, denominator: int, width: int) -> ElementFunction:
    """Fixed-ratio gain with saturation (brightness/contrast adjustment)."""
    full = (1 << width) - 1

    def apply(value: int) -> int:
        return min(full, (value * numerator) // denominator)

    return apply


class TransformAlgorithm(Algorithm):
    """Read, transform and write elements one per cycle when both sides allow.

    Parameters
    ----------
    func:
        Combinational element function applied to every value.
    logic_cost_luts:
        Estimated LUT cost of the function's datapath, consumed by the
        synthesis estimator (a pure wire such as the identity costs 0).
    """

    def __init__(self, name: str, in_it: HardwareIterator, out_it: HardwareIterator,
                 func: ElementFunction, max_count: Optional[int] = None,
                 logic_cost_luts: int = 8) -> None:
        super().__init__(name, max_count=max_count)
        self.in_it = in_it
        self.out_it = out_it
        self.func = func
        self.logic_cost_luts = logic_cost_luts
        src = in_it.iface
        dst = out_it.iface
        self._check_iterator(src, needs_read=True, role="input iterator")
        self._check_iterator(dst, needs_write=True, role="output iterator")

        @self.comb
        def datapath() -> None:
            transfer = (src.can_read.value and dst.can_write.value
                        and self._budget_open())
            strobe = 1 if transfer else 0
            src.read.next = strobe
            src.inc.next = strobe
            dst.write.next = strobe
            dst.inc.next = strobe
            dst.wdata.next = self.func(src.rdata.value)

        @self.seq
        def account() -> None:
            if (src.can_read.value and dst.can_write.value
                    and self._budget_open()):
                self._account(1)
