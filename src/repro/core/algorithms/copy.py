"""The stream copy algorithm.

This is the algorithm of the motivating example: "copying data from the
input buffer to the output buffer ... The copy algorithm is almost trivial:
an endless loop that sequences read and write operations and iterator
forwarding for both containers.  All these operations can be performed in
parallel in a hardware implementation."

The implementation is exactly that parallel loop: in every cycle where the
input iterator can deliver an element and the output iterator can accept one,
the element is read, written and both iterators advance — one element per
cycle when both bindings allow it (the FIFO case), throttled automatically by
``can_read``/``can_write`` otherwise (the SRAM case).
"""

from __future__ import annotations

from typing import Optional

from ..iterator import HardwareIterator
from .base import Algorithm


class CopyAlgorithm(Algorithm):
    """Copy elements from an input iterator to an output iterator.

    Parameters
    ----------
    in_it, out_it:
        The input and output iterators.  Only their canonical interfaces are
        used, so any sequential container binding works unchanged.
    max_count:
        Optional number of elements after which the algorithm stops
        (``finished`` goes high).  ``None`` reproduces the paper's endless
        loop.
    """

    def __init__(self, name: str, in_it: HardwareIterator, out_it: HardwareIterator,
                 max_count: Optional[int] = None) -> None:
        super().__init__(name, max_count=max_count)
        self.in_it = in_it
        self.out_it = out_it
        src = in_it.iface
        dst = out_it.iface
        self._check_iterator(src, needs_read=True, role="input iterator")
        self._check_iterator(dst, needs_write=True, role="output iterator")

        @self.comb
        def datapath() -> None:
            transfer = (src.can_read.value and dst.can_write.value
                        and self._budget_open())
            strobe = 1 if transfer else 0
            # Read + advance on the input side, write + advance on the output
            # side, all in the same cycle ("performed in parallel").
            src.read.next = strobe
            src.inc.next = strobe
            dst.write.next = strobe
            dst.inc.next = strobe
            dst.wdata.next = src.rdata.value

        @self.seq
        def account() -> None:
            if (src.can_read.value and dst.can_write.value
                    and self._budget_open()):
                self._account(1)
