"""Reduction (accumulate) algorithm over an input iterator.

A small member of the "commonly used algorithms" family: it folds every
element delivered by an input iterator into an accumulator register.  The
default operation is summation, which is what image-statistics blocks
(mean brightness, histogram normalisation) need; any commutative integer
function can be supplied instead.
"""

from __future__ import annotations

from typing import Callable, Optional

from ..iterator import HardwareIterator
from .base import Algorithm

ReduceFunction = Callable[[int, int], int]


class ReduceAlgorithm(Algorithm):
    """Fold elements from an input iterator into an accumulator.

    Parameters
    ----------
    in_it:
        Any readable iterator.
    max_count:
        Number of elements to consume before raising ``finished``.
    func:
        Binary fold function ``(accumulator, element) -> accumulator``;
        defaults to addition.
    acc_width:
        Width of the accumulator register.
    """

    def __init__(self, name: str, in_it: HardwareIterator, max_count: int,
                 func: Optional[ReduceFunction] = None, acc_width: int = 32,
                 initial: int = 0) -> None:
        if max_count < 1:
            raise ValueError("ReduceAlgorithm needs a positive max_count")
        super().__init__(name, max_count=max_count)
        self.in_it = in_it
        self.func: ReduceFunction = func or (lambda acc, element: acc + element)
        src = in_it.iface
        self._check_iterator(src, needs_read=True, role="input iterator")

        #: Accumulator register; read :attr:`result` after ``finished`` rises.
        self.accumulator = self.state(acc_width, init=initial, name=f"{name}_acc")

        @self.comb
        def strobes() -> None:
            consume = src.can_read.value and self._budget_open()
            strobe = 1 if consume else 0
            src.read.next = strobe
            src.inc.next = strobe

        @self.seq
        def fold() -> None:
            if src.can_read.value and self._budget_open():
                self.accumulator.next = self.func(
                    self.accumulator.value, src.rdata.value)
                self._account(1)

    @property
    def result(self) -> int:
        """The committed accumulator value."""
        return self.accumulator.value
