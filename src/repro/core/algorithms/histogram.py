"""Histogram algorithm: stream statistics accumulated into a vector container.

A staple of the "specific application domains such as video image processing"
the paper's conclusions call for: every element read from an input iterator
increments one bin of a histogram.  The bins live in an ordinary vector
container and are accessed exclusively through a random iterator, so the same
algorithm runs over block-RAM, register-file or external-SRAM bin storage —
another instance of the decoupling the pattern provides.

The per-element update is a read-modify-write sequence on the bin vector
(``index`` to the bin, ``read``, then ``write`` of the incremented count),
driven by a small FSM using the done-based iterator protocol.
"""

from __future__ import annotations

from typing import List, Optional

from ..iterator import HardwareIterator
from .base import Algorithm
from ...rtl import FSM


class HistogramAlgorithm(Algorithm):
    """Accumulate a histogram of the input stream into a vector of bins.

    Parameters
    ----------
    in_it:
        Readable stream iterator delivering the samples (e.g. pixels).
    bin_it:
        A *random* iterator (index/read/write) over the bin vector.
    num_bins:
        Number of bins; samples are mapped to bins by dropping low-order
        sample bits (``bin = sample >> shift``), the usual hardware binning.
    sample_width:
        Width in bits of the input samples.
    max_count:
        Number of samples to consume before raising ``finished``.
    """

    def __init__(self, name: str, in_it: HardwareIterator, bin_it: HardwareIterator,
                 num_bins: int, sample_width: int, max_count: int) -> None:
        if max_count < 1:
            raise ValueError("HistogramAlgorithm needs a positive max_count")
        if num_bins < 2 or num_bins & (num_bins - 1):
            raise ValueError(f"num_bins must be a power of two >= 2, got {num_bins}")
        super().__init__(name, max_count=max_count)
        self.in_it = in_it
        self.bin_it = bin_it
        self.num_bins = num_bins
        bins_bits = num_bins.bit_length() - 1
        if bins_bits > sample_width:
            raise ValueError("more bins than representable sample values")
        #: How many low-order sample bits are dropped when selecting a bin.
        self.bin_shift = sample_width - bins_bits

        src = in_it.iface
        bins = bin_it.iface
        self._check_iterator(src, needs_read=True, role="input iterator")
        self._check_iterator(bins, needs_read=True, needs_write=True,
                             role="bin iterator")

        self._sample_bin = self.state(max(1, bins_bits), name=f"{name}_sample_bin")
        self._bin_value = self.state(bins.width, name=f"{name}_bin_value")
        self._fsm = FSM(self, ["TAKE", "SEEK", "LOAD", "LOAD_WAIT",
                               "STORE", "STORE_WAIT", "DONE"],
                        name=f"{name}_ctrl")

        @self.comb
        def strobes() -> None:
            fsm = self._fsm
            take = fsm.is_in("TAKE") and src.can_read.value and self._budget_open()
            src.read.next = 1 if take else 0
            src.inc.next = 1 if take else 0

            seeking = fsm.is_in("SEEK")
            loading = fsm.is_in("LOAD") and bins.can_read.value
            load_pending = fsm.is_in("LOAD_WAIT")
            storing = fsm.is_in("STORE") and bins.can_write.value
            store_pending = fsm.is_in("STORE_WAIT")

            bins.index.next = 1 if seeking else 0
            bins.pos.next = self._sample_bin.value
            bins.read.next = 1 if (loading or load_pending) else 0
            bins.write.next = 1 if (storing or store_pending) else 0
            bins.wdata.next = self._bin_value.value + 1
            # The bin position is set explicitly through index; no inc/dec.
            bins.inc.next = 0
            bins.dec.next = 0

        @self.seq
        def control() -> None:
            fsm = self._fsm
            bins_iface = bins
            if fsm.is_in("TAKE"):
                if not self._budget_open():
                    fsm.goto("DONE")
                elif src.can_read.value:
                    self._sample_bin.next = src.rdata.value >> self.bin_shift
                    fsm.goto("SEEK")
            elif fsm.is_in("SEEK"):
                if bins_iface.done.value:
                    fsm.goto("LOAD")
            elif fsm.is_in("LOAD"):
                if bins_iface.can_read.value:
                    if bins_iface.done.value:
                        self._bin_value.next = bins_iface.rdata.value
                        fsm.goto("STORE")
                    else:
                        fsm.goto("LOAD_WAIT")
            elif fsm.is_in("LOAD_WAIT"):
                if bins_iface.done.value:
                    self._bin_value.next = bins_iface.rdata.value
                    fsm.goto("STORE")
            elif fsm.is_in("STORE"):
                if bins_iface.can_write.value:
                    if bins_iface.done.value:
                        self._account(1)
                        fsm.goto("TAKE")
                    else:
                        fsm.goto("STORE_WAIT")
            elif fsm.is_in("STORE_WAIT"):
                if bins_iface.done.value:
                    self._account(1)
                    fsm.goto("TAKE")
            elif fsm.is_in("DONE"):
                fsm.stay()


def golden_histogram(samples: List[int], num_bins: int, sample_width: int,
                     initial: Optional[List[int]] = None) -> List[int]:
    """Software reference for :class:`HistogramAlgorithm`."""
    bins_bits = num_bins.bit_length() - 1
    shift = sample_width - bins_bits
    counts = list(initial) if initial is not None else [0] * num_bins
    for sample in samples:
        counts[sample >> shift] += 1
    return counts
