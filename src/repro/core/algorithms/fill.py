"""Fill (generate) algorithm over an output iterator.

Writes a generated sequence of elements — a constant, a ramp, or any Python
function of the element index — through an output iterator.  It is the
library's equivalent of ``std::fill``/``std::generate`` and doubles as the
stimulus generator for vector-container tests.
"""

from __future__ import annotations

from typing import Callable, Optional

from ..iterator import HardwareIterator
from .base import Algorithm
from ...rtl import FSM

GeneratorFunction = Callable[[int], int]


class FillAlgorithm(Algorithm):
    """Write ``max_count`` generated elements through an output iterator.

    The algorithm uses the done-based protocol, so it works with multi-cycle
    output iterators (vectors over block RAM or SRAM) as well as stream
    iterators.

    Parameters
    ----------
    out_it:
        Any writable iterator.
    max_count:
        Number of elements to write.
    func:
        ``index -> value`` generator; defaults to the identity ramp.
    """

    def __init__(self, name: str, out_it: HardwareIterator, max_count: int,
                 func: Optional[GeneratorFunction] = None) -> None:
        if max_count < 1:
            raise ValueError("FillAlgorithm needs a positive max_count")
        super().__init__(name, max_count=max_count)
        self.out_it = out_it
        self.func: GeneratorFunction = func or (lambda index: index)
        dst = out_it.iface
        self._check_iterator(dst, needs_write=True, role="output iterator")

        self._fsm = FSM(self, ["WRITE", "WAIT", "DONE"], name=f"{name}_ctrl")

        @self.comb
        def strobes() -> None:
            fsm = self._fsm
            issuing = fsm.is_in("WRITE") and dst.can_write.value and self._budget_open()
            pending = fsm.is_in("WAIT")
            strobe = 1 if (issuing or pending) else 0
            dst.write.next = strobe
            dst.inc.next = strobe
            dst.wdata.next = self.func(self.count.value)

        @self.seq
        def control() -> None:
            fsm = self._fsm
            if fsm.is_in("WRITE"):
                if not self._budget_open():
                    fsm.goto("DONE")
                elif dst.can_write.value:
                    if dst.done.value:
                        self._account(1)
                    else:
                        fsm.goto("WAIT")
            elif fsm.is_in("WAIT"):
                if dst.done.value:
                    self._account(1)
                    fsm.goto("WRITE")
            elif fsm.is_in("DONE"):
                fsm.stay()
