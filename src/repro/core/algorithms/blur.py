"""3x3 blur (box) filter over a window iterator.

The third design of Table 3: "we have implemented a blur filter that
processes an image coming from the video decoder and sends it to a VGA coder
... ideally a new filtered pixel can be generated at each clock cycle."

The algorithm consumes one vertical 3-pixel column per step from a window
iterator (backed by the 3-line-buffer container binding), keeps the two
previous columns in registers, and emits the mean of the 3x3 neighbourhood —
``floor(sum / 9)`` — through an ordinary forward output iterator.  Output
pixels are produced for every fully-interior window, so a ``H x W`` input
frame yields a ``(H-2) x (W-2)`` output frame in raster order.
"""

from __future__ import annotations

from typing import Optional

from ..interfaces import WindowIteratorIface
from ..iterator import HardwareIterator
from .base import Algorithm
from ...rtl import clog2


def blur_kernel(window: list) -> int:
    """Reference 3x3 box filter: floor of the mean of nine pixel values.

    ``window`` is any iterable of nine unsigned pixel values.  Both the
    hardware algorithm and the software golden model use this function, so
    the simulated output can be compared bit-exactly.
    """
    values = list(window)
    if len(values) != 9:
        raise ValueError(f"blur kernel expects 9 pixels, got {len(values)}")
    return sum(values) // 9


class BlurAlgorithm(Algorithm):
    """Streaming 3x3 box blur.

    Parameters
    ----------
    win_it:
        A window iterator (``rdata_top``/``rdata_mid``/``rdata_bot``) over a
        3-line-buffer read buffer.
    out_it:
        A forward output iterator for the filtered pixel stream.
    line_width:
        Width in pixels of the input lines; used to restart the horizontal
        column history at each new line.
    max_count:
        Optional budget of *output* pixels, after which ``finished`` rises.
    """

    #: LUT cost hint of the 9-input adder tree plus the divide-by-9 constant
    #: multiplier, consumed by the synthesis estimator.
    logic_cost_luts = 96

    def __init__(self, name: str, win_it: HardwareIterator, out_it: HardwareIterator,
                 line_width: int, max_count: Optional[int] = None) -> None:
        super().__init__(name, max_count=max_count)
        if not isinstance(win_it.iface, WindowIteratorIface):
            raise TypeError("BlurAlgorithm needs a window iterator "
                            "(rdata_top/mid/bot) on its input side")
        if line_width < 3:
            raise ValueError(f"line width must be >= 3 for a 3x3 filter, got {line_width}")
        self.in_it = win_it
        self.out_it = out_it
        self.line_width = line_width
        src = win_it.iface
        dst = out_it.iface
        self._check_iterator(dst, needs_write=True, role="output iterator")
        width = src.width

        # Column history: [0] is the oldest column, [1] the previous one; the
        # newest column arrives combinationally from the window iterator.
        self._hist = [
            [self.state(width, name=f"{name}_c{col}_{row}") for row in range(3)]
            for col in range(2)
        ]
        self._x = self.state(clog2(max(2, line_width)), name=f"{name}_x")

        @self.comb
        def datapath() -> None:
            x = self._x.value
            emit_needed = x >= 2
            can_consume = src.can_read.value and self._budget_open()
            if emit_needed:
                can_consume = can_consume and dst.can_write.value
            strobe = 1 if can_consume else 0

            src.read.next = strobe
            src.inc.next = strobe
            dst.write.next = strobe if emit_needed else 0
            dst.inc.next = strobe if emit_needed else 0

            window = [reg.value for col in self._hist for reg in col]
            window += [src.rdata_top.value, src.rdata_mid.value, src.rdata_bot.value]
            dst.wdata.next = blur_kernel(window)

        @self.seq
        def control() -> None:
            x = self._x.value
            emit_needed = x >= 2
            can_consume = src.can_read.value and self._budget_open()
            if emit_needed:
                can_consume = can_consume and dst.can_write.value
            if not can_consume:
                return
            # Shift the column history and advance the horizontal position.
            for row in range(3):
                self._hist[0][row].next = self._hist[1][row].value
            self._hist[1][0].next = src.rdata_top.value
            self._hist[1][1].next = src.rdata_mid.value
            self._hist[1][2].next = src.rdata_bot.value
            if x + 1 >= self.line_width:
                self._x.next = 0
            else:
                self._x.next = x + 1
            if emit_needed:
                self._account(1)
