"""General 3x3 convolution filter over a window iterator.

The paper's conclusions ask for domain libraries with "common algorithms
(convolution filters, image labelling ...) and specialized iterators".  This
component generalises the box blur to an arbitrary 3x3 kernel with
hardware-friendly normalisation (a right shift) and saturation, reusing the
exact same window-iterator interface — so sharpening, edge detection or
Gaussian-like smoothing are all obtained by changing constants, not
structure.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from ..interfaces import WindowIteratorIface
from ..iterator import HardwareIterator
from .base import Algorithm
from ...rtl import clog2


class Kernel3x3:
    """A 3x3 integer convolution kernel with shift normalisation.

    The response is ``clamp((sum(w_i * p_i) + rounding) >> shift)`` with the
    result clamped to the pixel range — the standard fixed-point formulation
    a synthesis tool maps onto multipliers/adders and a shifter.
    """

    def __init__(self, weights: Sequence[int], shift: int = 0,
                 name: str = "kernel") -> None:
        weights = list(weights)
        if len(weights) != 9:
            raise ValueError(f"a 3x3 kernel needs 9 weights, got {len(weights)}")
        if shift < 0:
            raise ValueError(f"shift must be non-negative, got {shift}")
        self.weights = weights
        self.shift = shift
        self.name = name

    def apply(self, window: Sequence[int], max_value: int) -> int:
        """Evaluate the kernel on a 9-pixel window.

        The window is ordered **column-major** — left column top-to-bottom,
        then the middle column, then the right column — which is the order
        the streaming datapath naturally produces (two stored columns plus
        the incoming one).  Kernel weights follow the same ordering.
        """
        window = list(window)
        if len(window) != 9:
            raise ValueError(f"a 3x3 window needs 9 pixels, got {len(window)}")
        accumulator = sum(w * p for w, p in zip(self.weights, window))
        value = accumulator >> self.shift
        return max(0, min(max_value, value))

    @property
    def gain(self) -> float:
        """DC gain of the kernel after normalisation (1.0 preserves brightness)."""
        return sum(self.weights) / float(1 << self.shift)

    def estimated_luts(self, pixel_width: int) -> int:
        """Rough LUT cost of the multiply-accumulate tree for the estimator."""
        nontrivial = sum(1 for w in self.weights if w not in (0, 1, -1))
        adders = 8 * (pixel_width + 4)
        multipliers = nontrivial * pixel_width * 2
        return adders // 4 + multipliers // 2

    def __repr__(self) -> str:
        return f"Kernel3x3({self.name!r}, weights={self.weights}, shift={self.shift})"


#: Identity: output equals the centre pixel.
IDENTITY_KERNEL = Kernel3x3([0, 0, 0, 0, 1, 0, 0, 0, 0], shift=0, name="identity")

#: Smoothing kernel (binomial approximation of a Gaussian), gain 1.
SMOOTH_KERNEL = Kernel3x3([1, 2, 1, 2, 4, 2, 1, 2, 1], shift=4, name="smooth")

#: Sharpening kernel (unsharp masking), gain 1.
SHARPEN_KERNEL = Kernel3x3([0, -1, 0, -1, 8, -1, 0, -1, 0], shift=2, name="sharpen")

#: Laplacian edge detector, gain 0 (flat regions go to black).
EDGE_KERNEL = Kernel3x3([0, -1, 0, -1, 4, -1, 0, -1, 0], shift=0, name="edge")


class Conv3x3Algorithm(Algorithm):
    """Streaming 3x3 convolution over a window iterator.

    Structurally identical to :class:`BlurAlgorithm` (column history registers,
    horizontal position counter, one output pixel per accepted column), but
    the arithmetic is the supplied :class:`Kernel3x3`.
    """

    def __init__(self, name: str, win_it: HardwareIterator, out_it: HardwareIterator,
                 line_width: int, kernel: Kernel3x3,
                 max_count: Optional[int] = None) -> None:
        super().__init__(name, max_count=max_count)
        if not isinstance(win_it.iface, WindowIteratorIface):
            raise TypeError("Conv3x3Algorithm needs a window iterator "
                            "(rdata_top/mid/bot) on its input side")
        if line_width < 3:
            raise ValueError(f"line width must be >= 3 for a 3x3 filter, got {line_width}")
        self.in_it = win_it
        self.out_it = out_it
        self.line_width = line_width
        self.kernel = kernel
        src = win_it.iface
        dst = out_it.iface
        self._check_iterator(dst, needs_write=True, role="output iterator")
        width = src.width
        self._max_value = (1 << dst.width) - 1
        self.logic_cost_luts = kernel.estimated_luts(width)

        self._hist = [
            [self.state(width, name=f"{name}_c{col}_{row}") for row in range(3)]
            for col in range(2)
        ]
        self._x = self.state(clog2(max(2, line_width)), name=f"{name}_x")

        @self.comb
        def datapath() -> None:
            x = self._x.value
            emit_needed = x >= 2
            can_consume = src.can_read.value and self._budget_open()
            if emit_needed:
                can_consume = can_consume and dst.can_write.value
            strobe = 1 if can_consume else 0

            src.read.next = strobe
            src.inc.next = strobe
            dst.write.next = strobe if emit_needed else 0
            dst.inc.next = strobe if emit_needed else 0

            window = [reg.value for col in self._hist for reg in col]
            window += [src.rdata_top.value, src.rdata_mid.value, src.rdata_bot.value]
            dst.wdata.next = self.kernel.apply(window, self._max_value)

        @self.seq
        def control() -> None:
            x = self._x.value
            emit_needed = x >= 2
            can_consume = src.can_read.value and self._budget_open()
            if emit_needed:
                can_consume = can_consume and dst.can_write.value
            if not can_consume:
                return
            for row in range(3):
                self._hist[0][row].next = self._hist[1][row].value
            self._hist[1][0].next = src.rdata_top.value
            self._hist[1][1].next = src.rdata_mid.value
            self._hist[1][2].next = src.rdata_bot.value
            if x + 1 >= self.line_width:
                self._x.next = 0
            else:
                self._x.next = x + 1
            if emit_needed:
                self._account(1)


def golden_convolve3x3(frame: List[List[int]], kernel: Kernel3x3,
                       max_value: int = 255) -> List[List[int]]:
    """Software reference for :class:`Conv3x3Algorithm` (interior windows only)."""
    height = len(frame)
    width = len(frame[0]) if height else 0
    if width < 3 or height < 3:
        raise ValueError("convolution needs a frame of at least 3x3 pixels")
    output = []
    for y in range(1, height - 1):
        row = []
        for x in range(1, width - 1):
            # Column-major window order, matching the streaming datapath.
            window = [frame[y + dy][x + dx]
                      for dx in (-1, 0, 1) for dy in (-1, 0, 1)]
            row.append(kernel.apply(window, max_value))
        output.append(row)
    return output
