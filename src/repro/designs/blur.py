"""Pattern-based blur design (Table 3, row ``blur``).

"We have implemented a blur filter that processes an image coming from the
video decoder and sends it to a VGA coder.  The rbuffer container, instead of
a simple FIFO has been mapped over a special one ... a 3-line buffer
structured to provide 3 pixels in a column for each access."

The model is the same as the saa2vga designs — read buffer, write buffer,
iterators, algorithm — with two substitutions expressed purely through the
pattern library: the read buffer uses the ``linebuffer3`` binding and the
algorithm is the 3x3 blur instead of the copy.
"""

from __future__ import annotations

from ..core import BlurAlgorithm, make_container, make_iterator
from ..rtl import Component


class BlurPatternDesign(Component):
    """3x3 blur video pipeline built from the pattern library.

    Parameters
    ----------
    line_width:
        Width of the video lines in pixels (the 3-line buffer is sized to it).
    width:
        Pixel width in bits.
    out_capacity:
        Capacity of the output write buffer.
    out_binding:
        Binding of the output write buffer (FIFO by default, as in the paper).
    """

    style = "pattern"

    def __init__(self, name: str = "blur", line_width: int = 64, width: int = 8,
                 out_capacity: int = 64, out_binding: str = "fifo") -> None:
        super().__init__(name)
        self.binding = "linebuffer3"
        self.line_width = line_width
        self.width = width

        # Containers: the special 3-line read buffer and an ordinary write buffer.
        self.rbuffer = self.child(make_container(
            "read_buffer", "linebuffer3", "rbuffer",
            width=width, line_width=line_width))
        self.wbuffer = self.child(make_container(
            "write_buffer", out_binding, "wbuffer",
            width=width, capacity=out_capacity))

        # Iterators: a specialised window iterator and a plain output iterator.
        self.rbuffer_it = self.child(make_iterator(
            self.rbuffer, "window", readable=True, name="rbuffer_it"))
        self.wbuffer_it = self.child(make_iterator(
            self.wbuffer, "forward", writable=True, name="wbuffer_it"))

        # The blur algorithm still sees only iterator interfaces.
        self.algorithm = self.child(BlurAlgorithm(
            "blur_alg", self.rbuffer_it, self.wbuffer_it, line_width=line_width))

        self.input_fill = self.rbuffer.fill
        self.output_drain = self.wbuffer.drain

    @property
    def pixels_processed(self) -> int:
        """Number of filtered output pixels produced so far."""
        return self.algorithm.elements_processed

    def expected_output(self, pixels: list) -> list:
        """Golden model for verification: interior 3x3 means in raster order.

        ``pixels`` is the raster-ordered input stream; only complete lines
        participate (a trailing partial line is ignored, matching the
        hardware, which cannot form windows from pixels it never saw).
        """
        from ..video.frames import flatten, golden_blur3x3, unflatten

        width = self.line_width
        lines = len(pixels) // width
        if lines < 3:
            return []
        return flatten(golden_blur3x3(unflatten(pixels[:lines * width], width)))

    def describe(self) -> dict:
        """Structural summary used by examples and the experiment reports."""
        return {
            "design": self.name,
            "style": self.style,
            "binding": self.binding,
            "containers": [self.rbuffer.path(), self.wbuffer.path()],
            "iterators": [self.rbuffer_it.path(), self.wbuffer_it.path()],
            "algorithm": self.algorithm.path(),
        }


def build_blur_pattern(line_width: int, width: int = 8,
                       out_capacity: int = 64) -> BlurPatternDesign:
    """Convenience factory mirroring the bench/ example call sites."""
    return BlurPatternDesign(name="blur_pattern", line_width=line_width,
                             width=width, out_capacity=out_capacity)
