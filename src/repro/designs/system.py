"""Full-system harness: design under test + video source + video sink.

This models the complete Figure-1 system: camera/decoder (the synthetic
:class:`VideoStreamSource`), the image-processing circuit (any design that
exposes ``input_fill`` / ``output_drain`` interfaces — pattern-based or
custom) and the VGA coder/monitor (the :class:`VideoStreamSink`).

It is the single harness every functional test, example and performance
bench uses, so pattern and custom implementations are always exercised under
identical conditions.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from ..rtl import EVENT, Component, Simulator
from ..video import Frame, VideoStreamSink, VideoStreamSource


class VideoSystem(Component):
    """Wire a processing design between a stream source and a stream sink.

    Parameters
    ----------
    design:
        Any component with ``input_fill`` (stream sink interface) and
        ``output_drain`` (stream source interface) attributes.
    frames:
        Frames to feed through the pipeline.
    source_stall / sink_stall:
        Optional throttling of the producer/consumer sides.
    """

    def __init__(self, design: Component, frames: Optional[Sequence[Frame]] = None,
                 name: str = "system", source_stall: int = 0,
                 sink_stall: int = 0) -> None:
        super().__init__(name)
        if not hasattr(design, "input_fill") or not hasattr(design, "output_drain"):
            raise TypeError(
                f"design {design.name!r} does not expose input_fill/output_drain "
                f"interfaces and cannot be placed in a VideoSystem")
        if source_stall < 0:
            raise ValueError(
                f"source_stall must be >= 0, got {source_stall}")
        if sink_stall < 0:
            raise ValueError(
                f"sink_stall must be >= 0, got {sink_stall}")
        self.design = self.child(design)
        self.source = self.child(VideoStreamSource(
            f"{name}_source", design.input_fill, frames=frames,
            stall_period=source_stall))
        self.sink = self.child(VideoStreamSink(
            f"{name}_sink", design.output_drain, stall_period=sink_stall))

    # -- flow-graph equivalence --------------------------------------------------------

    @staticmethod
    def flow_graph(design: Component, name: str = "system"):
        """The legacy harness wiring as a two-edge pipeline graph.

        ``VideoSystem`` historically wired source -> design -> sink by
        hand; expressed through :mod:`repro.flow` it is simply a graph with
        one stage and two depth-0 (wire) edges.  The elaborated pipeline is
        cycle-identical to wrapping ``design`` directly, which
        ``tests/flow/test_elaborate.py`` proves — the legacy harness is a
        special case of the composition subsystem, not a parallel code
        path.
        """
        from ..flow import PipelineGraph

        graph = PipelineGraph(name)
        node = graph.stage(design)
        graph.connect(graph.INPUT, node, depth=0)
        graph.connect(node, graph.OUTPUT, depth=0)
        expected = getattr(design, "expected_output", None)
        if expected is not None:
            graph.golden(expected)
        return graph

    @classmethod
    def via_flow(cls, design: Component,
                 frames: Optional[Sequence[Frame]] = None,
                 name: str = "system", source_stall: int = 0,
                 sink_stall: int = 0) -> "VideoSystem":
        """Build the harness through the flow subsystem (same behaviour)."""
        pipeline = cls.flow_graph(design, name=f"{name}_flow").elaborate()
        return cls(pipeline, frames=frames, name=name,
                   source_stall=source_stall, sink_stall=sink_stall)

    # -- simulation helpers ----------------------------------------------------------

    def simulate(self, expected_outputs: int, max_cycles: int = 2_000_000,
                 simulator: Optional[Simulator] = None,
                 strategy: str = EVENT) -> Simulator:
        """Run until ``expected_outputs`` pixels have reached the sink.

        Returns the simulator so callers can inspect cycle counts.  Raises
        :class:`SimulationError` if the pipeline stalls before producing the
        expected number of pixels.  ``strategy`` selects the settle engine
        (ignored when an existing ``simulator`` is passed in).
        """
        sim = simulator or Simulator(self, strategy=strategy)
        sim.run_until(lambda: self.sink.count >= expected_outputs, max_cycles)
        return sim

    def received_pixels(self) -> List[int]:
        """Every pixel captured by the sink so far."""
        return list(self.sink.received)

    def received_frame(self, width: int, height: int, offset: int = 0) -> Frame:
        """Reassemble a received frame of the given geometry."""
        return self.sink.frame(width, height, offset=offset)


def run_stream_through(design: Component, frame: Frame,
                       expected_outputs: Optional[int] = None,
                       max_cycles: int = 2_000_000,
                       source_stall: int = 0, sink_stall: int = 0,
                       strategy: str = EVENT) -> dict:
    """Convenience one-shot: push ``frame`` through ``design`` and collect results.

    Returns a dict with the received pixels, the cycle count and the achieved
    throughput (pixels per cycle), which the performance benches report.
    ``strategy`` selects the simulator's settle engine.
    """
    total_inputs = sum(len(row) for row in frame)
    if expected_outputs is None:
        expected_outputs = total_inputs
    system = VideoSystem(design, frames=[frame], source_stall=source_stall,
                         sink_stall=sink_stall)
    sim = system.simulate(expected_outputs, max_cycles=max_cycles,
                          strategy=strategy)
    pixels = system.received_pixels()
    return {
        "pixels": pixels,
        "cycles": sim.cycles,
        "inputs": total_inputs,
        "outputs": len(pixels),
        "throughput": len(pixels) / max(1, sim.cycles),
        "system": system,
        "simulator": sim,
    }
