"""Graph-composed pipeline scenarios: the `repro.flow` subsystem end to end.

Where :mod:`repro.designs.saa2vga` and :mod:`repro.designs.blur` each wire
*one* design between a source and a sink, the builders here compose several
of those designs — plus structural fork/split/merge/join nodes and
auto-inserted width adapters — into multi-stage streaming systems, all
through the declarative :class:`~repro.flow.PipelineGraph` API:

* :func:`build_blur_histogram_pipeline` — blur filter whose output is
  broadcast (``Fork``) to the video output *and* to a histogram statistics
  stage built from a vector container and a random iterator;
* :func:`build_dual_path_saa2vga` — the copy pipeline split over two
  parallel paths (``RoundRobinSplit``/``RoundRobinMerge``), round-tripping
  frames bit-exact;
* :func:`build_rgb_over_bus_pipeline` — 24-bit RGB pixels carried over an
  8-bit shared bus: the scenario declares only 24-bit endpoints and an
  8-bit copy core, and the elaborator inserts the down/up width converters
  automatically (Section 3.3, "requiring no designer intervention");
* :func:`build_copy_chain` — an N-stage copy chain, the sweepable
  "pipeline depth" axis of :mod:`repro.flow.sweep`;
* :func:`build_join_funnel` — split/merge through an arbiter-based
  ``Join``, for order-insensitive consumers.

Every builder returns an elaborated :class:`~repro.flow.Pipeline`, which
exposes ``input_fill``/``output_drain`` and therefore drops into
``VideoSystem``, ``run_stream_through``, ``repro.verify`` and
``repro.explore`` like any single design.
"""

from __future__ import annotations

from typing import List, Optional

from ..core import make_container, make_iterator
from ..core.algorithms import HistogramAlgorithm, golden_histogram
from ..flow import Pipeline, PipelineGraph
from ..rtl import Component
from .blur import BlurPatternDesign
from .saa2vga import Saa2VgaPatternDesign


class HistogramStage(Component):
    """Stream-statistics sink stage: histogram of every element it consumes.

    A pure *consumer* stage (an input stream port, no output): elements
    enter a read buffer, a forward iterator hands them to the
    :class:`~repro.core.algorithms.HistogramAlgorithm`, and the bin counts
    accumulate in a vector container accessed through a random iterator —
    the same pattern-library composition as the shipped designs.
    """

    style = "pattern"
    binding = "fifo"

    def __init__(self, name: str = "hist", width: int = 8, num_bins: int = 16,
                 capacity: int = 8, max_count: int = 1_000_000,
                 count_width: int = 16) -> None:
        super().__init__(name)
        self.width = width
        self.num_bins = num_bins
        self.rbuffer = self.child(make_container(
            "read_buffer", "fifo", "rbuffer", width=width, capacity=capacity))
        self.rbuffer_it = self.child(make_iterator(
            self.rbuffer, "forward", readable=True, name="rbuffer_it"))
        self.bins = self.child(make_container(
            "vector", "bram", "bins", width=count_width, capacity=num_bins))
        self.bins_it = self.child(make_iterator(
            self.bins, "random", readable=True, writable=True, name="bins_it"))
        self.algorithm = self.child(HistogramAlgorithm(
            "hist_alg", self.rbuffer_it, self.bins_it, num_bins=num_bins,
            sample_width=width, max_count=max_count))

        #: The stage's only stream port: elements to be counted.
        self.input_fill = self.rbuffer.fill

    @property
    def samples_counted(self) -> int:
        """Number of elements folded into the histogram so far."""
        return self.algorithm.elements_processed

    def counts(self) -> List[int]:
        """Current bin counts (bin 0 first)."""
        return self.bins.snapshot()

    def expected_counts(self, samples: List[int]) -> List[int]:
        """Golden model: the histogram of ``samples``."""
        return golden_histogram(samples, self.num_bins, self.width)


def build_blur_histogram_pipeline(name: str = "blurhist", line_width: int = 16,
                                  width: int = 8, num_bins: int = 16,
                                  fifo_depth: int = 4,
                                  hist_budget: int = 1_000_000) -> Pipeline:
    """Blur -> Fork -> (video output, histogram statistics stage).

    The blurred stream is broadcast: one copy leaves the pipeline as the
    output frame, the other accumulates into the histogram stage, which is
    reachable afterwards as ``pipeline.find("hist")``.  ``hist_budget``
    bounds how many samples the statistics stage will consume (keep it at
    least as large as the number of blurred pixels, or the fork will
    back-pressure the video path once the budget is spent).
    """
    blur = BlurPatternDesign(name="blur", line_width=line_width, width=width,
                             out_capacity=fifo_depth * 2)
    hist = HistogramStage("hist", width=width, num_bins=num_bins,
                          capacity=fifo_depth * 2, max_count=hist_budget)
    graph = PipelineGraph(name, input_width=width, output_width=width)
    blur_node = graph.stage(blur)
    fork = graph.fork("fork", width=width, ways=2)
    hist_node = graph.stage(hist)
    graph.connect(graph.INPUT, blur_node, depth=0)
    graph.connect(blur_node, fork, depth=fifo_depth)
    graph.connect(fork, graph.OUTPUT, depth=fifo_depth, src_port="out0")
    graph.connect(fork, hist_node, depth=fifo_depth, src_port="out1")
    graph.golden(blur.expected_output)
    return graph.elaborate()


def build_dual_path_saa2vga(name: str = "dualpath", width: int = 8,
                            capacity: int = 8, fifo_depth: int = 4,
                            binding: str = "fifo") -> Pipeline:
    """Split/merge dual-path copy pipeline, bit-exact end to end.

    Elements alternate between two independent saa2vga copy designs and are
    recollected in the same rotation, so the output stream equals the input
    stream exactly — whatever back-pressure either path sees.
    """
    graph = PipelineGraph(name, input_width=width, output_width=width)
    split = graph.split("split", width=width, ways=2)
    path_a = graph.stage(Saa2VgaPatternDesign(
        name="path_a", binding=binding, width=width, capacity=capacity))
    path_b = graph.stage(Saa2VgaPatternDesign(
        name="path_b", binding=binding, width=width, capacity=capacity))
    merge = graph.merge("merge", width=width, ways=2)
    graph.connect(graph.INPUT, split, depth=0)
    graph.connect(split, path_a, depth=fifo_depth)
    graph.connect(split, path_b, depth=fifo_depth)
    graph.connect(path_a, merge, depth=fifo_depth)
    graph.connect(path_b, merge, depth=fifo_depth)
    graph.connect(merge, graph.OUTPUT, depth=0)
    graph.golden(lambda pixels: list(pixels))
    return graph.elaborate()


def build_rgb_over_bus_pipeline(name: str = "rgbbus", pixel_width: int = 24,
                                bus_width: int = 8, capacity: int = 8,
                                fifo_depth: int = 4) -> Pipeline:
    """24-bit RGB pixels over an ``bus_width``-bit shared bus, bit-exact.

    The scenario instantiates **no** converter: it declares 24-bit pipeline
    endpoints and an 8-bit copy core, and the elaborator inserts the
    :class:`~repro.metagen.width_adapter.WidthDownConverter` /
    :class:`~repro.metagen.width_adapter.WidthUpConverter` pair (3 beats per
    pixel for 24 over 8) from the metagen adaptation plan on its own.
    """
    graph = PipelineGraph(name, input_width=pixel_width,
                          output_width=pixel_width)
    core = graph.stage(Saa2VgaPatternDesign(
        name="bus_copy", binding="fifo", width=bus_width, capacity=capacity))
    graph.connect(graph.INPUT, core, depth=fifo_depth)
    graph.connect(core, graph.OUTPUT, depth=fifo_depth)
    graph.golden(lambda pixels: list(pixels))
    return graph.elaborate()


def build_copy_chain(stages: int, name: Optional[str] = None, width: int = 8,
                     capacity: int = 8, fifo_depth: int = 4) -> Pipeline:
    """An N-deep chain of copy stages — the sweepable pipeline-depth axis."""
    if stages < 1:
        raise ValueError(f"a copy chain needs at least 1 stage, got {stages}")
    graph = PipelineGraph(name or f"chain{stages}", input_width=width,
                          output_width=width)
    nodes = [graph.stage(Saa2VgaPatternDesign(
        name=f"stage{i}", binding="fifo", width=width, capacity=capacity))
        for i in range(stages)]
    graph.connect(graph.INPUT, nodes[0], depth=0)
    for left, right in zip(nodes, nodes[1:]):
        graph.connect(left, right, depth=fifo_depth)
    graph.connect(nodes[-1], graph.OUTPUT, depth=0)
    graph.golden(lambda pixels: list(pixels))
    return graph.elaborate()


def build_join_funnel(name: str = "funnel", width: int = 8, capacity: int = 8,
                      fifo_depth: int = 4, policy: str = "roundrobin") -> Pipeline:
    """Split over two paths, recombined through an arbiter-based ``Join``.

    The join funnels whichever path has data (subject to the arbitration
    policy), so the output is a *permutation* of the input — the right
    merge for order-insensitive consumers.  No golden stream model is
    registered; callers check multiset equality instead.
    """
    graph = PipelineGraph(name, input_width=width, output_width=width)
    split = graph.split("split", width=width, ways=2)
    path_a = graph.stage(Saa2VgaPatternDesign(
        name="path_a", binding="fifo", width=width, capacity=capacity))
    path_b = graph.stage(Saa2VgaPatternDesign(
        name="path_b", binding="fifo", width=width, capacity=capacity))
    join = graph.join("join", width=width, ways=2, policy=policy)
    graph.connect(graph.INPUT, split, depth=0)
    graph.connect(split, path_a, depth=fifo_depth)
    graph.connect(split, path_b, depth=fifo_depth)
    graph.connect(path_a, join, depth=fifo_depth)
    graph.connect(path_b, join, depth=fifo_depth)
    graph.connect(join, graph.OUTPUT, depth=0)
    return graph.elaborate()
