"""The evaluated designs of Table 3, in pattern-based and hand-written form.

* ``saa2vga`` — stream copy between a read buffer and a write buffer, with a
  FIFO binding (row 1) or an external-SRAM binding (row 2);
* ``blur`` — 3x3 box filter over a 3-line-buffer read buffer (row 3).

:mod:`repro.designs.system` provides the common harness that drives any of
them with synthetic video frames.
"""

from .blur import BlurPatternDesign, build_blur_pattern
from .custom import BlurCustomDesign, Saa2VgaCustomFIFO, Saa2VgaCustomSRAM
from .saa2vga import Saa2VgaPatternDesign, build_saa2vga_pattern
from .system import VideoSystem, run_stream_through
from .pipelines import (
    HistogramStage,
    build_blur_histogram_pipeline,
    build_copy_chain,
    build_dual_path_saa2vga,
    build_join_funnel,
    build_rgb_over_bus_pipeline,
)

__all__ = [
    "Saa2VgaPatternDesign",
    "build_saa2vga_pattern",
    "BlurPatternDesign",
    "build_blur_pattern",
    "Saa2VgaCustomFIFO",
    "Saa2VgaCustomSRAM",
    "BlurCustomDesign",
    "VideoSystem",
    "run_stream_through",
    "HistogramStage",
    "build_blur_histogram_pipeline",
    "build_copy_chain",
    "build_dual_path_saa2vga",
    "build_join_funnel",
    "build_rgb_over_bus_pipeline",
]
