"""Pattern-based saa2vga designs (Table 3, rows ``saa2vga 1`` and ``saa2vga 2``).

The design is the "image processing circuit" of Figure 1/Figure 3: an input
read buffer fed by the video decoder, an output write buffer drained by the
VGA coder, and the stream copy algorithm between them — modelled exactly as
the pattern dictates, with containers accessed only through iterators.

The *only* difference between ``saa2vga 1`` and ``saa2vga 2`` is the binding
selected for the two buffer containers (on-chip FIFO versus external SRAM);
the model — containers, iterators, algorithm — is untouched, which is the
reuse claim of Section 3.3.
"""

from __future__ import annotations

from ..core import CopyAlgorithm, make_container, make_iterator
from ..rtl import Component


class Saa2VgaPatternDesign(Component):
    """Stream-copy video pipeline built from the pattern library.

    Parameters
    ----------
    binding:
        Physical binding for both buffer containers: ``"fifo"`` (Table 3 row
        ``saa2vga 1``) or ``"sram"`` (row ``saa2vga 2``).
    width:
        Pixel width in bits (8 for grayscale).
    capacity:
        Buffer capacity in elements.
    sram_latency:
        External memory latency, used only by the SRAM binding.

    Attributes
    ----------
    input_fill:
        Stream sink interface the video decoder pushes pixels into.
    output_drain:
        Stream source interface the VGA coder pulls pixels from.
    """

    style = "pattern"

    def __init__(self, name: str = "saa2vga", binding: str = "fifo",
                 width: int = 8, capacity: int = 64,
                 sram_latency: int = 2) -> None:
        super().__init__(name)
        self.binding = binding
        self.width = width
        self.capacity = capacity

        container_params = {"width": width, "capacity": capacity}
        if binding == "sram":
            container_params["sram_latency"] = sram_latency

        # Containers (Figure 3: rbuffer and wbuffer).
        self.rbuffer = self.child(make_container(
            "read_buffer", binding, "rbuffer", **container_params))
        self.wbuffer = self.child(make_container(
            "write_buffer", binding, "wbuffer", **container_params))

        # Iterators (Figure 3: rbuffer_it and wbuffer_it).
        self.rbuffer_it = self.child(make_iterator(
            self.rbuffer, "forward", readable=True, name="rbuffer_it"))
        self.wbuffer_it = self.child(make_iterator(
            self.wbuffer, "forward", writable=True, name="wbuffer_it"))

        # The algorithm sees only iterators, never containers or devices.
        self.algorithm = self.child(CopyAlgorithm(
            "copy", self.rbuffer_it, self.wbuffer_it))

        # Environment-facing interfaces.
        self.input_fill = self.rbuffer.fill
        self.output_drain = self.wbuffer.drain

    @property
    def pixels_processed(self) -> int:
        """Number of pixels the copy algorithm has moved."""
        return self.algorithm.elements_processed

    def expected_output(self, pixels: list) -> list:
        """Golden model for verification: the copy pipeline is the identity."""
        return list(pixels)

    def describe(self) -> dict:
        """Structural summary used by examples and the experiment reports."""
        return {
            "design": self.name,
            "style": self.style,
            "binding": self.binding,
            "containers": [self.rbuffer.path(), self.wbuffer.path()],
            "iterators": [self.rbuffer_it.path(), self.wbuffer_it.path()],
            "algorithm": self.algorithm.path(),
        }


def build_saa2vga_pattern(binding: str, width: int = 8, capacity: int = 64,
                          sram_latency: int = 2) -> Saa2VgaPatternDesign:
    """Convenience factory mirroring the bench/ example call sites."""
    return Saa2VgaPatternDesign(
        name=f"saa2vga_{binding}", binding=binding, width=width,
        capacity=capacity, sram_latency=sram_latency)
