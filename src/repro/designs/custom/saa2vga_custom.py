"""Ad-hoc (custom) saa2vga baselines.

These are the hand-written implementations the paper compares against in
Table 3: the same stream-copy function, but with "the coupling between
algorithms, data structures and hardware interface handling" that the pattern
removes.  The FIFO variant drives the FIFO core signals directly; the SRAM
variant re-implements, by hand and twice, the circular-buffer pointer
management that the generated containers encapsulate — which is exactly the
modification burden Section 2 complains about.

Both expose the same environment-facing interfaces (``input_fill`` /
``output_drain``) as the pattern designs so that the identical test benches,
video sources and sinks can drive either implementation.
"""

from __future__ import annotations

from ...core.interfaces import StreamSinkIface, StreamSourceIface
from ...primitives import AsyncSRAM, SyncFIFO
from ...rtl import FSM, Component, clog2


class Saa2VgaCustomFIFO(Component):
    """Hand-written stream copy over two FIFO cores (baseline for ``saa2vga 1``)."""

    style = "custom"
    binding = "fifo"

    def __init__(self, name: str = "saa2vga_custom_fifo", width: int = 8,
                 capacity: int = 64) -> None:
        super().__init__(name)
        self.width = width
        self.capacity = capacity

        self.in_fifo = self.child(SyncFIFO(f"{name}_in_fifo", depth=capacity,
                                           width=width))
        self.out_fifo = self.child(SyncFIFO(f"{name}_out_fifo", depth=capacity,
                                            width=width))

        self.input_fill = StreamSinkIface(self, width, name=f"{name}_input")
        self.output_drain = StreamSourceIface(self, width, name=f"{name}_output")

        # Frame-synchronisation pixel counter (same observability the
        # pattern-based algorithm keeps).
        self.count = self.state(32, name=f"{name}_count")

        @self.comb
        def glue() -> None:
            # Environment side, wired directly to the FIFO cores.
            self.in_fifo.din.next = self.input_fill.data.value
            self.in_fifo.push.next = self.input_fill.push.value
            self.input_fill.ready.next = 0 if self.in_fifo.full.value else 1
            self.output_drain.data.next = self.out_fifo.dout.value
            self.output_drain.valid.next = 0 if self.out_fifo.empty.value else 1
            self.out_fifo.pop.next = self.output_drain.pop.value
            # The copy "algorithm": direct FIFO-to-FIFO transfer, one pixel per
            # cycle whenever the input has data and the output has room.
            transfer = (not self.in_fifo.empty.value
                        and not self.out_fifo.full.value)
            strobe = 1 if transfer else 0
            self.in_fifo.pop.next = strobe
            self.out_fifo.push.next = strobe
            self.out_fifo.din.next = self.in_fifo.dout.value

        @self.seq
        def account() -> None:
            if not self.in_fifo.empty.value and not self.out_fifo.full.value:
                self.count.next = self.count.value + 1

    @property
    def pixels_processed(self) -> int:
        """Number of pixels moved from the input FIFO to the output FIFO."""
        return self.count.value

    def describe(self) -> dict:
        return {"design": self.name, "style": self.style, "binding": self.binding}


class Saa2VgaCustomSRAM(Component):
    """Hand-written stream copy over two external SRAMs (baseline for ``saa2vga 2``).

    The input stream is staged in a circular buffer in the first SRAM and the
    output stream in a second circular buffer in the second SRAM, with all
    four pointers, both holding registers and both access FSMs written by
    hand — the "radical change" in implementation the paper's motivating
    example describes when the sequential buffer is replaced by a RAM.
    """

    style = "custom"
    binding = "sram"

    def __init__(self, name: str = "saa2vga_custom_sram", width: int = 8,
                 capacity: int = 64, sram_latency: int = 2) -> None:
        super().__init__(name)
        self.width = width
        self.capacity = capacity

        self.in_sram = self.child(AsyncSRAM(f"{name}_in_sram", depth=capacity,
                                            width=width, latency=sram_latency))
        self.out_sram = self.child(AsyncSRAM(f"{name}_out_sram", depth=capacity,
                                             width=width, latency=sram_latency))

        self.input_fill = StreamSinkIface(self, width, name=f"{name}_input")
        self.output_drain = StreamSourceIface(self, width, name=f"{name}_output")

        ptr = clog2(capacity)
        cnt = clog2(capacity + 1)

        # Input-side circular buffer state.
        self._in_head = self.state(ptr, name=f"{name}_in_head")
        self._in_tail = self.state(ptr, name=f"{name}_in_tail")
        self._in_count = self.state(cnt, name=f"{name}_in_count")
        self._in_hold = self.state(width, name=f"{name}_in_hold")
        self._in_hold_valid = self.state(1, name=f"{name}_in_hold_valid")
        # Pixel register carrying data from the input buffer to the output buffer.
        self._copy_reg = self.state(width, name=f"{name}_copy_reg")
        self._copy_valid = self.state(1, name=f"{name}_copy_valid")
        # Output-side circular buffer state.
        self._out_head = self.state(ptr, name=f"{name}_out_head")
        self._out_tail = self.state(ptr, name=f"{name}_out_tail")
        self._out_count = self.state(cnt, name=f"{name}_out_count")
        self._out_pref = self.state(width, name=f"{name}_out_pref")
        self._out_pref_valid = self.state(1, name=f"{name}_out_pref_valid")

        self.count = self.state(32, name=f"{name}_count")

        self._in_fsm = FSM(self, ["IDLE", "WRITE", "READ", "RELEASE"],
                           name=f"{name}_in_ctrl")
        self._out_fsm = FSM(self, ["IDLE", "WRITE", "READ", "RELEASE"],
                            name=f"{name}_out_ctrl")

        @self.comb
        def handshake() -> None:
            self.input_fill.ready.next = 0 if self._in_hold_valid.value else 1
            self.output_drain.valid.next = self._out_pref_valid.value
            self.output_drain.data.next = self._out_pref.value

        @self.seq
        def input_side() -> None:
            fsm = self._in_fsm
            if self.input_fill.push.value and not self._in_hold_valid.value:
                self._in_hold.next = self.input_fill.data.value
                self._in_hold_valid.next = 1
            if fsm.is_in("IDLE"):
                if self._in_hold_valid.value and self._in_count.value < self.capacity:
                    self.in_sram.addr.next = self._in_tail.value
                    self.in_sram.wdata.next = self._in_hold.value
                    self.in_sram.we.next = 1
                    self.in_sram.req.next = 1
                    fsm.goto("WRITE")
                elif self._in_count.value > 0 and not self._copy_valid.value:
                    self.in_sram.addr.next = self._in_head.value
                    self.in_sram.we.next = 0
                    self.in_sram.req.next = 1
                    fsm.goto("READ")
            elif fsm.is_in("WRITE"):
                if self.in_sram.ack.value:
                    self._in_tail.next = (self._in_tail.value + 1) % self.capacity
                    self._in_count.next = self._in_count.value + 1
                    self._in_hold_valid.next = 0
                    self.in_sram.req.next = 0
                    fsm.goto("RELEASE")
            elif fsm.is_in("READ"):
                if self.in_sram.ack.value:
                    self._copy_reg.next = self.in_sram.rdata.value
                    self._copy_valid.next = 1
                    self._in_head.next = (self._in_head.value + 1) % self.capacity
                    self._in_count.next = self._in_count.value - 1
                    self.in_sram.req.next = 0
                    self.count.next = self.count.value + 1
                    fsm.goto("RELEASE")
            elif fsm.is_in("RELEASE"):
                if not self.in_sram.ack.value:
                    fsm.goto("IDLE")

        @self.seq
        def output_side() -> None:
            fsm = self._out_fsm
            if self.output_drain.pop.value and self._out_pref_valid.value:
                self._out_pref_valid.next = 0
            if fsm.is_in("IDLE"):
                if self._copy_valid.value and self._out_count.value < self.capacity:
                    self.out_sram.addr.next = self._out_tail.value
                    self.out_sram.wdata.next = self._copy_reg.value
                    self.out_sram.we.next = 1
                    self.out_sram.req.next = 1
                    fsm.goto("WRITE")
                elif self._out_count.value > 0 and not self._out_pref_valid.value:
                    self.out_sram.addr.next = self._out_head.value
                    self.out_sram.we.next = 0
                    self.out_sram.req.next = 1
                    fsm.goto("READ")
            elif fsm.is_in("WRITE"):
                if self.out_sram.ack.value:
                    self._out_tail.next = (self._out_tail.value + 1) % self.capacity
                    self._out_count.next = self._out_count.value + 1
                    self._copy_valid.next = 0
                    self.out_sram.req.next = 0
                    fsm.goto("RELEASE")
            elif fsm.is_in("READ"):
                if self.out_sram.ack.value:
                    self._out_pref.next = self.out_sram.rdata.value
                    self._out_pref_valid.next = 1
                    self._out_head.next = (self._out_head.value + 1) % self.capacity
                    self._out_count.next = self._out_count.value - 1
                    self.out_sram.req.next = 0
                    fsm.goto("RELEASE")
            elif fsm.is_in("RELEASE"):
                if not self.out_sram.ack.value:
                    fsm.goto("IDLE")

    @property
    def pixels_processed(self) -> int:
        """Number of pixels read out of the input buffer by the copy logic."""
        return self.count.value

    def describe(self) -> dict:
        return {"design": self.name, "style": self.style, "binding": self.binding}
