"""Ad-hoc (custom) blur baseline.

The hand-written counterpart of the pattern-based blur design: the same
3-line buffer and output FIFO devices, but with the window management, the
column history, the horizontal position counter and the device handshakes
all folded into one component that manipulates the device ports directly.
Functionally it produces the exact same pixel stream as the pattern design,
which is what lets Table 3 compare their resource usage one-to-one.
"""

from __future__ import annotations

from ...core.algorithms.blur import blur_kernel
from ...core.interfaces import StreamSinkIface, StreamSourceIface
from ...primitives import LineBuffer3, SyncFIFO
from ...rtl import Component, clog2


class BlurCustomDesign(Component):
    """Hand-written 3x3 blur over a 3-line buffer and an output FIFO."""

    style = "custom"
    binding = "linebuffer3"

    #: Same datapath cost hint as the pattern-based algorithm (the adder tree
    #: and the divide-by-nine constant multiplier are identical logic).
    logic_cost_luts = 96

    def __init__(self, name: str = "blur_custom", line_width: int = 64,
                 width: int = 8, out_capacity: int = 64) -> None:
        super().__init__(name)
        if line_width < 3:
            raise ValueError(f"line width must be >= 3, got {line_width}")
        self.line_width = line_width
        self.width = width

        self.linebuf = self.child(LineBuffer3(
            f"{name}_lb3", line_width=line_width, width=width))
        self.out_fifo = self.child(SyncFIFO(
            f"{name}_out_fifo", depth=out_capacity, width=width))

        self.input_fill = StreamSinkIface(self, width, name=f"{name}_input")
        self.output_drain = StreamSourceIface(self, width, name=f"{name}_output")

        # Input holding register (decouples the pixel source from the filter).
        self._hold = self.state(width, name=f"{name}_hold")
        self._hold_valid = self.state(1, name=f"{name}_hold_valid")
        # Column history for the two previous columns of the window.
        self._hist = [
            [self.state(width, name=f"{name}_c{col}_{row}") for row in range(3)]
            for col in range(2)
        ]
        self._x = self.state(clog2(max(2, line_width)), name=f"{name}_x")
        self.count = self.state(32, name=f"{name}_count")

        @self.comb
        def glue() -> None:
            hold_valid = self._hold_valid.value
            warmed_up = self.linebuf.window_valid.value
            x = self._x.value
            emit_needed = x >= 2

            # Decide whether the held pixel advances the line buffer this cycle.
            room = not self.out_fifo.full.value
            consume = hold_valid and (not warmed_up or not emit_needed or room)

            # Environment handshake for the incoming pixel stream: pass-through
            # acceptance sustains one pixel per clock, like the pattern version.
            self.input_fill.ready.next = 1 if (not hold_valid or consume) else 0
            self.linebuf.din.next = self._hold.value
            self.linebuf.push.next = 1 if consume else 0

            # Blur datapath: the two stored columns plus the incoming column.
            window = [reg.value for col in self._hist for reg in col]
            window += [self.linebuf.col_top.value, self.linebuf.col_mid.value,
                       self.linebuf.col_bot.value]
            emit = consume and warmed_up and emit_needed
            self.out_fifo.din.next = blur_kernel(window)
            self.out_fifo.push.next = 1 if emit else 0

            # Environment handshake for the outgoing pixel stream.
            self.output_drain.data.next = self.out_fifo.dout.value
            self.output_drain.valid.next = 0 if self.out_fifo.empty.value else 1
            self.out_fifo.pop.next = self.output_drain.pop.value

        @self.seq
        def control() -> None:
            hold_valid = self._hold_valid.value
            warmed_up = self.linebuf.window_valid.value
            x = self._x.value
            emit_needed = x >= 2
            room = not self.out_fifo.full.value
            consume = hold_valid and (not warmed_up or not emit_needed or room)
            accepted = self.input_fill.push.value and (not hold_valid or consume)

            if accepted:
                self._hold.next = self.input_fill.data.value
                self._hold_valid.next = 1
            elif consume:
                self._hold_valid.next = 0
            if consume:
                if warmed_up:
                    # Shift the column history and advance the position counter.
                    for row in range(3):
                        self._hist[0][row].next = self._hist[1][row].value
                    self._hist[1][0].next = self.linebuf.col_top.value
                    self._hist[1][1].next = self.linebuf.col_mid.value
                    self._hist[1][2].next = self.linebuf.col_bot.value
                    if x + 1 >= self.line_width:
                        self._x.next = 0
                    else:
                        self._x.next = x + 1
                    if emit_needed:
                        self.count.next = self.count.value + 1

    @property
    def pixels_processed(self) -> int:
        """Number of filtered output pixels produced."""
        return self.count.value

    def describe(self) -> dict:
        return {"design": self.name, "style": self.style, "binding": self.binding}
