"""Hand-written (ad-hoc) baseline designs used as the comparison points of Table 3."""

from .blur_custom import BlurCustomDesign
from .saa2vga_custom import Saa2VgaCustomFIFO, Saa2VgaCustomSRAM

__all__ = [
    "Saa2VgaCustomFIFO",
    "Saa2VgaCustomSRAM",
    "BlurCustomDesign",
]
