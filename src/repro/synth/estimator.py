"""Structural resource estimation (the synthesis-tool substitute).

The original paper synthesises VHDL with a commercial flow and reports
flip-flops, LUTs, block RAMs and clock frequency (Table 3).  Offline we
cannot run a synthesis tool, so this module estimates the same quantities
*structurally* from the elaborated component hierarchy:

* **flip-flops** — one per declared register bit (``Component.state``);
  components marked ``external`` (off-chip devices such as the SRAM model)
  contribute nothing;
* **LUTs** — a per-component heuristic combining register support logic,
  process glue, memory addressing and an explicit ``logic_cost_luts``
  datapath hint (used e.g. by the blur adder tree);
* **block RAMs** — declared memories at or above the device threshold map to
  block RAM; smaller ones to distributed (LUT) RAM; external memories to the
  board's SRAM;
* **fmax** — derived from the deepest combinational ``logic_levels``
  annotation and whether the design crosses the external-memory interface.

Crucially, components marked ``transparent`` (the containers' renaming glue
and the simple iterators) contribute **zero** own logic: this is the
"iterators ... are only wrappers that will be dissolved at the time of
synthesizing the design" behaviour, and it can be disabled to quantify what
the overhead would be without dissolution (the ablation bench).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..rtl import Component
from .target import TargetBoard, default_target


@dataclass
class Resources:
    """Resource usage of one component (or an aggregate)."""

    ffs: int = 0
    luts: int = 0
    brams: int = 0
    dist_ram_luts: int = 0
    external_bits: int = 0

    def __add__(self, other: "Resources") -> "Resources":
        return Resources(
            ffs=self.ffs + other.ffs,
            luts=self.luts + other.luts,
            brams=self.brams + other.brams,
            dist_ram_luts=self.dist_ram_luts + other.dist_ram_luts,
            external_bits=self.external_bits + other.external_bits,
        )

    @property
    def total_luts(self) -> int:
        """Logic LUTs plus LUTs spent as distributed RAM."""
        return self.luts + self.dist_ram_luts

    def as_dict(self) -> Dict[str, int]:
        return {
            "ffs": self.ffs,
            "luts": self.total_luts,
            "brams": self.brams,
            "external_bits": self.external_bits,
        }


@dataclass
class ComponentEstimate:
    """Per-component entry of an estimation report."""

    path: str
    type_name: str
    transparent: bool
    external: bool
    resources: Resources
    logic_levels: int


@dataclass
class EstimateReport:
    """Complete estimation result for a design."""

    design: str
    target: str
    total: Resources
    fmax_mhz: float
    logic_levels: int
    uses_external_memory: bool
    components: List[ComponentEstimate] = field(default_factory=list)

    def row(self) -> Dict[str, object]:
        """A Table-3-style row for this design."""
        return {
            "design": self.design,
            "FFs": self.total.ffs,
            "LUTs": self.total.total_luts,
            "blockRAM": self.total.brams,
            "clk_MHz": self.fmax_mhz,
        }

    def breakdown(self) -> List[Dict[str, object]]:
        """Per-component contribution, largest first."""
        entries = sorted(self.components,
                         key=lambda item: item.resources.total_luts + item.resources.ffs,
                         reverse=True)
        return [
            {
                "path": entry.path,
                "type": entry.type_name,
                "FFs": entry.resources.ffs,
                "LUTs": entry.resources.total_luts,
                "blockRAM": entry.resources.brams,
                "transparent": entry.transparent,
            }
            for entry in entries
        ]


class ResourceEstimator:
    """Estimate FPGA resources for an elaborated component tree.

    Parameters
    ----------
    board:
        Target board (device + external memories); defaults to the XSB-300E.
    dissolve_wrappers:
        When True (the default, matching real synthesis), components marked
        ``transparent`` contribute no own logic.  Setting it to False charges
        wrappers as if every renamed signal needed a LUT and every interface
        register were kept — the pessimistic "no dissolution" ablation.
    """

    #: LUTs of control logic charged per register bit (enables, next-state muxing).
    LUT_PER_REG_BIT = 0.85
    #: LUTs charged per combinational process (interface decode glue).
    LUT_PER_COMB_PROC = 3
    #: LUTs charged per sequential process (clock-enable / reset fanout).
    LUT_PER_SEQ_PROC = 2
    #: LUTs charged per memory address bit (read/write address decoding).
    LUT_PER_ADDR_BIT = 1.5
    #: Distributed RAM efficiency: one LUT implements a 16x1 RAM.
    DIST_RAM_BITS_PER_LUT = 16

    def __init__(self, board: Optional[TargetBoard] = None,
                 dissolve_wrappers: bool = True) -> None:
        self.board = board or default_target()
        self.device = self.board.device
        self.dissolve_wrappers = dissolve_wrappers

    # -- per-component estimation -----------------------------------------------------

    def estimate_component(self, component: Component) -> ComponentEstimate:
        """Estimate the *own* contribution of a single component (children excluded)."""
        external = bool(getattr(component, "external", False))
        transparent = bool(component.transparent) and self.dissolve_wrappers
        resources = Resources()
        logic_levels = int(getattr(component, "logic_levels", 3))

        if external:
            resources.external_bits = component.memory_bits() + component.state_bits()
            return ComponentEstimate(component.path(), type(component).__name__,
                                     transparent, external, resources, logic_levels)

        if not transparent:
            reg_bits = component.state_bits()
            resources.ffs = reg_bits
            luts = reg_bits * self.LUT_PER_REG_BIT
            luts += len(component.comb_procs) * self.LUT_PER_COMB_PROC
            luts += len(component.seq_procs) * self.LUT_PER_SEQ_PROC
            luts += float(getattr(component, "logic_cost_luts", 0))
            resources.luts = int(math.ceil(luts)) if luts else 0
        else:
            # A dissolved wrapper: only an explicitly-annotated datapath cost
            # survives (e.g. a transform function hosted in a wrapper), which
            # in practice is zero for the library's iterators and containers.
            resources.luts = int(getattr(component, "logic_cost_luts", 0))

        # Memories are physical whether or not the owner is a wrapper.
        for memory in component.memories:
            if memory.bits >= self.device.bram_threshold_bits:
                resources.brams += self.device.bram_blocks_for(memory.bits)
            else:
                resources.dist_ram_luts += -(-memory.bits // self.DIST_RAM_BITS_PER_LUT)
            if not transparent:
                resources.luts += int(math.ceil(
                    math.log2(max(2, memory.depth)) * self.LUT_PER_ADDR_BIT))

        if getattr(component, "logic_cost_luts", 0) and logic_levels == 3:
            # Datapath logic deepens the critical path; approximate one extra
            # level per 64 LUTs of annotated datapath.
            logic_levels += max(1, int(getattr(component, "logic_cost_luts")) // 64)

        return ComponentEstimate(component.path(), type(component).__name__,
                                 transparent, external, resources, logic_levels)

    # -- whole-design estimation -------------------------------------------------------

    def estimate(self, design: Component) -> EstimateReport:
        """Estimate a complete design (the component and all descendants)."""
        entries = [self.estimate_component(comp) for comp in design.walk()]
        total = Resources()
        for entry in entries:
            total = total + entry.resources
        uses_external = any(entry.external for entry in entries)
        levels = max(entry.logic_levels for entry in entries)
        fmax = self.device.fmax_mhz(levels, uses_external)
        report = EstimateReport(
            design=design.name,
            target=self.board.name,
            total=total,
            fmax_mhz=fmax,
            logic_levels=levels,
            uses_external_memory=uses_external,
            components=entries,
        )
        self._check_capacity(report)
        return report

    def _check_capacity(self, report: EstimateReport) -> None:
        """Record device over-subscription as an attribute (never raises)."""
        device = self.device
        report.fits_device = (  # type: ignore[attr-defined]
            report.total.ffs <= device.total_ffs
            and report.total.total_luts <= device.total_luts
            and report.total.brams <= device.total_brams)


def estimate_design(design: Component, board: Optional[TargetBoard] = None,
                    dissolve_wrappers: bool = True) -> EstimateReport:
    """One-shot convenience wrapper around :class:`ResourceEstimator`."""
    return ResourceEstimator(board=board,
                             dissolve_wrappers=dissolve_wrappers).estimate(design)
