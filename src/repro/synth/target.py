"""Target platform models.

The paper's experiments target the XESS XSB-300E prototyping board, whose
FPGA is a Xilinx Spartan-IIE XC2S300E and which also carries external
asynchronous SRAM.  Since no synthesis tool is available offline, the
reproduction models the *capacity and timing characteristics* of that target
so the resource estimator can express its results in the same units as
Table 3 (flip-flops, 4-input LUTs, 4-kbit block RAMs, clock MHz).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict


@dataclass(frozen=True)
class TargetDevice:
    """Capacity and timing model of an FPGA device."""

    name: str
    #: Total number of flip-flops available.
    total_ffs: int
    #: Total number of 4-input LUTs available.
    total_luts: int
    #: Number of block RAMs and their size in bits.
    total_brams: int
    bram_bits: int
    #: Memories at or above this many bits are mapped to block RAM; smaller
    #: ones are implemented in distributed (LUT) RAM.
    bram_threshold_bits: int
    #: Base clock period achievable by a shallow (3-level) synchronous path,
    #: in nanoseconds, and the incremental cost per extra logic level.
    base_period_ns: float
    period_per_level_ns: float
    #: Extra period incurred by paths that cross the external memory interface.
    external_io_penalty_ns: float

    def bram_blocks_for(self, bits: int) -> int:
        """Number of block RAMs needed to hold ``bits`` of storage."""
        if bits <= 0:
            return 0
        return -(-bits // self.bram_bits)

    def fmax_mhz(self, logic_levels: int, uses_external_memory: bool) -> float:
        """Estimated maximum clock frequency for a design."""
        period = self.base_period_ns
        period += self.period_per_level_ns * max(0, logic_levels - 3)
        if uses_external_memory:
            period += self.external_io_penalty_ns
        return round(1000.0 / period, 1)


@dataclass(frozen=True)
class TargetBoard:
    """A prototyping board: an FPGA plus off-chip memories."""

    name: str
    device: TargetDevice
    #: Name -> size in bits of the external memories available on the board.
    external_memories: Dict[str, int] = field(default_factory=dict)

    def external_capacity_bits(self) -> int:
        """Total off-chip storage available."""
        return sum(self.external_memories.values())


#: Xilinx Spartan-IIE XC2S300E (the FPGA of the XSB-300E board):
#: 3072 slices = 6144 LUTs / 6144 FFs, 16 x 4-kbit block RAMs.
XC2S300E = TargetDevice(
    name="XC2S300E",
    total_ffs=6144,
    total_luts=6144,
    total_brams=16,
    bram_bits=4096,
    bram_threshold_bits=2048,
    base_period_ns=10.2,
    period_per_level_ns=0.3,
    external_io_penalty_ns=0.45,
)

#: The XESS XSB-300E board: the XC2S300E plus 2 x 256K x 16 external SRAM.
XSB300E = TargetBoard(
    name="XSB-300E",
    device=XC2S300E,
    external_memories={
        "sram_bank0": 256 * 1024 * 16,
        "sram_bank1": 256 * 1024 * 16,
    },
)


def default_target() -> TargetBoard:
    """The board used throughout the reproduction (XSB-300E, as in the paper)."""
    return XSB300E
