"""Synthesis-estimation subsystem: the offline substitute for the paper's FPGA flow.

Provides the Spartan-IIE / XSB-300E target model, a structural resource
estimator (FFs, LUTs, block RAMs, fmax) with wrapper dissolution, report
formatting in the paper's Table-3 style, and the design-space
characterisation harness of Section 3.4.
"""

from .characterize import (
    CharacterizationPoint,
    characterize_buffer_binding,
    characterize_design_space,
    estimate_power_mw,
    measure_stream_cycles_per_element,
    pareto_front,
)
from .estimator import (
    ComponentEstimate,
    EstimateReport,
    ResourceEstimator,
    Resources,
    estimate_design,
)
from .report import DesignComparison, format_table, overhead_summary, table3
from .target import XC2S300E, XSB300E, TargetBoard, TargetDevice, default_target

__all__ = [
    "TargetDevice",
    "TargetBoard",
    "XC2S300E",
    "XSB300E",
    "default_target",
    "Resources",
    "ComponentEstimate",
    "EstimateReport",
    "ResourceEstimator",
    "estimate_design",
    "DesignComparison",
    "format_table",
    "table3",
    "overhead_summary",
    "CharacterizationPoint",
    "characterize_buffer_binding",
    "characterize_design_space",
    "measure_stream_cycles_per_element",
    "estimate_power_mw",
    "pareto_front",
]
