"""Report formatting for the reproduced experiments.

Produces the "pattern/custom" cell format of Table 3, plain-text tables for
the benches' console output, and the overhead summary backing the paper's
headline claim ("there is a negligible overhead for the pattern-based
implementation").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from .estimator import EstimateReport


@dataclass
class DesignComparison:
    """One row of Table 3: a design in pattern-based and custom form."""

    label: str
    pattern: EstimateReport
    custom: EstimateReport

    def cells(self) -> Dict[str, str]:
        """Render the row with the paper's ``pattern/custom`` cell format."""
        pattern_row = self.pattern.row()
        custom_row = self.custom.row()
        return {
            "Design": self.label,
            "FFs": f"{pattern_row['FFs']}/{custom_row['FFs']}",
            "LUTs": f"{pattern_row['LUTs']}/{custom_row['LUTs']}",
            "blockRAM": f"{pattern_row['blockRAM']}/{custom_row['blockRAM']}",
            "clk MHz": f"{pattern_row['clk_MHz']:.0f}/{custom_row['clk_MHz']:.0f}",
        }

    def overhead(self) -> Dict[str, float]:
        """Relative overhead of the pattern version for each metric (1.0 = equal)."""
        result: Dict[str, float] = {}
        pattern_row = self.pattern.row()
        custom_row = self.custom.row()
        for key in ("FFs", "LUTs", "blockRAM"):
            custom_value = custom_row[key]
            pattern_value = pattern_row[key]
            if custom_value == 0:
                result[key] = 1.0 if pattern_value == 0 else float("inf")
            else:
                result[key] = pattern_value / custom_value
        # For frequency, "overhead" means slowdown: custom / pattern.
        if pattern_row["clk_MHz"]:
            result["clk_MHz"] = custom_row["clk_MHz"] / pattern_row["clk_MHz"]
        return result


def format_table(rows: Sequence[Dict[str, object]], title: str = "") -> str:
    """Render a list of dict rows as an aligned plain-text table."""
    if not rows:
        return f"{title}\n(empty)\n" if title else "(empty)\n"
    columns = list(rows[0].keys())
    widths = {col: len(str(col)) for col in columns}
    for row in rows:
        for col in columns:
            widths[col] = max(widths[col], len(str(row.get(col, ""))))
    lines: List[str] = []
    if title:
        lines.append(title)
    header = "  ".join(str(col).ljust(widths[col]) for col in columns)
    lines.append(header)
    lines.append("  ".join("-" * widths[col] for col in columns))
    for row in rows:
        lines.append("  ".join(str(row.get(col, "")).ljust(widths[col])
                               for col in columns))
    return "\n".join(lines) + "\n"


def table3(comparisons: Sequence[DesignComparison]) -> str:
    """Render the reproduced Table 3 ("Design experiments")."""
    rows = [comparison.cells() for comparison in comparisons]
    return format_table(rows, title="Table 3. Design experiments (pattern/custom).")


def overhead_summary(comparisons: Sequence[DesignComparison]) -> Dict[str, float]:
    """Worst-case pattern-versus-custom overhead across all designs and metrics.

    A value of 1.0 means the pattern-based implementation never uses more of
    that resource than the hand-written one; 1.05 means at most 5% more.
    """
    worst: Dict[str, float] = {}
    for comparison in comparisons:
        for key, value in comparison.overhead().items():
            if key == "clk_MHz":
                # Ratios below 1.0 would mean the pattern version is *faster*;
                # the claim is about not being slower, so track the maximum of
                # custom/pattern... inverted for consistency with area metrics.
                value = 1.0 / value if value else float("inf")
            worst[key] = max(worst.get(key, 0.0), value)
    return worst
