"""Design-space characterisation of container bindings (Section 3.4).

"In this paper, we characterized all the physical devices available in the
target platform (the XSB-300E prototype board from XESS).  We obtained
information about data access times for every container, area, power
consumption ...  This characterization of the design space would delimit the
region of interest given a certain set of constraints."

This module reproduces that step: for every (container kind, binding,
capacity) point it reports the estimated area (FFs/LUTs/block RAMs), a power
proxy, and the *measured* streaming throughput obtained by simulating a copy
through the container pair.  The benches use it to regenerate the FIFO-vs-
SRAM trade-off the paper describes ("the first one provides maximum
performance at the highest cost; the SRAM implementation is much smaller,
but performance will depend on memory access times").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..core import CopyAlgorithm, make_container, make_iterator
from ..rtl import EVENT, Component
from ..video import flatten, random_frame
from .estimator import EstimateReport, ResourceEstimator
from .target import TargetBoard, default_target


@dataclass
class CharacterizationPoint:
    """One point of the design space: a buffer binding at a given capacity."""

    kind: str
    binding: str
    capacity: int
    width: int
    area: EstimateReport
    cycles_per_element: float
    power_mw: float

    def row(self) -> Dict[str, object]:
        return {
            "container": self.kind,
            "binding": self.binding,
            "capacity": self.capacity,
            "width": self.width,
            "FFs": self.area.total.ffs,
            "LUTs": self.area.total.total_luts,
            "blockRAM": self.area.total.brams,
            "cycles/elem": round(self.cycles_per_element, 2),
            "power_mW": round(self.power_mw, 1),
        }


def estimate_power_mw(report: EstimateReport, toggle_rate: float = 0.25) -> float:
    """Crude dynamic-power proxy for a characterised block.

    The paper reports power characterisation without giving its model; as a
    stand-in we charge a per-resource switching cost scaled by an assumed
    toggle rate, plus a fixed cost for driving the external memory bus.  Only
    *relative* comparisons between bindings are meaningful.
    """
    total = report.total
    power = 0.018 * total.total_luts + 0.011 * total.ffs + 1.6 * total.brams
    if report.uses_external_memory:
        power += 4.0
    return power * (toggle_rate / 0.25)


class _BufferPair(Component):
    """Read buffer -> copy -> write buffer, used to measure streaming latency."""

    def __init__(self, binding: str, width: int, capacity: int,
                 extra_params: Optional[dict] = None) -> None:
        super().__init__(f"char_{binding}")
        params = {"width": width, "capacity": capacity}
        params.update(extra_params or {})
        self.rbuffer = self.child(make_container("read_buffer", binding,
                                                 "rbuffer", **params))
        self.wbuffer = self.child(make_container("write_buffer", binding,
                                                 "wbuffer", **params))
        self.rit = self.child(make_iterator(self.rbuffer, "forward",
                                            readable=True, name="rit"))
        self.wit = self.child(make_iterator(self.wbuffer, "forward",
                                            writable=True, name="wit"))
        self.copy = self.child(CopyAlgorithm("copy", self.rit, self.wit))
        self.input_fill = self.rbuffer.fill
        self.output_drain = self.wbuffer.drain


def measure_stream_cycles_per_element(binding: str, width: int = 8,
                                      capacity: int = 64, elements: int = 64,
                                      extra_params: Optional[dict] = None,
                                      max_cycles: int = 200_000,
                                      strategy: str = EVENT) -> float:
    """Simulate a copy of ``elements`` through a buffer pair and report cycles/element."""
    from ..designs.system import run_stream_through  # local import avoids a cycle

    design = _BufferPair(binding, width, capacity, extra_params)
    frame = random_frame(elements, 1, seed=11, max_value=(1 << width) - 1)
    result = run_stream_through(design, frame, max_cycles=max_cycles,
                                strategy=strategy)
    assert result["pixels"] == flatten(frame)
    return result["cycles"] / elements


def characterize_buffer_binding(binding: str, capacity: int, width: int = 8,
                                board: Optional[TargetBoard] = None,
                                elements: int = 64,
                                extra_params: Optional[dict] = None) -> CharacterizationPoint:
    """Characterise one buffer binding: area of a read buffer + measured throughput."""
    board = board or default_target()
    estimator = ResourceEstimator(board=board)
    params = {"width": width, "capacity": capacity}
    params.update(extra_params or {})
    container = make_container("read_buffer", binding, f"rb_{binding}_{capacity}",
                               **params)
    area = estimator.estimate(container)
    cycles = measure_stream_cycles_per_element(
        binding, width=width, capacity=capacity, elements=elements,
        extra_params=extra_params)
    return CharacterizationPoint(
        kind="read_buffer", binding=binding, capacity=capacity, width=width,
        area=area, cycles_per_element=cycles, power_mw=estimate_power_mw(area))


def characterize_design_space(capacities: Sequence[int] = (32, 64, 128, 256, 512),
                              bindings: Sequence[str] = ("fifo", "sram"),
                              width: int = 8,
                              board: Optional[TargetBoard] = None,
                              elements: int = 48) -> List[CharacterizationPoint]:
    """Sweep buffer bindings over capacities — the Section 3.4 characterisation."""
    points: List[CharacterizationPoint] = []
    for binding in bindings:
        for capacity in capacities:
            points.append(characterize_buffer_binding(
                binding, capacity, width=width, board=board, elements=elements))
    return points


def pareto_front(points: Sequence[CharacterizationPoint]) -> List[CharacterizationPoint]:
    """Points not dominated in (area LUT-equivalent, cycles/element).

    This is the "region of interest given a certain set of constraints" the
    characterisation is meant to delimit: implementations off the front are
    never the right choice regardless of the constraint mix.  Only points with
    the same functional specification (capacity and element width) are
    compared against each other — a smaller buffer is not a substitute for a
    larger one.
    """
    def area_key(point: CharacterizationPoint) -> float:
        total = point.area.total
        # Express area in LUT equivalents.  Block RAMs are weighted by the
        # fraction of the device they occupy (6144 LUTs / 16 BRAMs = 384
        # LUT-equivalents each): they are the scarce resource whose cost the
        # external-SRAM binding is meant to avoid.
        return total.total_luts + total.ffs + 384.0 * total.brams

    front: List[CharacterizationPoint] = []
    for candidate in points:
        dominated = False
        for other in points:
            if other is candidate:
                continue
            if (other.capacity, other.width) != (candidate.capacity, candidate.width):
                continue
            if (area_key(other) <= area_key(candidate)
                    and other.cycles_per_element <= candidate.cycles_per_element
                    and (area_key(other) < area_key(candidate)
                         or other.cycles_per_element < candidate.cycles_per_element)):
                dominated = True
                break
        if not dominated:
            front.append(candidate)
    return front
