"""Batched design-space exploration.

The paper's central promise is that a container/iterator/algorithm library
makes it cheap to *explore* many hardware design points ("it is feasible to
generate versions of each one for every physical target and range of
configuration parameters").  This subsystem industrialises that step: a grid
of (design x container binding x pixel format x frame size x capacity)
points is expanded, every point is simulated and characterised through the
fastest settle backend (``strategy="auto"`` resolves to the compiled
engine), results are memoized by design hash *and* strategy so repeated
points are free, and a comparison report is emitted with the same table
formatter the Table-3 reproduction uses.

Typical use::

    from repro.explore import ExplorationRunner, expand_grid

    points = expand_grid(designs=("saa2vga",), bindings=("fifo", "sram"),
                         capacities=(16, 32))
    runner = ExplorationRunner()
    results = runner.run(points)
    print(comparison_report(results))
"""

from .grid import DesignPoint, expand_grid, is_valid_point
from .report import best_by, comparison_report, coverage_summary, results_table
from .runner import (
    AUTO,
    ExplorationResult,
    ExplorationRunner,
    evaluate_point,
    resolve_strategy,
)

# Pipeline-composition axes (imported last: flow.sweep reaches back into
# repro.explore.runner lazily, so the runner must already be initialised).
from ..flow.sweep import (
    PIPELINE_TOPOLOGIES,
    PipelinePoint,
    expand_pipeline_grid,
    is_valid_pipeline_point,
)

__all__ = [
    "AUTO",
    "DesignPoint",
    "expand_grid",
    "is_valid_point",
    "PipelinePoint",
    "PIPELINE_TOPOLOGIES",
    "expand_pipeline_grid",
    "is_valid_pipeline_point",
    "ExplorationResult",
    "ExplorationRunner",
    "evaluate_point",
    "resolve_strategy",
    "comparison_report",
    "coverage_summary",
    "results_table",
    "best_by",
]
