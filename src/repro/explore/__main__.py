"""Command-line entry: ``python -m repro.explore``.

Mirrors ``python -m repro.verify``: a sweep is runnable straight from the
shell, no script required.  The grid comes from CLI axis flags, from a
JSON spec file (``--grid``), or both (CLI flags override the file); the
report goes to stdout in the Table-3 style and, with ``--json``, to a
machine-readable artifact.  Exit status is non-zero when any evaluated
point fails functional verification (or a ``--verify`` session flags
protocol violations), so CI can gate on a sweep.

Examples::

    python -m repro.explore --designs saa2vga --bindings fifo sram \
        --capacities 16 32
    python -m repro.explore --pipelines chain --stages 1 2 4 \
        --fifo-depths 2 8 --verify
    python -m repro.explore --grid sweep.json --json results.json
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional, Sequence, Tuple

from .grid import expand_grid
from .report import comparison_report, coverage_summary, results_table
from .runner import AUTO, ExplorationRunner


def _parse_frames(specs: Sequence) -> List[Tuple[int, int]]:
    """``16x12`` strings (or [w, h] pairs from JSON) -> (width, height)."""
    frames = []
    for spec in specs:
        if isinstance(spec, str):
            try:
                width, height = spec.lower().split("x")
                frames.append((int(width), int(height)))
            except ValueError:
                raise SystemExit(
                    f"bad frame spec {spec!r}: expected WIDTHxHEIGHT") from None
        else:
            width, height = spec
            frames.append((int(width), int(height)))
    return frames


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.explore",
        description="Batched design-space exploration of the pattern library.")
    grid = parser.add_argument_group("design grid axes")
    grid.add_argument("--designs", nargs="+", default=None,
                      metavar="NAME", help="design families (saa2vga, blur)")
    grid.add_argument("--bindings", nargs="+", default=None, metavar="NAME",
                      help="container bindings (default: all supported)")
    grid.add_argument("--formats", nargs="+", default=None, metavar="FMT",
                      help="pixel formats (gray8, rgb24, rgb565)")
    grid.add_argument("--frames", nargs="+", default=None, metavar="WxH",
                      help="stimulus frame sizes, e.g. 16x12")
    grid.add_argument("--capacities", nargs="+", type=int, default=None,
                      metavar="N", help="container capacities")

    pipe = parser.add_argument_group(
        "pipeline-composition axes (repro.flow)")
    pipe.add_argument("--pipelines", nargs="+", default=None, metavar="TOPO",
                      help="pipeline topologies (chain, dualpath, rgbbus)")
    pipe.add_argument("--stages", nargs="+", type=int, default=None,
                      metavar="N", help="pipeline depths for the chain topology")
    pipe.add_argument("--fifo-depths", nargs="+", type=int, default=None,
                      metavar="N", help="elastic edge FIFO depths")
    pipe.add_argument("--bus-widths", nargs="+", type=int, default=None,
                      metavar="BITS", help="stage/shared-bus element widths")

    run = parser.add_argument_group("execution")
    run.add_argument("--grid", metavar="PATH", default=None,
                     help="JSON grid spec file (CLI axis flags override it)")
    run.add_argument("--strategy", default=AUTO,
                     choices=(AUTO, "event", "fixpoint", "compiled"))
    run.add_argument("--processes", type=int, default=None, metavar="N",
                     help="fan uncached points over a process pool")
    run.add_argument("--max-cycles", type=int, default=2_000_000)
    run.add_argument("--verify", action="store_true",
                     help="also run a constrained-random verification "
                          "session per point (adds cov%% / cr_ok columns)")
    run.add_argument("--verify-seed", type=int, default=0)
    run.add_argument("--verify-cycles", type=int, default=1500)

    out = parser.add_argument_group("output")
    out.add_argument("--title", default="Design-space exploration.")
    out.add_argument("--json", metavar="PATH", default=None,
                     help="write result rows (and the coverage summary) here")
    out.add_argument("--quiet", action="store_true",
                     help="suppress the stdout table (exit status still set)")
    return parser


def _load_spec(path: Optional[str]) -> dict:
    if path is None:
        return {}
    with open(path, "r", encoding="utf-8") as handle:
        spec = json.load(handle)
    if not isinstance(spec, dict):
        raise SystemExit(f"grid spec {path!r} must be a JSON object")
    return spec


def _axis(cli_value, spec: dict, key: str, default):
    """CLI flag > spec-file entry > default."""
    if cli_value is not None:
        return cli_value
    if key in spec:
        return spec[key]
    return default


def expand_from_args(args, spec: dict):
    """(design points, pipeline points) named by the merged axis values."""
    design_points = []
    # --frames is shared between both grids, so it alone does not opt the
    # design grid in; any design-specific axis (CLI or spec file) does.
    wants_designs = any(value is not None for value in (
        args.designs, args.bindings, args.formats,
        args.capacities)) or any(key in spec for key in (
            "designs", "bindings", "formats", "capacities"))
    if wants_designs:
        design_points = expand_grid(
            designs=_axis(args.designs, spec, "designs", ("saa2vga",)),
            bindings=_axis(args.bindings, spec, "bindings", None),
            pixel_formats=_axis(args.formats, spec, "formats", ("gray8",)),
            frame_sizes=_parse_frames(
                _axis(args.frames, spec, "frames", ["16x12"])),
            capacities=_axis(args.capacities, spec, "capacities", (32,)),
        )

    pipeline_points = []
    pipe_spec = spec.get("pipelines", {})
    if isinstance(pipe_spec, (list, tuple)):
        pipe_spec = {"topologies": pipe_spec}
    wants_pipelines = any(value is not None for value in (
        args.pipelines, args.stages, args.fifo_depths,
        args.bus_widths)) or bool(pipe_spec)
    if not wants_designs and not wants_pipelines:
        # No grid-selecting axes: run the default design grid, like a bare
        # sweep script would — still honouring a lone --frames override.
        return expand_grid(frame_sizes=_parse_frames(
            _axis(args.frames, spec, "frames", ["16x12"]))), []
    if wants_pipelines:
        from ..flow.sweep import expand_pipeline_grid

        pipeline_points = expand_pipeline_grid(
            topologies=_axis(args.pipelines, pipe_spec, "topologies",
                             ("chain",)),
            stages=_axis(args.stages, pipe_spec, "stages", (2,)),
            fifo_depths=_axis(args.fifo_depths, pipe_spec, "fifo_depths",
                              (4,)),
            bus_widths=_axis(args.bus_widths, pipe_spec, "bus_widths", (8,)),
            frame_sizes=_parse_frames(
                _axis(args.frames, pipe_spec, "frames", ["16x8"])),
        )
    return design_points, pipeline_points


def main(argv=None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    spec = _load_spec(args.grid)

    design_points, pipeline_points = expand_from_args(args, spec)
    if not design_points and not pipeline_points:
        print("grid expanded to zero valid points", file=sys.stderr)
        return 2

    runner = ExplorationRunner(
        strategy=args.strategy, processes=args.processes,
        max_cycles=args.max_cycles, verify=args.verify,
        verify_seed=args.verify_seed, verify_cycles=args.verify_cycles)

    sections = []
    if design_points:
        sections.append((f"{args.title} (designs)", runner.run(design_points)))
    if pipeline_points:
        sections.append((f"{args.title} (pipelines)",
                         runner.run(pipeline_points)))

    all_results = [res for _, results in sections for res in results]
    if not args.quiet:
        for title, results in sections:
            print(comparison_report(results, title=title))
            print()
        print(f"{len(all_results)} point(s) evaluated "
              f"({runner.cache_hits} from cache)")

    if args.json:
        payload = {
            "strategy": args.strategy,
            "points": len(all_results),
            "rows": [row for _, results in sections
                     for row in results_table(results)],
        }
        if args.verify:
            payload["coverage_summary"] = coverage_summary(all_results)
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
        if not args.quiet:
            print(f"results written to {args.json}")

    failed = [res for res in all_results if not res.verified]
    flagged = [res for res in all_results if res.coverage_violations]
    if failed or flagged:
        print(f"\nFAILED: {len(failed)} point(s) functionally wrong, "
              f"{len(flagged)} with protocol violations", file=sys.stderr)
        for res in (failed + flagged)[:10]:
            print(f"  - {res.point.label()}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
