"""Command-line entry: ``python -m repro.explore``.

Mirrors ``python -m repro.verify``: a sweep is runnable straight from the
shell, no script required.  The grid comes from CLI axis flags, from a
JSON spec file (``--grid``), or both (CLI flags override the file); the
report goes to stdout in the Table-3 style and, with ``--json``, to a
machine-readable artifact.  Exit status is non-zero when any evaluated
point fails functional verification (or a ``--verify`` session flags
protocol violations), so CI can gate on a sweep.

Two execution backends beyond plain in-process sweeps:

* ``--store DIR`` keeps results in a persistent on-disk store — a warm
  re-sweep of an unchanged grid performs zero simulations, across runs;
* ``--server URL`` submits the same sweep to a running ``python -m
  repro.serve`` service and renders its results, making this CLI just one
  client of the HTTP/JSON API.

Examples::

    python -m repro.explore --designs saa2vga --bindings fifo sram \
        --capacities 16 32
    python -m repro.explore --pipelines chain --stages 1 2 4 \
        --fifo-depths 2 8 --verify
    python -m repro.explore --grid sweep.json --json results.json
    python -m repro.explore --grid sweep.json --store /var/tmp/repro-store
    python -m repro.explore --grid sweep.json --server http://127.0.0.1:8377
"""

from __future__ import annotations

import argparse
import json
import sys

from ..obs import export as _obs_export
from ..obs import profile as _obs_profile
from ..obs import tracing as _obs_tracing
from ..rtl import COMPILED_BATCHED
from .report import comparison_report, coverage_summary, results_table
from .runner import AUTO, ExplorationRunner
from .spec import expand_spec, normalize_pipeline_spec


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.explore",
        description="Batched design-space exploration of the pattern library.",
        epilog="With --store DIR results persist between runs (an unchanged "
               "grid re-sweeps with zero simulations); with --server URL the "
               "sweep is submitted to a running 'python -m repro.serve' "
               "service instead of simulating locally.  Both share one "
               "content-addressed key scheme, so a store written locally "
               "serves a server's cache hits and vice versa.  Full operator "
               "guide: docs/exploration.md.")
    grid = parser.add_argument_group("design grid axes")
    grid.add_argument("--designs", nargs="+", default=None,
                      metavar="NAME", help="design families (saa2vga, blur)")
    grid.add_argument("--bindings", nargs="+", default=None, metavar="NAME",
                      help="container bindings (default: all supported)")
    grid.add_argument("--formats", nargs="+", default=None, metavar="FMT",
                      help="pixel formats (gray8, rgb24, rgb565)")
    grid.add_argument("--frames", nargs="+", default=None, metavar="WxH",
                      help="stimulus frame sizes, e.g. 16x12")
    grid.add_argument("--capacities", nargs="+", type=int, default=None,
                      metavar="N", help="container capacities")

    pipe = parser.add_argument_group(
        "pipeline-composition axes (repro.flow)")
    pipe.add_argument("--pipelines", nargs="+", default=None, metavar="TOPO",
                      help="pipeline topologies (chain, dualpath, rgbbus)")
    pipe.add_argument("--stages", nargs="+", type=int, default=None,
                      metavar="N", help="pipeline depths for the chain topology")
    pipe.add_argument("--fifo-depths", nargs="+", type=int, default=None,
                      metavar="N", help="elastic edge FIFO depths")
    pipe.add_argument("--bus-widths", nargs="+", type=int, default=None,
                      metavar="BITS", help="stage/shared-bus element widths")

    run = parser.add_argument_group("execution")
    run.add_argument("--grid", metavar="PATH", default=None,
                     help="JSON grid spec file (CLI axis flags override it)")
    run.add_argument("--strategy", default=AUTO,
                     choices=(AUTO, "event", "fixpoint", "compiled",
                              COMPILED_BATCHED))
    run.add_argument("--processes", type=int, default=None, metavar="N",
                     help="fan uncached points over a process pool")
    run.add_argument("--lanes", type=int, default=16, metavar="N",
                     help="max lanes per batched simulation loop "
                          "(compiled-batched strategy; default: 16)")
    run.add_argument("--max-cycles", type=int, default=2_000_000)
    run.add_argument("--verify", action="store_true",
                     help="also run a constrained-random verification "
                          "session per point (adds cov%% / cr_ok columns)")
    run.add_argument("--verify-seed", type=int, default=0)
    run.add_argument("--verify-cycles", type=int, default=1500)
    run.add_argument("--store", metavar="DIR", default=None,
                     help="persistent result store directory; cached points "
                          "are served without simulating")
    run.add_argument("--server", metavar="URL", default=None,
                     help="submit the sweep to a running sweep service "
                          "(python -m repro.serve) instead of simulating "
                          "locally")
    run.add_argument("--timeout", type=float, default=None, metavar="SECONDS",
                     help="give up waiting on a --server sweep after this "
                          "long (default: wait forever)")

    obs = parser.add_argument_group("telemetry (docs/observability.md)")
    obs.add_argument("--trace", metavar="PATH", default=None,
                     help="record spans for the whole sweep and write them "
                          "here; .ndjson/.jsonl gets the line format, any "
                          "other extension gets Chrome trace-event JSON "
                          "(inspect with python -m repro.obs)")
    obs.add_argument("--profile", action="store_true",
                     help="print a per-strategy settle/compile wall-time "
                          "breakdown after the sweep")

    out = parser.add_argument_group("output")
    out.add_argument("--title", default="Design-space exploration.")
    out.add_argument("--json", metavar="PATH", default=None,
                     help="write result rows (and the coverage summary) here")
    out.add_argument("--quiet", action="store_true",
                     help="suppress the stdout table (exit status still set)")
    return parser


def _load_spec(path):
    if path is None:
        return {}
    with open(path, "r", encoding="utf-8") as handle:
        spec = json.load(handle)
    if not isinstance(spec, dict):
        raise SystemExit(f"grid spec {path!r} must be a JSON object")
    return spec


def merged_spec(args, file_spec: dict) -> dict:
    """One sweep-spec dict from the spec file with CLI flags folded over it.

    Per-axis precedence is CLI flag > spec-file entry > default, exactly as
    the flag help has always promised; ``--frames`` overrides both grids'
    frame axes but on its own opts neither grid in.
    """
    merged = dict(file_spec)
    for value, key in ((args.designs, "designs"), (args.bindings, "bindings"),
                       (args.formats, "formats"), (args.frames, "frames"),
                       (args.capacities, "capacities")):
        if value is not None:
            merged[key] = value

    try:
        pipe = normalize_pipeline_spec(file_spec.get("pipelines"))
    except ValueError as exc:
        raise SystemExit(str(exc)) from None
    wants_pipelines = any(value is not None for value in (
        args.pipelines, args.stages, args.fifo_depths,
        args.bus_widths)) or bool(pipe)
    if wants_pipelines:
        for value, key in ((args.pipelines, "topologies"),
                           (args.stages, "stages"),
                           (args.fifo_depths, "fifo_depths"),
                           (args.bus_widths, "bus_widths"),
                           (args.frames, "frames")):
            if value is not None:
                pipe[key] = value
        merged["pipelines"] = pipe
    else:
        merged.pop("pipelines", None)
    return merged


def _print_sections(sections, args, cache_note: str) -> list:
    """Render the report sections; returns the flat result list."""
    all_results = [res for _, results in sections for res in results]
    if not args.quiet:
        for title, results in sections:
            print(comparison_report(results, title=title))
            print()
        print(f"{len(all_results)} point(s) evaluated {cache_note}")

    if args.json:
        payload = {
            "strategy": args.strategy,
            "points": len(all_results),
            "rows": [row for _, results in sections
                     for row in results_table(results)],
        }
        if args.verify:
            payload["coverage_summary"] = coverage_summary(all_results)
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
        if not args.quiet:
            print(f"results written to {args.json}")
    return all_results


def _gate(all_results, extra_failures=()) -> int:
    """Exit status from verification verdicts (and server-side failures)."""
    failed = [res for res in all_results if not res.verified]
    flagged = [res for res in all_results if res.coverage_violations]
    if failed or flagged or extra_failures:
        print(f"\nFAILED: {len(failed)} point(s) functionally wrong, "
              f"{len(flagged)} with protocol violations", file=sys.stderr)
        for res in (failed + flagged)[:10]:
            print(f"  - {res.point.label()}", file=sys.stderr)
        for failure in list(extra_failures)[:10]:
            print(f"  - {failure['point'].get('family', '?')} point: "
                  f"{failure['error']}", file=sys.stderr)
        return 1
    return 0


def _split_sections(results, title: str):
    """Group results into (designs) / (pipelines) report sections."""
    from ..flow.sweep import PipelinePoint

    design_results = [res for res in results
                      if not isinstance(res.point, PipelinePoint)]
    pipeline_results = [res for res in results
                        if isinstance(res.point, PipelinePoint)]
    sections = []
    if design_results:
        sections.append((f"{title} (designs)", design_results))
    if pipeline_results:
        sections.append((f"{title} (pipelines)", pipeline_results))
    return sections


def _run_remote(args, spec: dict) -> int:
    """``--server``: the CLI as a client of the HTTP/JSON sweep service."""
    from ..serve.client import ServiceError, SweepClient
    from ..serve.records import result_from_record

    config = {
        "strategy": args.strategy,
        "max_cycles": args.max_cycles,
        "verify": args.verify,
        "verify_seed": args.verify_seed,
        "verify_cycles": args.verify_cycles,
        "lanes": args.lanes,
    }
    if args.trace is not None:
        # Server mode: the merged distributed trace (manager + every
        # worker's spans) is captured pool-side and fetched afterwards —
        # much richer than anything this client process could record.
        config["trace"] = True
    client = SweepClient(args.server)
    try:
        submitted = client.submit({"spec": spec, "config": config})
        status = client.wait(submitted["id"], timeout=args.timeout)
        payload = client.results(submitted["id"])
        if args.trace is not None:
            trace_records = client.trace(submitted["id"])
            fmt = _obs_export.write_trace(trace_records, args.trace)
            if not args.quiet:
                print(f"trace: {len(trace_records)} merged record(s) from "
                      f"{args.server} written to {args.trace} ({fmt})")
            args._trace_handled = True
    except ServiceError as exc:
        print(f"sweep service error: {exc}", file=sys.stderr)
        return 3
    results = [result_from_record(record) for record in payload["records"]]
    sections = _split_sections(results, args.title)
    cached = status.get("cached", 0)
    all_results = _print_sections(
        sections, args, f"({cached} from cache, via {args.server})")
    return _gate(all_results, extra_failures=payload.get("failures", ()))


def main(argv=None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    profiler = _obs_profile.enable() if args.profile else None
    if args.trace is not None:
        _obs_tracing.enable()
    try:
        return _run(args)
    finally:
        if args.trace is not None and not getattr(args, "_trace_handled",
                                                  False):
            _obs_tracing.disable()
            # stats() survives drain(): read the overflow count first so
            # the NDJSON header declares how truncated the trace is.
            dropped = _obs_tracing.stats()["dropped"]
            trace_records = _obs_tracing.drain()
            trace_records.insert(
                0, _obs_export.meta_record(dropped_spans=dropped))
            fmt = _obs_export.write_trace(trace_records, args.trace)
            if not args.quiet:
                print(f"trace: {len(trace_records)} record(s) written to "
                      f"{args.trace} ({fmt})")
        if profiler is not None:
            _obs_profile.disable()
            if not args.quiet:
                print(profiler.report())


def _run(args) -> int:
    spec = merged_spec(args, _load_spec(args.grid))

    try:
        design_points, pipeline_points = expand_spec(spec)
    except ValueError as exc:
        raise SystemExit(str(exc)) from None
    if not design_points and not pipeline_points:
        print("grid expanded to zero valid points", file=sys.stderr)
        return 2

    if args.server is not None:
        return _run_remote(args, spec)

    runner = ExplorationRunner(
        strategy=args.strategy, processes=args.processes,
        max_cycles=args.max_cycles, verify=args.verify,
        verify_seed=args.verify_seed, verify_cycles=args.verify_cycles,
        lanes=args.lanes, store=args.store)

    sections = []
    with _obs_tracing.span("explore.sweep", strategy=args.strategy,
                           points=len(design_points) + len(pipeline_points)):
        if design_points:
            sections.append((f"{args.title} (designs)",
                             runner.run(design_points)))
        if pipeline_points:
            sections.append((f"{args.title} (pipelines)",
                             runner.run(pipeline_points)))

    cache_note = f"({runner.cache_hits} from cache)"
    if args.store is not None:
        cache_note = (f"({runner.cache_hits} from cache, "
                      f"{runner.store_hits} from store)")
    all_results = _print_sections(sections, args, cache_note)
    return _gate(all_results)


if __name__ == "__main__":
    sys.exit(main())
