"""Batched execution of design-space grids.

:func:`evaluate_point` builds, simulates and characterises one
:class:`~repro.explore.grid.DesignPoint`; :class:`ExplorationRunner` maps it
over a whole grid, memoizing results by design hash (a repeated point is
never re-simulated) and optionally fanning the uncached points out over a
``multiprocessing`` pool.  Every result carries the measured streaming
throughput, the estimated FPGA resources and a functional-verification
verdict against the golden model, so a sweep doubles as a regression net.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..obs import tracing as _obs_tracing
from ..obs.metrics import REGISTRY as _REGISTRY
from ..designs import (
    BlurPatternDesign,
    Saa2VgaPatternDesign,
    VideoSystem,
    run_stream_through,
)
from ..rtl import (
    COMPILED,
    COMPILED_BATCHED,
    STRATEGIES,
    BatchedSimulator,
    Component,
    batch_groups,
)
from ..synth import estimate_design, estimate_power_mw
from ..video import GRAY8, RGB24, RGB565, flatten, golden_blur3x3, random_frame

PIXEL_FORMATS = {fmt.name: fmt for fmt in (GRAY8, RGB24, RGB565)}

#: Strategy alias: pick the fastest backend for batched sweeps.  The compiled
#: backend wins on every shipped design (it is differentially verified
#: against the oracle in ``tests/rtl/test_strategy_equivalence.py``), and its
#: one-time compile cost is amortised across a sweep because design classes
#: share process code objects.
AUTO = "auto"


def resolve_strategy(strategy: str) -> str:
    """Map the ``"auto"`` alias to a concrete settle strategy.

    ``"compiled-batched"`` is passed through: it is not a scalar
    :class:`~repro.rtl.Simulator` strategy (the runner routes it to
    :class:`~repro.rtl.BatchedSimulator` lane batches itself).
    """
    if strategy == AUTO:
        return COMPILED
    if strategy == COMPILED_BATCHED:
        return strategy
    if strategy not in STRATEGIES:
        raise ValueError(
            f"unknown strategy {strategy!r}; expected {AUTO!r}, "
            f"{COMPILED_BATCHED!r} or one of {STRATEGIES}")
    return strategy


def build_design(point) -> Component:
    """Instantiate the design a point describes (fresh, unshared hierarchy).

    Points may carry their own builder (``point.build()``) — that is how
    the pipeline-composition axes of :mod:`repro.flow.sweep` plug into the
    same runner — otherwise the point names one of the built-in families.
    """
    if hasattr(point, "build"):
        return point.build()
    fmt = PIXEL_FORMATS[point.pixel_format]
    if point.design == "saa2vga":
        return Saa2VgaPatternDesign(
            name=f"saa2vga_{point.design_hash()}", binding=point.binding,
            width=fmt.width, capacity=point.capacity)
    if point.design == "blur":
        return BlurPatternDesign(
            name=f"blur_{point.design_hash()}", line_width=point.frame_width,
            width=fmt.width, out_capacity=point.capacity)
    raise ValueError(f"unknown design {point.design!r}")


def stimulus_frame(point):
    """Deterministic stimulus for a point (seeded from its design hash).

    A point may pin its own stimulus ceiling (``stimulus_max_value``) when
    its datapath is narrower than its nominal pixel format — e.g. a
    pipeline sweep over sub-8-bit bus widths; otherwise the format's full
    value range is used.
    """
    fmt = PIXEL_FORMATS[point.pixel_format]
    max_value = getattr(point, "stimulus_max_value", None)
    if max_value is None:
        max_value = fmt.max_value
    seed = int(point.design_hash()[:8], 16)
    return random_frame(point.frame_width, point.frame_height, seed=seed,
                        max_value=max_value)


def golden_output(point, frame) -> list:
    """The expected output pixels for one point's stimulus frame."""
    if hasattr(point, "golden"):
        return point.golden(frame)
    if point.design == "blur":
        return flatten(golden_blur3x3(frame))
    return flatten(frame)


@dataclass(frozen=True)
class ExplorationResult:
    """Characterisation of one simulated design point."""

    point: "DesignPoint"
    cycles: int
    outputs: int
    throughput: float
    ffs: int
    luts: int
    brams: int
    fmax_mhz: float
    power_mw: float
    verified: bool
    #: Functional-coverage percentage from the constrained-random
    #: verification session (None when the sweep ran with ``verify=False``).
    coverage_pct: Optional[float] = None
    #: Number of protocol/scoreboard violations that session flagged.
    coverage_violations: Optional[int] = None

    def row(self) -> Dict[str, object]:
        """One report-table row (stable column order)."""
        row = {
            "design": self.point.design,
            "binding": self.point.binding,
            "format": self.point.pixel_format,
            "frame": f"{self.point.frame_width}x{self.point.frame_height}",
            "capacity": self.point.capacity,
            "cycles": self.cycles,
            "pix/cycle": round(self.throughput, 3),
            "FFs": self.ffs,
            "LUTs": self.luts,
            "blockRAM": self.brams,
            "clk_MHz": round(self.fmax_mhz, 1),
            "power_mW": round(self.power_mw, 1),
            "ok": "yes" if self.verified else "NO",
        }
        if self.coverage_pct is not None:
            row["cov%"] = round(self.coverage_pct, 1)
            row["cr_ok"] = "yes" if not self.coverage_violations else "NO"
        return row


def _characterise(point, design, pixels, cycles, golden,
                  verify: bool, verify_seed: int, verify_cycles: int,
                  verify_strategy: str) -> ExplorationResult:
    """Assemble one :class:`ExplorationResult` from a finished simulation.

    Shared by the scalar per-point path and the batched lane path so both
    produce byte-identical reports for the same point.
    """
    area = estimate_design(design)
    coverage_pct = coverage_violations = None
    if verify:
        from ..verify.session import verify as run_verify

        session = run_verify(build_design(point), seed=verify_seed,
                             cycles=verify_cycles, strategy=verify_strategy)
        coverage_pct = session.coverage_percent
        coverage_violations = len(session.violations)
    outputs = len(pixels)
    return ExplorationResult(
        point=point,
        cycles=cycles,
        outputs=outputs,
        throughput=outputs / max(1, cycles),
        ffs=area.total.ffs,
        luts=area.total.total_luts,
        brams=area.total.brams,
        fmax_mhz=area.fmax_mhz,
        power_mw=estimate_power_mw(area),
        verified=pixels == golden,
        coverage_pct=coverage_pct,
        coverage_violations=coverage_violations,
    )


def evaluate_point(point, strategy: str = AUTO,
                   max_cycles: int = 2_000_000, verify: bool = False,
                   verify_seed: int = 0,
                   verify_cycles: int = 1500) -> ExplorationResult:
    """Build, simulate, verify and characterise one design point.

    With ``verify=True`` the point is additionally run through a
    constrained-random :func:`repro.verify.session.verify` session (on a
    fresh design instance, with its own seeded stimulus) and the result
    carries the session's functional-coverage percentage and violation
    count alongside the directed-test verdict.

    A module-level function so a ``multiprocessing`` pool can pickle it.
    """
    strategy = resolve_strategy(strategy)
    if strategy == COMPILED_BATCHED:
        return evaluate_points_batched(
            [point], max_cycles=max_cycles, verify=verify,
            verify_seed=verify_seed, verify_cycles=verify_cycles)[0]
    with _obs_tracing.span("explore.point", strategy=strategy,
                           design=getattr(point, "design",
                                          type(point).__name__)):
        frame = stimulus_frame(point)
        golden = golden_output(point, frame)
        with _obs_tracing.span("build"):
            design = build_design(point)
        result = run_stream_through(design, frame,
                                    expected_outputs=len(golden),
                                    max_cycles=max_cycles, strategy=strategy)
        with _obs_tracing.span("characterize", verify=verify):
            return _characterise(point, design, result["pixels"],
                                 result["cycles"], golden, verify,
                                 verify_seed, verify_cycles,
                                 verify_strategy=strategy)


def evaluate_points_batched(points: Sequence,
                            max_cycles: int = 2_000_000,
                            verify: bool = False, verify_seed: int = 0,
                            verify_cycles: int = 1500, lanes: int = 16,
                            stats: Optional[Dict[str, int]] = None
                            ) -> List[ExplorationResult]:
    """Evaluate points through lane-batched lockstep simulation.

    Every point gets its own fresh design hierarchy and its usual seeded
    stimulus; points whose compiled batched programs are structurally
    identical (same generated source, widths and memory shapes — see
    :attr:`~repro.rtl.compile.BatchedProgram.signature`) are packed into
    lane groups of at most ``lanes`` and advanced by one vectorized
    simulation loop per group.  Incompatible points simply land in their
    own (possibly 1-lane) groups — nothing is excluded.

    Per lane, the simulation stops contributing once the sink has captured
    the golden pixel count; the recorded stop cycle and the first
    ``len(golden)`` pixels match the scalar strategies bit-for-bit (other
    lanes in the group may keep that lane's clock running afterwards, which
    cannot change already-captured output).

    ``stats`` (optional dict) gets ``"batches"`` incremented by the number
    of batched simulation loops run — the observability hook the runner and
    the benchmark suite use.
    """
    with _obs_tracing.span("build", points=len(points)):
        prepared = []
        for point in points:
            frame = stimulus_frame(point)
            golden = golden_output(point, frame)
            design = build_design(point)
            system = VideoSystem(design, frames=[frame])
            prepared.append((point, design, system, golden))

    results: List[Optional[ExplorationResult]] = [None] * len(prepared)
    systems = [system for _, _, system, _ in prepared]
    for indices, programs in batch_groups(systems):
        for start in range(0, len(indices), max(1, lanes)):
            chunk = indices[start:start + max(1, lanes)]
            chunk_programs = programs[start:start + max(1, lanes)]
            batch = BatchedSimulator([systems[i] for i in chunk],
                                     programs=chunk_programs)
            conditions = [
                (lambda s=prepared[i][2], n=len(prepared[i][3]):
                 s.sink.count >= n)
                for i in chunk
            ]
            done = batch.run_lockstep(conditions, max_cycles=max_cycles)
            if stats is not None:
                stats["batches"] = stats.get("batches", 0) + 1
            with _obs_tracing.span("characterize", lanes=len(chunk)):
                for lane, i in enumerate(chunk):
                    point, design, system, golden = prepared[i]
                    pixels = system.received_pixels()[:len(golden)]
                    results[i] = _characterise(
                        point, design, pixels, done[lane], golden,
                        verify, verify_seed, verify_cycles,
                        verify_strategy=COMPILED)
    return results  # type: ignore[return-value]


class ExplorationRunner:
    """Run grids of design points with memoization and optional parallelism.

    Parameters
    ----------
    strategy:
        Settle strategy handed to every simulation.  The default ``"auto"``
        resolves to the fastest backend (currently ``"compiled"``).
    processes:
        ``None`` (default) runs points serially in-process; an integer > 1
        fans uncached points out over a ``multiprocessing.Pool`` of that
        size.  Memoization works identically either way — results are cached
        in the parent by design hash.
    max_cycles:
        Per-point simulation budget.
    store:
        Optional persistent result backend: a
        :class:`repro.serve.store.ResultStore` (or a directory path, which
        opens one).  Points missing from the in-process memo are probed in
        the store before any simulator is built, and freshly simulated
        results are written back — so a warm re-sweep of an unchanged grid
        performs **zero** simulations, across process restarts.  Point
        types without a registered record family degrade gracefully to
        in-process memoization only.
    """

    def __init__(self, strategy: str = AUTO, processes: Optional[int] = None,
                 max_cycles: int = 2_000_000, verify: bool = False,
                 verify_seed: int = 0, verify_cycles: int = 1500,
                 lanes: int = 16, store=None) -> None:
        if processes is not None and processes < 1:
            raise ValueError(f"processes must be >= 1, got {processes}")
        if lanes < 1:
            raise ValueError(f"lanes must be >= 1, got {lanes}")
        resolve_strategy(strategy)  # validate eagerly
        self.strategy = strategy
        self.processes = processes
        self.max_cycles = max_cycles
        #: When True, every evaluated point also runs a constrained-random
        #: verification session and reports functional coverage.
        self.verify = verify
        self.verify_seed = verify_seed
        self.verify_cycles = verify_cycles
        #: Maximum lane count per batched simulation loop (only used when
        #: ``strategy`` resolves to ``"compiled-batched"``).
        self.lanes = lanes
        if store is not None and not hasattr(store, "get"):
            # A path was handed in; open a store over it (lazy import so the
            # serve package stays optional for plain in-process sweeps).
            from ..serve.store import ResultStore

            store = ResultStore(store)
        #: Optional persistent result store probed before simulating and
        #: written after (see the ``store`` parameter).
        self.store = store
        self._cache: Dict[Tuple, ExplorationResult] = {}
        #: Number of points served from the memo across all ``run`` calls.
        self.cache_hits = 0
        #: Subset of ``cache_hits`` that was served from the persistent
        #: store rather than this process's memo.
        self.store_hits = 0
        #: Number of points actually simulated across all ``run`` calls.
        self.evaluations = 0
        #: Number of batched lockstep simulation loops run (0 for scalar
        #: strategies; a 16-point compatible sweep at ``lanes=16`` adds 1).
        self.batch_runs = 0

    def _memo_key(self, point) -> Tuple:
        """Memoization key: the design point *and* the resolved strategy.

        Results from different settle strategies must never cross-contaminate
        the cache — they are supposed to be identical, but the cache is one
        of the places that claim gets checked, not assumed.  The
        verification configuration is part of the key too: a result carrying
        coverage must never be served for a ``verify=False`` sweep (or for a
        different seed), and vice versa.

        ``"compiled-batched"`` deliberately normalises to ``"compiled"``:
        lane batching is an execution detail, not an observable one — every
        lane's trace is proven bit-identical to the scalar compiled backend
        (``tests/rtl/test_strategy_equivalence.py``), so a cached compiled
        report is exactly what a batched run would produce, and vice versa.
        Serving it avoids re-simulating a point just because the caller
        toggled lane batching between sweeps.
        """
        return (point.key(), self.cache_strategy(),
                self.verify, self.verify_seed, self.verify_cycles)

    def cache_strategy(self) -> str:
        """The cache-normalised strategy (see :meth:`_memo_key`)."""
        resolved = resolve_strategy(self.strategy)
        return COMPILED if resolved == COMPILED_BATCHED else resolved

    def _store_get(self, point) -> Optional[ExplorationResult]:
        """Probe the persistent store for a point; ``None`` on any miss."""
        from ..serve import records

        try:
            key = records.exploration_key(
                point, self.cache_strategy(), self.verify,
                self.verify_seed, self.verify_cycles)
        except records.UnstorablePointError:
            return None
        record = self.store.get(key)
        if not records.record_matches(record, "exploration"):
            return None
        try:
            return records.result_from_record(record)
        except (KeyError, TypeError, ValueError):
            return None  # malformed payload: treat as a miss, re-simulate

    def _store_put(self, point, result: ExplorationResult) -> None:
        from ..serve import records

        try:
            config = records.exploration_config(
                self.cache_strategy(), self.verify, self.verify_seed,
                self.verify_cycles)
            key = records.exploration_key(
                point, self.cache_strategy(), self.verify,
                self.verify_seed, self.verify_cycles)
        except records.UnstorablePointError:
            return
        self.store.put(key, records.result_to_record(result, key, config))

    def run(self, points: Sequence) -> List[ExplorationResult]:
        """Evaluate every point, returning results in the points' order.

        Duplicate points (by design hash) and points seen in earlier ``run``
        calls are served from the memo without re-simulation.
        """
        cache = self._cache
        todo = []
        seen = set()
        for point in points:
            key = self._memo_key(point)
            if key not in cache and key not in seen:
                seen.add(key)
                todo.append(point)
        if self.store is not None and todo:
            remaining = []
            for point in todo:
                result = self._store_get(point)
                if result is None:
                    remaining.append(point)
                else:
                    cache[self._memo_key(point)] = result
                    self.store_hits += 1
                    _REGISTRY.inc("explore_store_hits")
            todo = remaining
        self.cache_hits += len(points) - len(todo)
        self.evaluations += len(todo)
        _REGISTRY.inc("explore_cache_hits", len(points) - len(todo))
        _REGISTRY.inc("explore_evaluations", len(todo))
        if todo:
            if resolve_strategy(self.strategy) == COMPILED_BATCHED:
                stats: Dict[str, int] = {}
                fresh = evaluate_points_batched(
                    todo, max_cycles=self.max_cycles, verify=self.verify,
                    verify_seed=self.verify_seed,
                    verify_cycles=self.verify_cycles, lanes=self.lanes,
                    stats=stats)
                self.batch_runs += stats.get("batches", 0)
                _REGISTRY.inc("explore_batch_runs", stats.get("batches", 0))
            elif self.processes is not None and self.processes > 1:
                fresh = self._run_pool(todo)
            else:
                fresh = [evaluate_point(point, strategy=self.strategy,
                                        max_cycles=self.max_cycles,
                                        verify=self.verify,
                                        verify_seed=self.verify_seed,
                                        verify_cycles=self.verify_cycles)
                         for point in todo]
            for point, result in zip(todo, fresh):
                cache[self._memo_key(point)] = result
                if self.store is not None:
                    self._store_put(point, result)
        return [cache[self._memo_key(point)] for point in points]

    def run_search(self, budget: int, seed: int = 0,
                   designs: Sequence[str] = ("saa2vga", "blur"),
                   bindings: Optional[Sequence[str]] = None,
                   pixel_formats: Sequence[str] = ("gray8",),
                   frame_sizes: Sequence[Tuple[int, int]] = ((8, 8),
                                                             (16, 12)),
                   capacities: Sequence[int] = (4, 8, 16),
                   epsilon: float = 0.2):
        """Budgeted Pareto search over design axes, alongside grid sweeps.

        Instead of enumerating a full grid, a mutation/crossover proposer
        (under an epsilon-greedy operator bandit) spends ``budget``
        evaluations chasing the (throughput ↑, synth area ↓) frontier;
        every proposal goes through this runner's :meth:`run`, so the
        memo and the persistent store are shared with ordinary sweeps —
        repeat proposals cost zero simulations.  Returns the
        :class:`repro.search.FrontierReport` (lazy import: the search
        package sits above this one).
        """
        from ..search.driver import design_search

        return design_search(budget, seed=seed, runner=self,
                             designs=designs, bindings=bindings,
                             pixel_formats=pixel_formats,
                             frame_sizes=frame_sizes, capacities=capacities,
                             epsilon=epsilon)

    def _run_pool(self, points: Sequence) -> List[ExplorationResult]:
        import multiprocessing

        with multiprocessing.Pool(self.processes) as pool:
            return pool.starmap(
                evaluate_point,
                [(point, self.strategy, self.max_cycles, self.verify,
                  self.verify_seed, self.verify_cycles) for point in points])
