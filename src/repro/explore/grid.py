"""Design-space grid: points and cartesian expansion.

A :class:`DesignPoint` pins down everything needed to build, stimulate and
characterise one concrete hardware configuration.  :func:`expand_grid` takes
one sequence per axis and produces the cartesian product in a deterministic
order, dropping combinations that do not name a buildable design (the blur
filter is bound to its 3-line buffer and grayscale pixels by construction).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence, Tuple

#: Designs the runner knows how to build, with their supported bindings.
DESIGN_BINDINGS = {
    "saa2vga": ("fifo", "sram"),
    "blur": ("linebuffer",),
}

#: Pixel formats each design supports.  The blur datapath averages whole
#: words, which is only channel-correct for single-channel formats.
DESIGN_FORMATS = {
    "saa2vga": ("gray8", "rgb24", "rgb565"),
    "blur": ("gray8",),
}


@dataclass(frozen=True, order=True)
class DesignPoint:
    """One point of the exploration grid.

    Attributes
    ----------
    design:
        Design family: ``"saa2vga"`` (stream copy) or ``"blur"`` (3x3 filter).
    binding:
        Container binding: ``"fifo"`` / ``"sram"`` for saa2vga,
        ``"linebuffer"`` for blur.
    pixel_format:
        Name of a :mod:`repro.video.pixel` format (``gray8`` / ``rgb24`` /
        ``rgb565``); decides the element width of every container.
    frame_width, frame_height:
        Geometry of the stimulus frame (and, for blur, the line width).
    capacity:
        Buffer capacity of the containers in the design.
    """

    design: str
    binding: str
    pixel_format: str
    frame_width: int
    frame_height: int
    capacity: int

    def key(self) -> Tuple:
        """Canonical memoization key for this point."""
        return (self.design, self.binding, self.pixel_format,
                self.frame_width, self.frame_height, self.capacity)

    def design_hash(self) -> str:
        """Stable short hash of the point's structural configuration."""
        text = ":".join(str(part) for part in self.key())
        return hashlib.sha1(text.encode("ascii")).hexdigest()[:12]

    def label(self) -> str:
        """Human-readable identifier used in reports."""
        return (f"{self.design}/{self.binding} {self.pixel_format} "
                f"{self.frame_width}x{self.frame_height} cap={self.capacity}")


def is_valid_point(point: DesignPoint) -> Tuple[bool, Optional[str]]:
    """Check whether a point names a buildable configuration.

    Returns ``(True, None)`` or ``(False, reason)``.
    """
    bindings = DESIGN_BINDINGS.get(point.design)
    if bindings is None:
        return False, f"unknown design {point.design!r}"
    if point.binding not in bindings:
        return False, (f"design {point.design!r} does not support binding "
                       f"{point.binding!r} (supported: {bindings})")
    if point.pixel_format not in DESIGN_FORMATS[point.design]:
        return False, (f"design {point.design!r} does not support pixel "
                       f"format {point.pixel_format!r}")
    if point.design == "blur" and (point.frame_width < 3 or point.frame_height < 3):
        return False, "blur needs a frame of at least 3x3 pixels"
    if point.frame_width < 1 or point.frame_height < 1:
        return False, "frame dimensions must be >= 1"
    if point.capacity < 2:
        return False, "capacity must be >= 2"
    return True, None


def expand_grid(designs: Sequence[str] = ("saa2vga",),
                bindings: Optional[Sequence[str]] = None,
                pixel_formats: Sequence[str] = ("gray8",),
                frame_sizes: Sequence[Tuple[int, int]] = ((16, 12),),
                capacities: Sequence[int] = (32,)) -> List[DesignPoint]:
    """Expand axis values into the list of valid :class:`DesignPoint`\\ s.

    The product is enumerated in a fixed nesting order (design, binding,
    pixel format, frame size, capacity), so two calls with the same axes
    always return the same list — the property the batched runner's
    deterministic reports rely on.  ``bindings=None`` means "every binding
    the design supports"; explicitly-passed bindings are intersected with
    the supported set, and combinations invalid for other reasons are
    silently dropped.
    """
    points: List[DesignPoint] = []
    for design in designs:
        supported = DESIGN_BINDINGS.get(design, ())
        chosen: Iterable[str] = supported if bindings is None else [
            b for b in bindings if b in supported]
        for binding in chosen:
            for fmt in pixel_formats:
                for width, height in frame_sizes:
                    for capacity in capacities:
                        point = DesignPoint(
                            design=design, binding=binding, pixel_format=fmt,
                            frame_width=int(width), frame_height=int(height),
                            capacity=int(capacity))
                        ok, _ = is_valid_point(point)
                        if ok:
                            points.append(point)
    return points
