"""Grid specs as plain dicts: one expansion path for CLI, server and files.

A *sweep spec* is a JSON-safe dict naming axis values for the design grid
(top level) and/or the pipeline grid (under ``"pipelines"``)::

    {
      "designs": ["saa2vga"], "bindings": ["fifo", "sram"],
      "formats": ["gray8"], "frames": ["16x12"], "capacities": [16, 32],
      "pipelines": {"topologies": ["chain"], "stages": [1, 2, 4],
                    "fifo_depths": [2, 8], "bus_widths": [8],
                    "frames": ["16x8"]}
    }

:func:`expand_spec` turns such a dict into concrete point lists with the
same opt-in rules the ``python -m repro.explore`` CLI has always used
(the CLI now builds a spec from its flags and calls this module; ``POST
/sweeps`` on the sweep server accepts the identical dict) — so a spec file
means the same sweep locally, remotely and in CI.

Errors raise :class:`ValueError`; presentation (CLI usage errors, HTTP
400s) is the caller's job.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from .grid import expand_grid

#: Top-level keys that opt the design grid in (``frames`` is shared with
#: the pipeline grid, so it alone opts nothing in).
DESIGN_AXIS_KEYS = ("designs", "bindings", "formats", "capacities")

#: Keys understood under ``"pipelines"``.
PIPELINE_AXIS_KEYS = ("topologies", "stages", "fifo_depths", "bus_widths",
                      "frames")


def parse_frames(specs: Sequence) -> List[Tuple[int, int]]:
    """``"16x12"`` strings (or ``[w, h]`` pairs from JSON) → (w, h) tuples."""
    frames = []
    for spec in specs:
        if isinstance(spec, str):
            try:
                width, height = spec.lower().split("x")
                frames.append((int(width), int(height)))
            except ValueError:
                raise ValueError(
                    f"bad frame spec {spec!r}: expected WIDTHxHEIGHT"
                ) from None
        else:
            try:
                width, height = spec
            except (TypeError, ValueError):
                raise ValueError(
                    f"bad frame spec {spec!r}: expected WIDTHxHEIGHT or "
                    f"[width, height]") from None
            frames.append((int(width), int(height)))
    return frames


def normalize_pipeline_spec(pipe_spec) -> dict:
    """``"pipelines"`` accepts a bare topology list as shorthand."""
    if pipe_spec is None:
        return {}
    if isinstance(pipe_spec, (list, tuple)):
        return {"topologies": list(pipe_spec)}
    if not isinstance(pipe_spec, dict):
        raise ValueError(
            f"'pipelines' must be an object or a topology list, "
            f"got {type(pipe_spec).__name__}")
    unknown = set(pipe_spec) - set(PIPELINE_AXIS_KEYS)
    if unknown:
        raise ValueError(f"unknown pipeline axis keys: {sorted(unknown)}")
    return dict(pipe_spec)


def expand_spec(spec: dict):
    """``(design_points, pipeline_points)`` for a sweep-spec dict.

    Opt-in rules (identical to the historical CLI behaviour):

    * any design axis key present → the design grid runs (missing axes get
      their defaults);
    * a non-empty ``"pipelines"`` entry → the pipeline grid runs;
    * neither → the default design grid runs, honouring a lone ``"frames"``
      override (a bare ``{}`` spec is the default sweep, not an error).
    """
    if not isinstance(spec, dict):
        raise ValueError("a sweep spec must be a JSON object")
    known = set(DESIGN_AXIS_KEYS) | {"frames", "pipelines"}
    unknown = set(spec) - known
    if unknown:
        raise ValueError(f"unknown sweep spec keys: {sorted(unknown)}")

    wants_designs = any(key in spec for key in DESIGN_AXIS_KEYS)
    design_points = []
    if wants_designs:
        design_points = expand_grid(
            designs=spec.get("designs", ("saa2vga",)),
            bindings=spec.get("bindings"),
            pixel_formats=spec.get("formats", ("gray8",)),
            frame_sizes=parse_frames(spec.get("frames", ["16x12"])),
            capacities=spec.get("capacities", (32,)),
        )

    pipe_spec = normalize_pipeline_spec(spec.get("pipelines"))
    if not wants_designs and not pipe_spec:
        # No grid-selecting axes: the default design grid, like a bare
        # sweep script — still honouring a lone frames override.
        return expand_grid(
            frame_sizes=parse_frames(spec.get("frames", ["16x12"]))), []

    pipeline_points = []
    if pipe_spec:
        from ..flow.sweep import expand_pipeline_grid

        pipeline_points = expand_pipeline_grid(
            topologies=pipe_spec.get("topologies", ("chain",)),
            stages=pipe_spec.get("stages", (2,)),
            fifo_depths=pipe_spec.get("fifo_depths", (4,)),
            bus_widths=pipe_spec.get("bus_widths", (8,)),
            frame_sizes=parse_frames(pipe_spec.get("frames", ["16x8"])),
        )
    return design_points, pipeline_points
