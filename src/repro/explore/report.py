"""Comparison reports over exploration results.

Reuses :func:`repro.synth.report.format_table` — the same formatter that
renders the Table-3 reproduction — so sweep reports and paper tables share
one look.  Rows are emitted in sorted point order regardless of the order
points were evaluated in, making reports byte-stable across runs, cache
states and process pools.
"""

from __future__ import annotations

from typing import Callable, List, Sequence

from ..synth import format_table
from .runner import ExplorationResult


def results_table(results: Sequence[ExplorationResult]) -> List[dict]:
    """Result rows in deterministic (sorted-by-point) order."""
    ordered = sorted(results, key=lambda res: res.point)
    return [res.row() for res in ordered]


def comparison_report(results: Sequence[ExplorationResult],
                      title: str = "Design-space exploration.") -> str:
    """Render a sweep as an aligned plain-text comparison table.

    When the sweep ran with ``verify=True`` the rows carry the per-design
    functional-coverage columns and the report is suffixed with the
    coverage summary line.
    """
    table = format_table(results_table(results), title=title)
    if any(res.coverage_pct is not None for res in results):
        table = f"{table}\n{coverage_summary(results)}"
    return table


def coverage_summary(results: Sequence[ExplorationResult]) -> str:
    """One line summarising constrained-random coverage across a sweep."""
    covered = [res for res in results if res.coverage_pct is not None]
    if not covered:
        return "functional coverage: not collected (sweep ran with verify=False)"
    mean = sum(res.coverage_pct for res in covered) / len(covered)
    flagged = sum(1 for res in covered if res.coverage_violations)
    return (f"functional coverage: mean {mean:.1f}% over {len(covered)} "
            f"point(s), {flagged} with protocol violations")


def best_by(results: Sequence[ExplorationResult],
            metric: Callable[[ExplorationResult], float],
            lowest: bool = True) -> ExplorationResult:
    """The verified result minimising (default) or maximising ``metric``.

    Ties break on the point's sorted order, keeping selection deterministic.
    """
    verified = [res for res in results if res.verified]
    if not verified:
        raise ValueError("no verified results to choose from")
    ordered = sorted(verified, key=lambda res: res.point)
    if lowest:
        return min(ordered, key=metric)
    return max(ordered, key=metric)
