"""On-chip block RAM models.

Spartan-IIE devices (the FPGA on the XSB-300E board) provide true dual-port
4-kbit block RAMs.  Containers bound to on-chip memory use these models; the
synthesis estimator maps their storage bits onto block-RAM counts exactly as
Table 3 of the paper reports them.

Two flavours are modelled:

* :class:`SinglePortRAM` — one synchronous read/write port with registered
  read data (1-cycle read latency), the common inferred-RAM template.
* :class:`DualPortRAM` — independent write and read ports, used by the
  3-line buffer and by stream-to-frame capture.
"""

from __future__ import annotations

from typing import List, Optional

from ..rtl import Component, clog2


class SinglePortRAM(Component):
    """Synchronous single-port RAM with registered read output.

    Ports
    -----
    en : in
        Port enable; nothing happens while low.
    we : in
        Write enable (qualified by ``en``).
    addr, din : in
    dout : out
        Registered read data: valid one cycle after a read access.
    """

    def __init__(self, name: str, depth: int, width: int,
                 init: Optional[List[int]] = None) -> None:
        super().__init__(name)
        if depth < 2:
            raise ValueError(f"RAM depth must be >= 2, got {depth}")
        self.depth = depth
        self.width = width
        self.addr_width = clog2(depth)

        self.en = self.signal(1, name=f"{name}_en")
        self.we = self.signal(1, name=f"{name}_we")
        self.addr = self.signal(self.addr_width, name=f"{name}_addr")
        self.din = self.signal(width, name=f"{name}_din")
        self.dout = self.signal(width, name=f"{name}_dout")

        self._mem = self.memory(depth, width, name=f"{name}_mem", init=init)

        @self.seq
        def port() -> None:
            if self.en.value:
                address = self.addr.value
                if self.we.value:
                    self._mem[address] = self.din.value
                self.dout.next = self._mem[address]

    def read_word(self, addr: int) -> int:
        """Backdoor read for test benches."""
        return self._mem[addr]

    def write_word(self, addr: int, value: int) -> None:
        """Backdoor write for test benches."""
        self._mem[addr] = value

    def load(self, values: List[int], offset: int = 0) -> None:
        """Preload a block of words starting at ``offset``."""
        self._mem.load(values, offset)

    def dump(self, start: int = 0, count: Optional[int] = None) -> List[int]:
        """Return a copy of ``count`` words starting at ``start``."""
        return self._mem.dump(start, count)


class DualPortRAM(Component):
    """Simple dual-port RAM: one synchronous write port, one synchronous read port.

    Ports
    -----
    wen, waddr, wdata : in
        Write port.
    ren, raddr : in
    rdata : out
        Read port, registered (1-cycle latency).
    """

    def __init__(self, name: str, depth: int, width: int,
                 init: Optional[List[int]] = None) -> None:
        super().__init__(name)
        if depth < 2:
            raise ValueError(f"RAM depth must be >= 2, got {depth}")
        self.depth = depth
        self.width = width
        self.addr_width = clog2(depth)

        self.wen = self.signal(1, name=f"{name}_wen")
        self.waddr = self.signal(self.addr_width, name=f"{name}_waddr")
        self.wdata = self.signal(width, name=f"{name}_wdata")

        self.ren = self.signal(1, name=f"{name}_ren")
        self.raddr = self.signal(self.addr_width, name=f"{name}_raddr")
        self.rdata = self.signal(width, name=f"{name}_rdata")

        self._mem = self.memory(depth, width, name=f"{name}_mem", init=init)

        @self.seq
        def write_port() -> None:
            if self.wen.value:
                self._mem[self.waddr.value] = self.wdata.value

        @self.seq
        def read_port() -> None:
            if self.ren.value:
                self.rdata.next = self._mem[self.raddr.value]

    def read_word(self, addr: int) -> int:
        """Backdoor read for test benches."""
        return self._mem[addr]

    def write_word(self, addr: int, value: int) -> None:
        """Backdoor write for test benches."""
        self._mem[addr] = value

    def load(self, values: List[int], offset: int = 0) -> None:
        """Preload a block of words starting at ``offset``."""
        self._mem.load(values, offset)

    def dump(self, start: int = 0, count: Optional[int] = None) -> List[int]:
        """Return a copy of ``count`` words starting at ``start``."""
        return self._mem.dump(start, count)
