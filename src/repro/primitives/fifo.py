"""Synchronous FIFO core.

Models the on-chip FIFO macros "commonly found in FPGA designs" that the
paper binds its read/write buffer and queue containers to.  The model is a
first-word-fall-through (FWFT) FIFO: when the FIFO is not empty, ``dout``
combinationally presents the head element and a one-cycle ``pop`` strobe
consumes it.  ``push`` writes ``din`` when the FIFO is not full.  Simultaneous
push and pop are supported.
"""

from __future__ import annotations

from ..rtl import Component, clog2
from ..verify import mutate


class SyncFIFO(Component):
    """Synchronous first-word-fall-through FIFO.

    Ports
    -----
    push : in
        Write strobe; ``din`` is stored when ``full`` is low.
    din : in
        Data to write.
    pop : in
        Read strobe; the head element is discarded when ``empty`` is low.
    dout : out
        Head element (valid whenever ``empty`` is low).
    empty, full : out
        Status flags.
    count : out
        Current occupancy.
    """

    def __init__(self, name: str, depth: int, width: int) -> None:
        super().__init__(name)
        if depth < 2:
            raise ValueError(f"FIFO depth must be >= 2, got {depth}")
        self.depth = depth
        self.width = width

        addr_width = clog2(depth)
        count_width = clog2(depth + 1)

        # Control/data inputs (driven by the environment).
        self.push = self.signal(1, name=f"{name}_push")
        self.pop = self.signal(1, name=f"{name}_pop")
        self.din = self.signal(width, name=f"{name}_din")

        # Outputs.
        self.dout = self.signal(width, name=f"{name}_dout")
        self.empty = self.signal(1, init=1, name=f"{name}_empty")
        self.full = self.signal(1, name=f"{name}_full")
        self.count = self.signal(count_width, name=f"{name}_count")

        # Internal state.
        self._mem = self.memory(depth, width, name=f"{name}_mem")
        self._rd_ptr = self.state(addr_width, name=f"{name}_rd_ptr")
        self._wr_ptr = self.state(addr_width, name=f"{name}_wr_ptr")
        self._occupancy = self.state(count_width, name=f"{name}_occupancy")

        # Counters pushed/popped over the whole simulation (observability only).
        self.total_pushed = 0
        self.total_popped = 0

        # Mutation switches are latched at construction time (see
        # repro.verify.mutate): the pristine processes below are registered
        # byte-identical to the shipped behaviour unless a test enabled a
        # fault, so the compiled backend's static analysis never sees the
        # mutated variants in normal runs.
        _drop_full_guard = mutate.enabled("fifo.drop_full_guard")
        _pop_empty_guard = mutate.enabled("fifo.pop_empty_guard")
        _stale_dout = mutate.enabled("fifo.stale_dout")

        def outputs() -> None:
            occ = self._occupancy.value
            self.empty.next = 1 if occ == 0 else 0
            self.full.next = 1 if occ == self.depth else 0
            self.count.next = occ
            self.dout.next = self._mem[self._rd_ptr.value]

        def outputs_stale() -> None:
            # MUTATED (test-only): presents the element behind the head.
            occ = self._occupancy.value
            self.empty.next = 1 if occ == 0 else 0
            self.full.next = 1 if occ == self.depth else 0
            self.count.next = occ
            self.dout.next = self._mem[(self._rd_ptr.value + 1) % self.depth]

        self.comb(outputs_stale if _stale_dout else outputs)

        def update() -> None:
            occ = self._occupancy.value
            do_push = self.push.value and occ < self.depth
            do_pop = self.pop.value and occ > 0
            if do_push:
                self._mem[self._wr_ptr.value] = self.din.value
                self._wr_ptr.next = (self._wr_ptr.value + 1) % self.depth
                self.total_pushed += 1
            if do_pop:
                self._rd_ptr.next = (self._rd_ptr.value + 1) % self.depth
                self.total_popped += 1
            self._occupancy.next = occ + (1 if do_push else 0) - (1 if do_pop else 0)

        def update_unguarded() -> None:
            # MUTATED (test-only): the full/empty guards can be dropped.
            occ = self._occupancy.value
            do_push = self.push.value and (_drop_full_guard or occ < self.depth)
            do_pop = self.pop.value and (_pop_empty_guard or occ > 0)
            if do_push:
                self._mem[self._wr_ptr.value] = self.din.value
                self._wr_ptr.next = (self._wr_ptr.value + 1) % self.depth
                self.total_pushed += 1
            if do_pop:
                self._rd_ptr.next = (self._rd_ptr.value + 1) % self.depth
                self.total_popped += 1
            self._occupancy.next = occ + (1 if do_push else 0) - (1 if do_pop else 0)

        self.seq(update_unguarded if (_drop_full_guard or _pop_empty_guard)
                 else update)

    # -- behavioural conveniences (for test benches) ---------------------------

    @property
    def occupancy(self) -> int:
        """Number of elements currently stored."""
        return self._occupancy.value

    def peek(self) -> int:
        """The head value (meaningful only when not empty)."""
        return self._mem[self._rd_ptr.value]

    def contents(self) -> list:
        """A copy of the stored elements, head first."""
        return [
            self._mem[(self._rd_ptr.value + i) % self.depth]
            for i in range(self._occupancy.value)
        ]
