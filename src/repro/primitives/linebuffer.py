"""Three-line buffer for window (convolution) access.

The blur design of the paper maps its read-buffer container "over a special
one.  It is a 3-line buffer structured to provide 3 pixels in a column for
each access.  This makes the convolution product in the blur algorithm very
simple and quite efficient since ideally a new filtered pixel can be
generated at each clock cycle."

This model accepts one pixel per ``push`` and simultaneously presents the
column of three vertically-adjacent pixels (two lines ago, one line ago, and
the incoming pixel) at the same horizontal position.  Two line memories hold
the history; the estimator maps them to block RAM, matching the 2 block RAMs
reported for the blur row of Table 3.
"""

from __future__ import annotations

from ..rtl import Component, clog2


class LineBuffer3(Component):
    """3-line buffer delivering a vertical 3-pixel column per pushed pixel.

    Ports
    -----
    push, din : in
        Feed the next pixel of the raster-scanned input stream.
    col_top, col_mid, col_bot : out
        The pixel two lines above, one line above, and the incoming pixel,
        all at the current horizontal position.  Valid combinationally in the
        cycle ``push`` is asserted.
    window_valid : out
        High once two complete lines have been buffered, i.e. the column
        spans three real image lines.
    x : out
        Current horizontal position (column index of the incoming pixel).
    """

    def __init__(self, name: str, line_width: int, width: int) -> None:
        super().__init__(name)
        if line_width < 2:
            raise ValueError(f"line width must be >= 2, got {line_width}")
        self.line_width = line_width
        self.width = width

        xw = clog2(line_width)

        self.push = self.signal(1, name=f"{name}_push")
        self.din = self.signal(width, name=f"{name}_din")

        self.col_top = self.signal(width, name=f"{name}_col_top")
        self.col_mid = self.signal(width, name=f"{name}_col_mid")
        self.col_bot = self.signal(width, name=f"{name}_col_bot")
        self.window_valid = self.signal(1, name=f"{name}_window_valid")
        self.x = self.signal(xw, name=f"{name}_x")

        # line_mem0 holds the oldest buffered line, line_mem1 the newer one.
        self._line0 = self.memory(line_width, width, name=f"{name}_line0")
        self._line1 = self.memory(line_width, width, name=f"{name}_line1")
        self._xpos = self.state(xw, name=f"{name}_xpos")
        self._lines_filled = self.state(2, name=f"{name}_lines_filled")

        self.total_pushed = 0

        @self.comb
        def window() -> None:
            pos = self._xpos.value
            self.col_top.next = self._line0[pos]
            self.col_mid.next = self._line1[pos]
            self.col_bot.next = self.din.value
            self.window_valid.next = 1 if self._lines_filled.value >= 2 else 0
            self.x.next = pos

        @self.seq
        def shift() -> None:
            if not self.push.value:
                return
            pos = self._xpos.value
            self._line0[pos] = self._line1[pos]
            self._line1[pos] = self.din.value
            self.total_pushed += 1
            if pos + 1 == self.line_width:
                self._xpos.next = 0
                filled = self._lines_filled.value
                if filled < 2:
                    self._lines_filled.next = filled + 1
            else:
                self._xpos.next = pos + 1

    # -- test-bench conveniences ---------------------------------------------------

    def line_history(self, index: int) -> list:
        """Return a copy of buffered line ``index`` (0 = oldest, 1 = newest)."""
        if index == 0:
            return self._line0.dump()
        if index == 1:
            return self._line1.dump()
        raise ValueError("LineBuffer3 only holds two history lines (0 and 1)")

    @property
    def lines_filled(self) -> int:
        """Number of complete lines buffered so far (saturates at 2)."""
        return self._lines_filled.value
