"""Register file and content-addressable memory primitives.

Small containers (the associative array of Table 1, short vectors) are bound
to register-based storage rather than RAM blocks.  The register file provides
combinational read and synchronous write; the CAM adds parallel key matching,
which is the natural hardware realisation of the associative-array container.
"""

from __future__ import annotations

from ..rtl import Component, clog2


class RegisterFile(Component):
    """Register file with one synchronous write port and one combinational read port.

    Ports
    -----
    wen, waddr, wdata : in
        Write port.
    raddr : in
    rdata : out
        Combinational read data.
    """

    def __init__(self, name: str, depth: int, width: int) -> None:
        super().__init__(name)
        if depth < 2:
            raise ValueError(f"register file depth must be >= 2, got {depth}")
        self.depth = depth
        self.width = width
        self.addr_width = clog2(depth)

        self.wen = self.signal(1, name=f"{name}_wen")
        self.waddr = self.signal(self.addr_width, name=f"{name}_waddr")
        self.wdata = self.signal(width, name=f"{name}_wdata")
        self.raddr = self.signal(self.addr_width, name=f"{name}_raddr")
        self.rdata = self.signal(width, name=f"{name}_rdata")

        # A register file is flip-flop storage, so declare one register per word.
        self._regs = [
            self.state(width, name=f"{name}_reg{i}") for i in range(depth)]

        @self.comb
        def read_port() -> None:
            self.rdata.next = self._regs[self.raddr.value % self.depth].value

        @self.seq
        def write_port() -> None:
            if self.wen.value:
                self._regs[self.waddr.value % self.depth].next = self.wdata.value

    def read_word(self, addr: int) -> int:
        """Backdoor read for test benches."""
        return self._regs[addr % self.depth].value

    def write_word(self, addr: int, value: int) -> None:
        """Backdoor write for test benches."""
        self._regs[addr % self.depth].force(value)

    def dump(self) -> list:
        """Return a copy of all register contents."""
        return [reg.value for reg in self._regs]


class ContentAddressableMemory(Component):
    """Small CAM storing (key, value) pairs with single-cycle parallel lookup.

    Ports
    -----
    lookup_key : in
        Key compared against all valid entries combinationally.
    hit : out
        High when some valid entry matches ``lookup_key``.
    hit_value : out
        The value of the matching entry (lowest-index match wins).
    insert, insert_key, insert_value : in
        Synchronous insert/update: an existing key is updated in place,
        otherwise a free entry is allocated.
    remove, remove_key : in
        Synchronous invalidation of a matching entry.
    full : out
        High when every entry is valid.
    """

    def __init__(self, name: str, depth: int, key_width: int, value_width: int) -> None:
        super().__init__(name)
        if depth < 1:
            raise ValueError(f"CAM depth must be >= 1, got {depth}")
        self.depth = depth
        self.key_width = key_width
        self.value_width = value_width

        self.lookup_key = self.signal(key_width, name=f"{name}_lookup_key")
        self.hit = self.signal(1, name=f"{name}_hit")
        self.hit_value = self.signal(value_width, name=f"{name}_hit_value")

        self.insert = self.signal(1, name=f"{name}_insert")
        self.insert_key = self.signal(key_width, name=f"{name}_insert_key")
        self.insert_value = self.signal(value_width, name=f"{name}_insert_value")

        self.remove = self.signal(1, name=f"{name}_remove")
        self.remove_key = self.signal(key_width, name=f"{name}_remove_key")

        self.full = self.signal(1, name=f"{name}_full")
        self.count = self.signal(max(1, clog2(depth + 1)), name=f"{name}_count")

        self._keys = [self.state(key_width, name=f"{name}_key{i}") for i in range(depth)]
        self._values = [self.state(value_width, name=f"{name}_val{i}") for i in range(depth)]
        self._valid = [self.state(1, name=f"{name}_valid{i}") for i in range(depth)]

        @self.comb
        def match() -> None:
            found = False
            found_value = 0
            valid_count = 0
            for i in range(self.depth):
                if self._valid[i].value:
                    valid_count += 1
                    if not found and self._keys[i].value == self.lookup_key.value:
                        found = True
                        found_value = self._values[i].value
            self.hit.next = 1 if found else 0
            self.hit_value.next = found_value
            self.full.next = 1 if valid_count == self.depth else 0
            self.count.next = valid_count

        @self.seq
        def update() -> None:
            if self.remove.value:
                for i in range(self.depth):
                    if (self._valid[i].value
                            and self._keys[i].value == self.remove_key.value):
                        self._valid[i].next = 0
                        break
            if self.insert.value:
                target = -1
                for i in range(self.depth):
                    if (self._valid[i].value
                            and self._keys[i].value == self.insert_key.value):
                        target = i
                        break
                if target < 0:
                    for i in range(self.depth):
                        if not self._valid[i].value:
                            target = i
                            break
                if target >= 0:
                    self._keys[target].next = self.insert_key.value
                    self._values[target].next = self.insert_value.value
                    self._valid[target].next = 1

    # -- test-bench conveniences ----------------------------------------------------

    def entries(self) -> dict:
        """Return a dict of the currently valid (key, value) pairs."""
        return {
            self._keys[i].value: self._values[i].value
            for i in range(self.depth)
            if self._valid[i].value
        }

    @property
    def occupancy(self) -> int:
        """Number of valid entries."""
        return sum(1 for v in self._valid if v.value)
