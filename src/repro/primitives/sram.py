"""External asynchronous SRAM model with a req/ack handshake.

The XSB-300E board used in the paper carries external static RAM; containers
bound to it go through an access protocol with ``p_addr``, ``p_data``,
``req`` and ``ack`` ports (Figure 5).  This model reproduces that handshake
with a configurable access latency, so the performance difference between the
FIFO binding ("maximum performance at the highest cost") and the SRAM binding
("much smaller, but performance will depend on memory access times") is
visible in simulation.

Protocol (4-phase):

1. The requester drives ``addr`` (and ``wdata``/``we`` for writes) and raises
   ``req``.
2. After ``latency`` cycles the SRAM performs the access, presents read data
   on ``rdata`` and raises ``ack``.
3. The requester captures the data and lowers ``req``.
4. The SRAM lowers ``ack`` and becomes ready for the next access.
"""

from __future__ import annotations

from typing import List, Optional

from ..rtl import Component, FSM, clog2


class AsyncSRAM(Component):
    """Single-port external SRAM with req/ack handshake.

    Parameters
    ----------
    depth, width:
        Geometry of the memory.
    latency:
        Number of cycles between ``req`` rising and ``ack`` rising.
        ``latency=1`` models fast SRAM; larger values model slower parts or
        shared buses.
    """

    #: The SRAM chip sits off-chip: the synthesis estimator counts neither its
    #: storage bits nor its behavioural-model registers as FPGA resources.
    external = True

    def __init__(self, name: str, depth: int, width: int, latency: int = 2,
                 init: Optional[List[int]] = None) -> None:
        super().__init__(name)
        if depth < 2:
            raise ValueError(f"SRAM depth must be >= 2, got {depth}")
        if latency < 1:
            raise ValueError(f"SRAM latency must be >= 1, got {latency}")
        self.depth = depth
        self.width = width
        self.latency = latency

        addr_width = clog2(depth)
        self.addr_width = addr_width

        # Requester-facing ports.
        self.addr = self.signal(addr_width, name=f"{name}_addr")
        self.wdata = self.signal(width, name=f"{name}_wdata")
        self.we = self.signal(1, name=f"{name}_we")
        self.req = self.signal(1, name=f"{name}_req")
        self.ack = self.signal(1, name=f"{name}_ack")
        self.rdata = self.signal(width, name=f"{name}_rdata")

        self._mem = self.memory(depth, width, name=f"{name}_mem", init=init)
        self._wait = self.state(max(1, clog2(latency + 1)), name=f"{name}_wait")
        self._fsm = FSM(self, ["IDLE", "ACCESS", "HOLD"], name=f"{name}_ctrl")

        # Observability counters.
        self.total_reads = 0
        self.total_writes = 0

        @self.seq
        def control() -> None:
            fsm = self._fsm
            if fsm.is_in("IDLE"):
                if self.req.value:
                    if self.latency == 1:
                        self._complete_access()
                        fsm.goto("HOLD")
                    else:
                        self._wait.next = self.latency - 1
                        fsm.goto("ACCESS")
            elif fsm.is_in("ACCESS"):
                remaining = self._wait.value
                if remaining <= 1:
                    self._complete_access()
                    fsm.goto("HOLD")
                else:
                    self._wait.next = remaining - 1
            elif fsm.is_in("HOLD"):
                if not self.req.value:
                    self.ack.next = 0
                    fsm.goto("IDLE")

    def _complete_access(self) -> None:
        address = self.addr.value
        if self.we.value:
            self._mem[address] = self.wdata.value
            self.total_writes += 1
        else:
            self.total_reads += 1
        self.rdata.next = self._mem[address]
        self.ack.next = 1

    # -- test-bench conveniences -------------------------------------------------

    def read_word(self, addr: int) -> int:
        """Direct (zero-time) backdoor read, for checking results in tests."""
        return self._mem[addr]

    def write_word(self, addr: int, value: int) -> None:
        """Direct (zero-time) backdoor write, for preloading test data."""
        self._mem[addr] = value

    def load(self, values: List[int], offset: int = 0) -> None:
        """Preload a block of words starting at ``offset``."""
        self._mem.load(values, offset)

    def dump(self, start: int = 0, count: Optional[int] = None) -> List[int]:
        """Return a copy of ``count`` words starting at ``start``."""
        return self._mem.dump(start, count)
