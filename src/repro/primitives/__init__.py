"""Behavioural models of the physical devices of the target platform.

These components stand in for the FIFO/LIFO cores, block RAMs, external SRAM
and the special 3-line buffer of the XSB-300E prototyping board used by the
paper.  Containers from :mod:`repro.core` are *bound* to one of these devices
at instantiation time; the synthesis estimator consumes the same models to
produce Table-3-style resource figures.
"""

from .arbiter import PriorityArbiter, RoundRobinArbiter
from .bram import DualPortRAM, SinglePortRAM
from .fifo import SyncFIFO
from .lifo import SyncLIFO
from .linebuffer import LineBuffer3
from .regfile import ContentAddressableMemory, RegisterFile
from .sram import AsyncSRAM

__all__ = [
    "SyncFIFO",
    "SyncLIFO",
    "AsyncSRAM",
    "SinglePortRAM",
    "DualPortRAM",
    "LineBuffer3",
    "RegisterFile",
    "ContentAddressableMemory",
    "PriorityArbiter",
    "RoundRobinArbiter",
]
