"""Arbiters for shared physical resources.

Section 3.4 of the paper notes that metaprogramming "allows automatic
generation of arbitration logic for shared physical resources (e.g. RAM)".
These components are the arbitration primitives that the generated logic is
built from: a fixed-priority arbiter and a round-robin arbiter, both with
one-hot grant outputs.
"""

from __future__ import annotations

from typing import List

from ..rtl import Component, Signal, clog2


class PriorityArbiter(Component):
    """Fixed-priority arbiter: the lowest-index active request wins.

    Ports
    -----
    requests : in
        List of 1-bit request signals, index 0 has the highest priority.
    grants : out
        One-hot list of grant signals.
    busy : out
        High when any grant is active.
    grant_index : out
        Binary index of the granted requester (0 when idle).
    """

    def __init__(self, name: str, num_requesters: int) -> None:
        super().__init__(name)
        if num_requesters < 1:
            raise ValueError("arbiter needs at least one requester")
        self.num_requesters = num_requesters

        self.requests: List[Signal] = [
            self.signal(1, name=f"{name}_req{i}") for i in range(num_requesters)]
        self.grants: List[Signal] = [
            self.signal(1, name=f"{name}_gnt{i}") for i in range(num_requesters)]
        self.busy = self.signal(1, name=f"{name}_busy")
        self.grant_index = self.signal(
            max(1, clog2(max(2, num_requesters))), name=f"{name}_grant_index")

        @self.comb
        def arbitrate() -> None:
            winner = -1
            for i, req in enumerate(self.requests):
                if req.value:
                    winner = i
                    break
            for i, gnt in enumerate(self.grants):
                gnt.next = 1 if i == winner else 0
            self.busy.next = 1 if winner >= 0 else 0
            self.grant_index.next = winner if winner >= 0 else 0

    def granted(self) -> int:
        """Index of the currently granted requester, or -1 when idle."""
        for i, gnt in enumerate(self.grants):
            if gnt.value:
                return i
        return -1


class RoundRobinArbiter(Component):
    """Round-robin arbiter with a rotating priority pointer.

    After a grant is consumed (request drops while granted), the priority
    pointer moves past the granted requester, giving every requester a fair
    share of a contended resource such as a shared external SRAM.
    """

    def __init__(self, name: str, num_requesters: int) -> None:
        super().__init__(name)
        if num_requesters < 1:
            raise ValueError("arbiter needs at least one requester")
        self.num_requesters = num_requesters

        self.requests: List[Signal] = [
            self.signal(1, name=f"{name}_req{i}") for i in range(num_requesters)]
        self.grants: List[Signal] = [
            self.signal(1, name=f"{name}_gnt{i}") for i in range(num_requesters)]
        self.busy = self.signal(1, name=f"{name}_busy")
        self.grant_index = self.signal(
            max(1, clog2(max(2, num_requesters))), name=f"{name}_grant_index")

        self._pointer = self.state(
            max(1, clog2(max(2, num_requesters))), name=f"{name}_pointer")
        self._locked = self.state(1, name=f"{name}_locked")
        self._locked_index = self.state(
            max(1, clog2(max(2, num_requesters))), name=f"{name}_locked_index")

        @self.comb
        def arbitrate() -> None:
            winner = self._select()
            for i, gnt in enumerate(self.grants):
                gnt.next = 1 if i == winner else 0
            self.busy.next = 1 if winner >= 0 else 0
            self.grant_index.next = winner if winner >= 0 else 0

        @self.seq
        def rotate() -> None:
            winner = self._select()
            if winner < 0:
                self._locked.next = 0
                return
            if self.requests[winner].value:
                # Hold the grant while the request persists.
                self._locked.next = 1
                self._locked_index.next = winner
            else:
                self._locked.next = 0
            # Advance the pointer past the most recent winner so the next
            # arbitration round starts after it.
            self._pointer.next = (winner + 1) % self.num_requesters

    def _select(self) -> int:
        if self._locked.value and self.requests[self._locked_index.value].value:
            return self._locked_index.value
        start = self._pointer.value % self.num_requesters
        for offset in range(self.num_requesters):
            index = (start + offset) % self.num_requesters
            if self.requests[index].value:
                return index
        return -1

    def granted(self) -> int:
        """Index of the currently granted requester, or -1 when idle."""
        for i, gnt in enumerate(self.grants):
            if gnt.value:
                return i
        return -1
