"""Synchronous LIFO (hardware stack) core.

The paper notes that "queues and read/write buffers can also be mapped over
LIFOs" and that stacks map naturally onto them.  The model exposes the same
strobe-style interface as :class:`repro.primitives.fifo.SyncFIFO`, but with
last-in-first-out ordering: ``dout`` presents the most recently pushed
element.
"""

from __future__ import annotations

from ..rtl import Component, clog2
from ..verify import mutate


class SyncLIFO(Component):
    """Synchronous LIFO with combinational top-of-stack output.

    Ports
    -----
    push, din : in
        Push ``din`` when ``full`` is low.
    pop : in
        Discard the top element when ``empty`` is low.
    dout : out
        Top element (valid when ``empty`` is low).
    empty, full, count : out
        Status.
    """

    def __init__(self, name: str, depth: int, width: int) -> None:
        super().__init__(name)
        if depth < 2:
            raise ValueError(f"LIFO depth must be >= 2, got {depth}")
        self.depth = depth
        self.width = width

        count_width = clog2(depth + 1)

        self.push = self.signal(1, name=f"{name}_push")
        self.pop = self.signal(1, name=f"{name}_pop")
        self.din = self.signal(width, name=f"{name}_din")

        self.dout = self.signal(width, name=f"{name}_dout")
        self.empty = self.signal(1, init=1, name=f"{name}_empty")
        self.full = self.signal(1, name=f"{name}_full")
        self.count = self.signal(count_width, name=f"{name}_count")

        self._mem = self.memory(depth, width, name=f"{name}_mem")
        self._sp = self.state(count_width, name=f"{name}_sp")

        self.total_pushed = 0
        self.total_popped = 0

        # Construction-time mutation switch (see repro.verify.mutate): the
        # pristine process stays byte-identical unless a test enabled it.
        _reverse_order = mutate.enabled("lifo.reverse_order")

        def outputs() -> None:
            sp = self._sp.value
            self.empty.next = 1 if sp == 0 else 0
            self.full.next = 1 if sp == self.depth else 0
            self.count.next = sp
            self.dout.next = self._mem[sp - 1] if sp > 0 else 0

        def outputs_reversed() -> None:
            # MUTATED (test-only): presents the bottom of the stack (FIFO
            # order) instead of the top.
            sp = self._sp.value
            self.empty.next = 1 if sp == 0 else 0
            self.full.next = 1 if sp == self.depth else 0
            self.count.next = sp
            self.dout.next = self._mem[0] if sp > 0 else 0

        self.comb(outputs_reversed if _reverse_order else outputs)

        @self.seq
        def update() -> None:
            sp = self._sp.value
            do_push = self.push.value and sp < self.depth
            do_pop = self.pop.value and sp > 0
            if do_push and do_pop:
                # Replace the top element: net stack-pointer change is zero.
                self._mem[sp - 1] = self.din.value
                self.total_pushed += 1
                self.total_popped += 1
            elif do_push:
                self._mem[sp] = self.din.value
                self._sp.next = sp + 1
                self.total_pushed += 1
            elif do_pop:
                self._sp.next = sp - 1
                self.total_popped += 1

    @property
    def occupancy(self) -> int:
        """Number of elements currently stored."""
        return self._sp.value

    def peek(self) -> int:
        """The top-of-stack value (meaningful only when not empty)."""
        sp = self._sp.value
        return self._mem[sp - 1] if sp > 0 else 0

    def contents(self) -> list:
        """A copy of the stored elements, bottom first."""
        return [self._mem[i] for i in range(self._sp.value)]
