"""repro: reproduction of "Model Reuse through Hardware Design Patterns" (DATE 2005).

Subpackages
-----------
``repro.rtl``
    Pure-Python RTL modelling and cycle-accurate simulation kernel (the VHDL
    substitute).
``repro.primitives``
    Behavioural models of the physical devices of the XSB-300E target
    (FIFO/LIFO cores, block RAM, external SRAM, 3-line buffer, arbiters).
``repro.core``
    The paper's contribution: the hardware Iterator pattern — containers,
    iterators and algorithms of the basic component library.
``repro.metagen``
    Metamodels and the VHDL code generator (operation pruning, width
    adaptation, arbitration, protocol selection).
``repro.synth``
    Resource estimation in Table-3 units (FFs/LUTs/block RAM/MHz) plus the
    design-space characterisation of Section 3.4.
``repro.video``
    Synthetic video stream source/sink and golden image models.
``repro.designs``
    The evaluated designs (saa2vga FIFO/SRAM, blur) in pattern-based and
    hand-written form, plus the full-system simulation harness.
"""

__version__ = "1.0.0"

__all__ = [
    "rtl",
    "primitives",
    "core",
    "metagen",
    "synth",
    "video",
    "designs",
]
