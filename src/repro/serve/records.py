"""The serialization boundary between sweeps and the persistent store.

Everything the store holds is a plain-JSON *record* with a common envelope
(``schema``, ``kind``, ``key``) and a kind-specific payload.  This module
owns both directions:

* **identity → key**: a record's store key is the SHA-256 hex digest of a
  canonical JSON payload naming exactly what the cached computation
  depended on — the point's structural configuration, the resolved settle
  strategy and the verification configuration.  This is the explorer's
  in-process memo key (:meth:`ExplorationRunner._memo_key`) made
  content-addressed: same inputs, same key, on any machine.
* **object ↔ record**: design/pipeline points and
  :class:`~repro.explore.runner.ExplorationResult`\\ s round-trip through
  dicts, so worker processes, the HTTP service and the store all speak one
  format.  Verification sessions get the same treatment
  (:func:`verify_record`), which is what makes ``python -m repro.verify
  --store`` incremental.

Only point families this module knows how to *rebuild* are storable; a
duck-typed user point without a registered family raises
:class:`UnstorablePointError` and the callers degrade gracefully to
in-process memoization.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict
from typing import Dict, Optional

from ..explore.grid import DesignPoint
from ..explore.runner import ExplorationResult
from ..flow.sweep import PipelinePoint
from .store import SCHEMA_VERSION


class UnstorablePointError(TypeError):
    """The point's family is unknown, so its results cannot be persisted."""


#: Scalar fields of :class:`ExplorationResult` that round-trip through the
#: record payload (everything except the point, which is stored separately).
RESULT_FIELDS = (
    "cycles", "outputs", "throughput", "ffs", "luts", "brams",
    "fmax_mhz", "power_mw", "verified", "coverage_pct",
    "coverage_violations",
)


# ---------------------------------------------------------------------------
# Points
# ---------------------------------------------------------------------------

def point_to_dict(point) -> Dict[str, object]:
    """A point as a JSON-safe dict tagged with its rebuildable family."""
    if isinstance(point, DesignPoint):
        return {"family": "design", **asdict(point)}
    if isinstance(point, PipelinePoint):
        return {"family": "pipeline", **asdict(point)}
    raise UnstorablePointError(
        f"point type {type(point).__name__} has no registered record "
        f"family; results for it stay in-process only")


def point_from_dict(data: Dict[str, object]):
    """Rebuild the concrete point a record describes."""
    fields = dict(data)
    family = fields.pop("family", None)
    if family == "design":
        return DesignPoint(**fields)
    if family == "pipeline":
        return PipelinePoint(**fields)
    raise UnstorablePointError(f"unknown point family {family!r}")


# ---------------------------------------------------------------------------
# Keys
# ---------------------------------------------------------------------------

def _digest(payload: dict) -> str:
    text = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def exploration_config(cache_strategy: str, verify: bool, verify_seed: int,
                       verify_cycles: int) -> Dict[str, object]:
    """Canonical config block entering exploration keys and records.

    ``cache_strategy`` must already be cache-normalised (``"auto"``
    resolved, ``"compiled-batched"`` folded to ``"compiled"`` — lane
    batching is an execution detail, not an observable one); the explore
    runner's :meth:`~repro.explore.runner.ExplorationRunner._memo_key`
    defines that normalisation and :func:`repro.serve.jobs.SweepConfig`
    applies it for the job layer.
    """
    return {
        "strategy": str(cache_strategy),
        "verify": bool(verify),
        "verify_seed": int(verify_seed),
        "verify_cycles": int(verify_cycles),
    }


def exploration_key(point, cache_strategy: str, verify: bool,
                    verify_seed: int, verify_cycles: int) -> str:
    """Store key for one (point × strategy × verify config) identity."""
    payload = {
        "kind": "exploration",
        "point": point_to_dict(point),
        "config": exploration_config(cache_strategy, verify, verify_seed,
                                     verify_cycles),
    }
    return _digest(payload)


def verify_key(target: str, seed: int, cycles: int, strategy: str) -> str:
    """Store key for one constrained-random verification session.

    ``cycles`` must be the *resolved* budget (the CLI's ``--cycles`` or the
    target's registered default), never ``None`` — two spellings of the
    same session must land on one key.
    """
    payload = {
        "kind": "verify",
        "target": str(target),
        "seed": int(seed),
        "cycles": int(cycles),
        "strategy": str(strategy),
    }
    return _digest(payload)


# ---------------------------------------------------------------------------
# Exploration records
# ---------------------------------------------------------------------------

def result_to_record(result: ExplorationResult, key: str,
                     config: Dict[str, object]) -> Dict[str, object]:
    """Wrap one exploration result in the store's record envelope."""
    return {
        "schema": SCHEMA_VERSION,
        "kind": "exploration",
        "key": key,
        "config": dict(config),
        "point": point_to_dict(result.point),
        "result": {name: getattr(result, name) for name in RESULT_FIELDS},
    }


def result_from_record(record: Dict[str, object]) -> ExplorationResult:
    """Rebuild the :class:`ExplorationResult` a record carries.

    The rebuilt object is indistinguishable from a freshly simulated one —
    same report row, same sort position, same verification verdict — which
    is exactly the cache-correctness claim the round-trip tests pin.
    """
    payload = record["result"]
    return ExplorationResult(
        point=point_from_dict(record["point"]),
        **{name: payload[name] for name in RESULT_FIELDS})


# ---------------------------------------------------------------------------
# Verification records
# ---------------------------------------------------------------------------

def verify_record(result, key: str) -> Dict[str, object]:
    """Wrap a :class:`~repro.verify.session.VerifyResult` for the store.

    The record keeps the covergroup's merged-dict form (the
    :class:`~repro.verify.coverage.CoverageDB` exchange format), the
    violation texts and the summary scalars — everything the CLI needs to
    reprint a session and regate ``--min-coverage`` without re-simulating.
    """
    return {
        "schema": SCHEMA_VERSION,
        "kind": "verify",
        "key": key,
        "config": {
            "target": result.target,
            "seed": result.seed,
            "cycles": result.cycles,
            "strategy": result.strategy,
        },
        "result": {
            "ok": result.ok,
            "coverage_percent": result.coverage_percent,
            "transactions": result.transactions,
            "violations": [str(v) for v in result.violations],
            "coverage_group": result.coverage.to_dict(),
        },
    }


def verify_summary_line(record: Dict[str, object],
                        suffix: str = "  [store]") -> str:
    """A :meth:`VerifyResult.summary`-shaped line for a cached session."""
    config = record["config"]
    payload = record["result"]
    status = ("ok" if payload["ok"]
              else f"{len(payload['violations'])} VIOLATION(S)")
    return (f"{config['target']:<24} seed={config['seed']:<3} "
            f"cycles={config['cycles']:<6} "
            f"cov={payload['coverage_percent']:5.1f}% "
            f"tx={payload['transactions']:<5} {status}{suffix}")


def record_matches(record: Optional[dict], kind: str) -> bool:
    """Envelope sanity check callers run on anything read from the store."""
    return (isinstance(record, dict) and record.get("kind") == kind
            and isinstance(record.get("result"), dict))
