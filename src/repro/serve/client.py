"""urllib client for the sweep service.

``python -m repro.explore --server URL`` is built on this class, and so
can any script be — the client speaks only the HTTP/JSON API, so it works
against a server in another process, container or machine::

    from repro.serve import SweepClient

    client = SweepClient("http://127.0.0.1:8377")
    submitted = client.submit({"spec": {"designs": ["saa2vga"],
                                        "capacities": [16, 32]}})
    status = client.wait(submitted["id"])
    payload = client.results(submitted["id"])

Responses are the server's JSON payloads as plain dicts; HTTP-level
failures raise :class:`ServiceError` carrying the server's error message.
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request
from typing import Dict, Iterator, List, Optional


class ServiceError(RuntimeError):
    """The service answered with an error (or could not be reached)."""

    def __init__(self, message: str, status: Optional[int] = None) -> None:
        super().__init__(message)
        self.status = status


class SweepClient:
    """Client for one sweep server.

    Parameters
    ----------
    base_url:
        ``http://host:port`` of a running ``python -m repro.serve``.
    timeout:
        Per-request socket timeout in seconds.
    """

    def __init__(self, base_url: str, timeout: float = 30.0) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout

    # -- HTTP plumbing -----------------------------------------------------

    def _request(self, path: str, payload: Optional[dict] = None) -> dict:
        url = f"{self.base_url}{path}"
        data = None
        headers = {"Accept": "application/json"}
        if payload is not None:
            data = json.dumps(payload).encode("utf-8")
            headers["Content-Type"] = "application/json"
        request = urllib.request.Request(url, data=data, headers=headers)
        try:
            with urllib.request.urlopen(request,
                                        timeout=self.timeout) as response:
                return json.loads(response.read().decode("utf-8"))
        except urllib.error.HTTPError as exc:
            detail = ""
            try:
                detail = json.loads(exc.read().decode("utf-8")).get("error", "")
            except Exception:
                pass
            raise ServiceError(
                f"{url}: HTTP {exc.code}" + (f" — {detail}" if detail else ""),
                status=exc.code) from None
        except urllib.error.URLError as exc:
            raise ServiceError(f"{url}: {exc.reason}") from None

    # -- API ---------------------------------------------------------------

    def health(self) -> dict:
        return self._request("/healthz")

    def submit(self, body: dict) -> dict:
        """``POST /sweeps``; body carries ``spec``/``points``/``config``."""
        return self._request("/sweeps", payload=body)

    def submit_search(self, body: dict) -> dict:
        """``POST /search``; body carries ``targets`` (+ budget knobs)
        and/or a ``frontier`` axes dict.  Progress, events and the final
        report are then served by the ``/sweeps/<id>/...`` routes —
        :meth:`status`, :meth:`events`, :meth:`results`, :meth:`wait`
        work on search jobs unchanged."""
        return self._request("/search", payload=body)

    def searches(self) -> List[dict]:
        """Status payloads of search jobs only (``GET /search``)."""
        return self._request("/search")["jobs"]

    def sweeps(self) -> List[dict]:
        return self._request("/sweeps")["jobs"]

    def status(self, job_id: str) -> dict:
        return self._request(f"/sweeps/{job_id}")

    def results(self, job_id: str) -> dict:
        """Records + failures of a sweep, in submission point order."""
        return self._request(f"/sweeps/{job_id}/results")

    def result(self, key: str) -> dict:
        """One stored record by key (``GET /results/<key>``)."""
        return self._request(f"/results/{key}")

    def trace(self, job_id: str) -> List[dict]:
        """The sweep's merged distributed trace as raw records.

        ``GET /sweeps/<id>/trace`` — only jobs submitted with config
        ``{"trace": true}`` have one (404/:class:`ServiceError`
        otherwise).  Write the records with
        :func:`repro.obs.export.write_trace` to get the same NDJSON the
        server serves, byte for byte.
        """
        url = f"{self.base_url}/sweeps/{job_id}/trace"
        request = urllib.request.Request(url)
        try:
            with urllib.request.urlopen(request,
                                        timeout=self.timeout) as response:
                return [json.loads(line) for line in
                        response.read().decode("utf-8").splitlines() if line]
        except urllib.error.HTTPError as exc:
            detail = ""
            try:
                detail = json.loads(exc.read().decode("utf-8")).get("error", "")
            except Exception:
                pass
            raise ServiceError(
                f"{url}: HTTP {exc.code}" + (f" — {detail}" if detail else ""),
                status=exc.code) from None
        except urllib.error.URLError as exc:
            raise ServiceError(f"{url}: {exc.reason}") from None

    def events(self, job_id: str, since: int = 0,
               follow: bool = False) -> Iterator[dict]:
        """Yield the job's event log as parsed NDJSON lines.

        With ``follow=True`` the iterator blocks until the job reaches a
        terminal state (the server closes the stream at that point).
        """
        url = (f"{self.base_url}/sweeps/{job_id}/events"
               f"?since={since}&follow={'1' if follow else '0'}")
        request = urllib.request.Request(url)
        timeout = None if follow else self.timeout
        try:
            with urllib.request.urlopen(request, timeout=timeout) as response:
                for line in response:
                    line = line.strip()
                    if line:
                        yield json.loads(line.decode("utf-8"))
        except urllib.error.URLError as exc:
            raise ServiceError(f"{url}: {exc}") from None

    def wait(self, job_id: str, timeout: Optional[float] = None,
             poll: float = 0.2) -> Dict[str, object]:
        """Poll until the sweep is ``done``/``failed``; returns the status."""
        deadline = None if timeout is None else time.monotonic() + timeout
        while True:
            status = self.status(job_id)
            if status["state"] in ("done", "failed"):
                return status
            if deadline is not None and time.monotonic() > deadline:
                raise ServiceError(
                    f"sweep {job_id} still {status['state']} after "
                    f"{timeout:.1f}s")
            time.sleep(poll)
