"""Async sweep jobs: shard, farm out, retry, persist.

The job model turns a grid of points into durable results:

1. **Diff** — :func:`diff_points` probes the :class:`ResultStore` for every
   point's key; hits become results immediately (the incremental re-sweep:
   only absent or invalidated points are ever scheduled).
2. **Shard** — the missing points are split into contiguous shards
   (:func:`split_shards`).  A shard is the unit of dispatch, retry and
   timeout; within a worker, a shard under ``strategy="compiled-batched"``
   is packed into lockstep lanes by the batched backend's own
   :func:`~repro.rtl.batch_groups` machinery, so service sweeps keep the
   PR 5 lane-sharing speedup.
3. **Farm** — a pool of worker *processes* pulls shards work-stealing
   style: the manager assigns the next pending shard to whichever worker
   becomes idle first, so a slow shard never blocks its siblings.  Each
   worker talks to the manager over its own private pipe — a killed or
   crashed worker can corrupt nothing shared.
4. **Survive** — a worker that dies mid-shard (crash, OOM-kill, operator
   ``SIGKILL``) or exceeds the per-shard timeout gets its shard re-queued
   and a fresh worker spawned, up to ``max_retries`` re-dispatches; an
   exhausted shard records a *failed* entry per point and the sweep still
   completes — sibling shards are never poisoned.  Results are
   deterministic functions of the point, so a retried shard reproduces
   exactly what the first attempt would have returned.

Job states progress ``submitted → sharded → running → done|failed``
(``failed`` meaning "completed with at least one failed point").  Every
transition and shard event is appended to the job's event log, which the
HTTP layer streams as NDJSON.
"""

from __future__ import annotations

import itertools
import multiprocessing
import threading
import time
import traceback
from collections import deque
from dataclasses import dataclass, field
from multiprocessing import connection as mp_connection
from typing import Dict, List, Optional, Sequence, Tuple

from ..obs import distributed as _distributed
from ..obs import tracing as _obs_tracing
from ..obs.metrics import REGISTRY as _REGISTRY
from .records import (
    exploration_config,
    exploration_key,
    point_from_dict,
    point_to_dict,
    result_to_record,
)
from .store import ResultStore

#: Job lifecycle states.
SUBMITTED = "submitted"
SHARDED = "sharded"
RUNNING = "running"
DONE = "done"
FAILED = "failed"

_TERMINAL = (DONE, FAILED)


@dataclass(frozen=True)
class SweepConfig:
    """Everything a worker needs to evaluate a point identically anywhere.

    Mirrors the :class:`~repro.explore.runner.ExplorationRunner`
    constructor arguments that affect results; :meth:`cache_strategy`
    applies the same normalisation the runner's memo key uses, so the
    service, the CLI ``--store`` mode and plain in-process sweeps all hit
    the same store entries.
    """

    strategy: str = "auto"
    max_cycles: int = 2_000_000
    verify: bool = False
    verify_seed: int = 0
    verify_cycles: int = 1500
    lanes: int = 16
    #: Capture a merged distributed trace for this sweep.  Off by default
    #: so untraced jobs never enable worker-side tracing (the zero-overhead
    #: contract extends across the pool).  Deliberately *not* part of the
    #: cache key: tracing observes a sweep, it does not change its results.
    trace: bool = False

    def cache_strategy(self) -> str:
        from ..explore.runner import resolve_strategy
        from ..rtl import COMPILED, COMPILED_BATCHED

        resolved = resolve_strategy(self.strategy)
        return COMPILED if resolved == COMPILED_BATCHED else resolved

    def key_for(self, point) -> str:
        """The store key this config assigns to ``point``."""
        return exploration_key(point, self.cache_strategy(), self.verify,
                               self.verify_seed, self.verify_cycles)

    def record_config(self) -> Dict[str, object]:
        return exploration_config(self.cache_strategy(), self.verify,
                                  self.verify_seed, self.verify_cycles)

    def to_dict(self) -> Dict[str, object]:
        return {
            "strategy": self.strategy,
            "max_cycles": self.max_cycles,
            "verify": self.verify,
            "verify_seed": self.verify_seed,
            "verify_cycles": self.verify_cycles,
            "lanes": self.lanes,
            "trace": self.trace,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "SweepConfig":
        known = {name: data[name] for name in cls.__dataclass_fields__
                 if name in data}
        unknown = set(data) - set(cls.__dataclass_fields__)
        if unknown:
            raise ValueError(f"unknown sweep config keys: {sorted(unknown)}")
        return cls(**known)


@dataclass
class SweepPlan:
    """Outcome of diffing a grid against the store (incremental re-sweep)."""

    #: Store key per submitted point, in submission order.
    keys: List[str]
    #: Key → record for every point already present in the store.
    cached: Dict[str, dict]
    #: Unique points that must be simulated, in first-seen order.
    todo: List[object] = field(default_factory=list)
    #: Keys parallel to :attr:`todo`.
    todo_keys: List[str] = field(default_factory=list)


def diff_points(points: Sequence, store: Optional[ResultStore],
                config: SweepConfig) -> SweepPlan:
    """Split a grid into cache-served and must-simulate point sets.

    Duplicate points collapse onto one key.  With ``store=None`` every
    unique point lands in ``todo`` (a pure sharding plan).
    """
    plan = SweepPlan(keys=[], cached={})
    seen = set()
    for point in points:
        key = config.key_for(point)
        plan.keys.append(key)
        if key in seen:
            continue
        seen.add(key)
        record = store.get(key) if store is not None else None
        if record is not None:
            plan.cached[key] = record
        else:
            plan.todo.append(point)
            plan.todo_keys.append(key)
    return plan


def split_shards(points: Sequence, shard_size: int) -> List[List]:
    """Contiguous shards of at most ``shard_size`` points, order-preserving.

    Contiguity matters: grids enumerate in axis-nesting order, so adjacent
    points usually differ only in payload parameters and share a batched
    program signature — exactly what lets a worker's
    :func:`~repro.explore.runner.evaluate_points_batched` call pack a whole
    shard into one lockstep lane group.
    """
    if shard_size < 1:
        raise ValueError(f"shard_size must be >= 1, got {shard_size}")
    points = list(points)
    return [points[start:start + shard_size]
            for start in range(0, len(points), shard_size)]


# ---------------------------------------------------------------------------
# Worker process
# ---------------------------------------------------------------------------

def evaluate_shard(point_dicts: Sequence[dict],
                   config_dict: Dict[str, object]
                   ) -> List[Tuple[str, dict]]:
    """Evaluate one shard; returns ``[(key, record), ...]`` per point.

    Module-level and dict-in/dict-out so it runs identically in a worker
    process, in-process (tests, the no-worker fallback) and across Python
    versions: records, not live objects, cross the process boundary.
    """
    from ..explore.runner import (
        evaluate_point,
        evaluate_points_batched,
        resolve_strategy,
    )
    from ..rtl import COMPILED_BATCHED

    config = SweepConfig.from_dict(dict(config_dict))
    points = [point_from_dict(data) for data in point_dicts]
    if resolve_strategy(config.strategy) == COMPILED_BATCHED:
        results = evaluate_points_batched(
            points, max_cycles=config.max_cycles, verify=config.verify,
            verify_seed=config.verify_seed,
            verify_cycles=config.verify_cycles, lanes=config.lanes)
    else:
        results = [evaluate_point(point, strategy=config.strategy,
                                  max_cycles=config.max_cycles,
                                  verify=config.verify,
                                  verify_seed=config.verify_seed,
                                  verify_cycles=config.verify_cycles)
                   for point in points]
    record_config = config.record_config()
    out = []
    for point, result in zip(points, results):
        key = config.key_for(point)
        out.append((key, result_to_record(result, key, record_config)))
    return out


def _worker_main(conn, worker_id: int) -> None:
    """Worker loop: receive a shard, evaluate, reply; ``None`` exits.

    Each worker owns one end of a private duplex pipe — no shared queues,
    so an abrupt death (the fault the manager must survive) cannot leave a
    lock or a half-written buffer behind for the survivors.

    Telemetry rides the same pipe: every reply is a 5-tuple whose last
    element is the worker's telemetry payload — always the counter deltas
    since its previous reply (what makes ``GET /metrics`` pool-wide), and
    additionally the shard's span buffer and settle-profile rows when the
    dispatch carried a trace context.  A killed worker ships nothing,
    which is exactly how a lost shard's telemetry stays lost instead of
    corrupted.
    """
    # Under the fork start method this process begins life with the
    # parent's metric counters, tracing ring buffer and profiler state —
    # scrub all of it before the first shard or pool-wide aggregation
    # would double-count everything the manager already recorded.
    _distributed.reset_worker_telemetry()
    while True:
        try:
            task = conn.recv()
        except (EOFError, OSError):
            return
        if task is None:
            return
        job_id, shard_id, point_dicts, config_dict, context_dict = task
        capture = _distributed.ShardCapture.begin(context_dict)
        try:
            records = evaluate_shard(point_dicts, config_dict)
            conn.send(("done", job_id, shard_id, records, capture.finish()))
        except Exception:
            try:
                conn.send(("error", job_id, shard_id,
                           traceback.format_exc(limit=20), capture.finish()))
            except (OSError, ValueError):
                return


# ---------------------------------------------------------------------------
# Jobs
# ---------------------------------------------------------------------------

class SweepJob:
    """One submitted sweep: bookkeeping, results and the event log.

    All mutation happens under the owning manager's lock; readers go
    through the snapshot methods (:meth:`progress`, :meth:`events_since`,
    :meth:`ordered_records`) which take the same lock.
    """

    def __init__(self, job_id: str, plan: SweepPlan, config: SweepConfig,
                 lock: threading.RLock) -> None:
        self.id = job_id
        self.config = config
        self.keys = list(plan.keys)
        self.state = SUBMITTED
        self.results: Dict[str, dict] = dict(plan.cached)
        self.failures: Dict[str, dict] = {}
        self.cached_keys = frozenset(plan.cached)
        self.unique_keys: List[str] = []
        seen = set()
        for key in self.keys:
            if key not in seen:
                seen.add(key)
                self.unique_keys.append(key)
        self.created_at = time.time()
        self.finished_at: Optional[float] = None
        #: Wall seconds per completed shard attempt (dispatch -> reply),
        #: feeding the ``timing`` block of :meth:`progress`.
        self.shard_seconds: List[float] = []
        self.events: List[dict] = []
        #: Merged sweep-wide trace (``config.trace`` jobs only).
        self.trace: Optional[_distributed.JobTrace] = \
            _distributed.JobTrace(job_id) if config.trace else None
        #: Pool-wide settle-profile rows folded from worker replies.
        self.profile: Dict[str, Dict[str, float]] = {}
        self._lock = lock
        self._terminal = threading.Event()

    # -- event log ---------------------------------------------------------

    def emit(self, event: str, **data) -> None:
        entry = {"seq": len(self.events), "event": event,
                 "time": time.time(), **data}
        self.events.append(entry)

    def events_since(self, index: int) -> List[dict]:
        with self._lock:
            return list(self.events[index:])

    # -- status ------------------------------------------------------------

    @property
    def done(self) -> bool:
        return self.state in _TERMINAL

    def progress(self) -> Dict[str, object]:
        """The status payload ``GET /sweeps/<id>`` serves."""
        with self._lock:
            total = len(self.unique_keys)
            cached = len(self.cached_keys)
            simulated = len(self.results) - cached
            failed = len(self.failures)
            return {
                "id": self.id,
                "state": self.state,
                "points": len(self.keys),
                "total": total,
                "cached": cached,
                "simulated": simulated,
                "failed": failed,
                "pending": total - cached - simulated - failed,
                "events": len(self.events),
                "created_at": self.created_at,
                "finished_at": self.finished_at,
                "timing": self._timing(),
                "config": self.config.to_dict(),
                "telemetry": self._telemetry(),
            }

    def _telemetry(self) -> Dict[str, object]:
        """Distributed-telemetry status for the progress payload."""
        if self.trace is None:
            return {"traced": False}
        return {
            "traced": True,
            "spans": len(self.trace),
            "dropped_spans": self.trace.dropped,
            "worker_pids": sorted(self.trace.worker_pids),
            "lost_shards": self.trace.lost_shards,
        }

    def _timing(self) -> Dict[str, object]:
        """Wall-clock stats: job elapsed plus per-shard duration spread."""
        shards = self.shard_seconds
        end = self.finished_at if self.finished_at is not None else time.time()
        return {
            "elapsed_s": round(end - self.created_at, 6),
            "shards": {
                "count": len(shards),
                "total_s": round(sum(shards), 6),
                "mean_s": round(sum(shards) / len(shards), 6) if shards else 0.0,
                "max_s": round(max(shards), 6) if shards else 0.0,
            },
        }

    def ordered_records(self) -> Dict[str, List[dict]]:
        """Records and failures in first-submission point order."""
        with self._lock:
            records = [self.results[key] for key in self.unique_keys
                       if key in self.results]
            failures = [self.failures[key] for key in self.unique_keys
                        if key in self.failures]
            return {"records": records, "failures": failures}

    def trace_records(self) -> Optional[List[dict]]:
        """The merged trace in raw-record form, or ``None`` if untraced.

        Safe to call while the job is still running — the export is a
        snapshot (the root ``sweep`` span only appears once the job
        reaches a terminal state).
        """
        with self._lock:
            if self.trace is None:
                return None
            return self.trace.export_records()

    def wait(self, timeout: Optional[float] = None) -> bool:
        """Block until the job reaches ``done``/``failed``."""
        return self._terminal.wait(timeout)


class SearchJob:
    """One coverage-directed search job (``POST /search``).

    Duck-types the :class:`SweepJob` surface the HTTP layer reads —
    ``progress()``, ``events_since()``, ``ordered_records()``, ``wait()``,
    ``done``, ``state``, ``trace_records()`` — so search jobs register in
    the same manager table and stream through the existing
    ``/sweeps/<id>/events?follow=1`` protocol unchanged.  The search
    itself is feedback-driven and sequential, so it runs on one manager-
    side thread (fresh seeds within a round still share a lockstep
    simulation); the manager's store backs its session memo, making
    repeat proposals free across jobs and processes.
    """

    def __init__(self, job_id: str, config, frontier_spec: Optional[dict],
                 store: Optional[ResultStore],
                 lock: threading.RLock) -> None:
        self.id = job_id
        self.config = config
        self.frontier_spec = frontier_spec
        self.store = store
        self.state = SUBMITTED
        self.created_at = time.time()
        self.finished_at: Optional[float] = None
        self.events: List[dict] = []
        #: Final ``repro-search-v1`` report dict (set at completion).
        self.report: Optional[dict] = None
        #: Final ``repro-frontier-v1`` dict (set when a frontier ran).
        self.frontier: Optional[dict] = None
        self.error: Optional[str] = None
        self._sessions = 0
        self._coverage: Dict[str, float] = {}
        self._frontier_size = 0
        self._lock = lock
        self._terminal = threading.Event()
        self._thread = threading.Thread(target=self._run, daemon=True,
                                        name=f"search-job-{job_id}")

    def start(self) -> "SearchJob":
        self._thread.start()
        return self

    # -- the SweepJob surface ----------------------------------------------

    def emit(self, event: str, **data) -> None:
        entry = {"seq": len(self.events), "event": event,
                 "time": time.time(), **data}
        self.events.append(entry)

    def events_since(self, index: int) -> List[dict]:
        with self._lock:
            return list(self.events[index:])

    @property
    def done(self) -> bool:
        return self.state in _TERMINAL

    def progress(self) -> Dict[str, object]:
        with self._lock:
            return {
                "id": self.id,
                "kind": "search",
                "state": self.state,
                "targets": (list(self.config.targets)
                            if self.config is not None else []),
                "budget": (self.config.budget
                           if self.config is not None else 0),
                "sessions": self._sessions,
                "coverage": {t: round(pct, 4)
                             for t, pct in self._coverage.items()},
                "frontier_size": self._frontier_size,
                "events": len(self.events),
                "error": self.error,
                "created_at": self.created_at,
                "finished_at": self.finished_at,
            }

    def ordered_records(self) -> Dict[str, object]:
        """The results payload: final report + frontier artifacts."""
        with self._lock:
            return {
                "records": [],
                "failures": ([{"error": self.error}] if self.error else []),
                "report": self.report,
                "frontier": self.frontier,
            }

    def trace_records(self) -> Optional[List[dict]]:
        return None  # search jobs are untraced; the route 404s

    def wait(self, timeout: Optional[float] = None) -> bool:
        return self._terminal.wait(timeout)

    # -- execution ---------------------------------------------------------

    def _on_round(self, entry: dict) -> None:
        with self._lock:
            self._sessions = entry.get("sessions", self._sessions)
            if "target" in entry:
                self._coverage[entry["target"]] = entry.get("coverage", 0.0)
            self.emit("search_round", **entry)

    def _on_frontier_round(self, entry: dict) -> None:
        with self._lock:
            self._frontier_size = entry.get("frontier_size",
                                            self._frontier_size)
            self.emit("frontier_round", **entry)

    def _run(self) -> None:
        from ..search.driver import CoverageSearch, design_search

        try:
            with self._lock:
                self.state = RUNNING
                self.emit("running")
            report = None
            if self.config is not None:
                search = CoverageSearch(self.config, store=self.store,
                                        on_round=self._on_round)
                report = search.run()
                with self._lock:
                    self.report = report.to_dict()
                    self._coverage = dict(report.coverage)
                    self._sessions = report.sessions
            if self.frontier_spec is not None:
                spec = dict(self.frontier_spec)
                frontier = design_search(
                    budget=int(spec.pop("budget", 8)),
                    seed=int(spec.pop("seed", 0)),
                    store=self.store,
                    designs=spec.pop("designs", ("saa2vga", "blur")),
                    bindings=spec.pop("bindings", None),
                    pixel_formats=spec.pop("formats", ("gray8",)),
                    frame_sizes=[tuple(size) for size in
                                 spec.pop("frames", [[8, 8], [16, 12]])],
                    capacities=spec.pop("capacities", (4, 8, 16)),
                    epsilon=float(spec.pop("epsilon", 0.2)),
                    on_round=self._on_frontier_round)
                with self._lock:
                    self.frontier = frontier.to_dict()
            with self._lock:
                failed = report is not None and not report.ok
                self.state = FAILED if failed else DONE
                self.finished_at = time.time()
                self.emit("completed", state=self.state,
                          sessions=self._sessions,
                          closed=(report.closed if report is not None
                                  else None),
                          frontier_size=self._frontier_size)
                _REGISTRY.inc("search_jobs_completed")
        except Exception:
            with self._lock:
                self.error = traceback.format_exc(limit=20)
                self.state = FAILED
                self.finished_at = time.time()
                self.emit("completed", state=self.state, error=self.error)
        finally:
            self._terminal.set()


class _Shard:
    """Dispatch bookkeeping for one shard of one job."""

    __slots__ = ("job_id", "shard_id", "point_dicts", "keys", "state",
                 "attempts", "trace_span", "dispatched_ns")

    def __init__(self, job_id: str, shard_id: int,
                 point_dicts: List[dict], keys: List[str]) -> None:
        self.job_id = job_id
        self.shard_id = shard_id
        self.point_dicts = point_dicts
        self.keys = keys
        self.state = "pending"
        self.attempts = 0
        #: Manager-side span id for the current attempt (traced jobs):
        #: allocated at dispatch, shipped to the worker as the parent of
        #: its ``worker.shard`` span, recorded when the reply arrives.
        self.trace_span: Optional[int] = None
        self.dispatched_ns = 0


class _Worker:
    """One pool member: process + private pipe + current assignment."""

    __slots__ = ("id", "process", "conn", "current", "assigned_at")

    def __init__(self, worker_id: int, process, conn) -> None:
        self.id = worker_id
        self.process = process
        self.conn = conn
        self.current: Optional[_Shard] = None
        self.assigned_at = 0.0


class JobManager:
    """Owns the worker pool and every job's lifecycle.

    Parameters
    ----------
    store:
        Results are diffed against and persisted into this store; ``None``
        disables persistence (every submission simulates everything).
    workers:
        Worker-process pool size (each worker evaluates one shard at a
        time; the manager hands the next pending shard to whichever worker
        frees up first).
    shard_size:
        Points per shard — the retry/timeout granularity.
    shard_timeout:
        Seconds a shard may run before its worker is killed and the shard
        re-dispatched; ``None`` disables the timeout.
    max_retries:
        How many times a shard may be *re*-dispatched after a worker death
        or timeout before its points are recorded as failed.
    """

    _ids = itertools.count(1)

    def __init__(self, store: Optional[ResultStore] = None, workers: int = 2,
                 shard_size: int = 16, shard_timeout: Optional[float] = None,
                 max_retries: int = 1, poll_interval: float = 0.05) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if shard_size < 1:
            raise ValueError(f"shard_size must be >= 1, got {shard_size}")
        if max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {max_retries}")
        self.store = store
        self.n_workers = workers
        self.shard_size = shard_size
        self.shard_timeout = shard_timeout
        self.max_retries = max_retries
        self.poll_interval = poll_interval
        self._ctx = multiprocessing.get_context()
        self._lock = threading.RLock()
        self._jobs: Dict[str, SweepJob] = {}
        self._pending: deque = deque()
        self._workers: Dict[int, _Worker] = {}
        self._worker_ids = itertools.count(1)
        self._closed = False
        #: Shards re-dispatched after a worker death or timeout (telemetry).
        self.requeues = 0
        for _ in range(workers):
            self._spawn_worker()
        self._pump = threading.Thread(target=self._pump_loop,
                                      name="sweep-job-pump", daemon=True)
        self._pump.start()

    # -- public API --------------------------------------------------------

    def submit(self, points: Sequence, config: Optional[SweepConfig] = None
               ) -> SweepJob:
        """Register a sweep: diff against the store, shard, enqueue.

        Returns immediately; progress is observable via the job object
        (``job.progress()`` / ``job.wait()``) or the HTTP layer.
        """
        config = config or SweepConfig()
        points = list(points)
        if not points:
            raise ValueError("a sweep needs at least one point")
        plan = diff_points(points, self.store, config)
        with self._lock:
            if self._closed:
                raise RuntimeError("JobManager is closed")
            job = SweepJob(f"sweep-{next(self._ids):06d}", plan, config,
                           self._lock)
            self._jobs[job.id] = job
            job.emit("submitted", points=len(points),
                     unique=len(job.unique_keys))
            _REGISTRY.inc("sweep_jobs_submitted")
            _obs_tracing.add_event("job.submitted", job=job.id,
                                   points=len(points))
            if plan.cached:
                job.emit("cache_served", count=len(plan.cached))
                _REGISTRY.inc("sweep_cache_served", len(plan.cached))
                if job.trace is not None:
                    job.trace.add_instant("cache_served",
                                          job.trace.now_ns(),
                                          parent=job.trace.root_id,
                                          count=len(plan.cached))
            shards = split_shards(
                list(zip(plan.todo, plan.todo_keys)), self.shard_size)
            job.state = SHARDED
            job.emit("sharded", shards=len(shards),
                     shard_size=self.shard_size)
            for shard_id, pairs in enumerate(shards):
                shard = _Shard(
                    job.id, shard_id,
                    [point_to_dict(point) for point, _ in pairs],
                    [key for _, key in pairs])
                self._pending.append(shard)
            if shards:
                job.state = RUNNING
                self._dispatch()
            else:
                self._finalize(job)
        return job

    def submit_search(self, body: Dict[str, object]) -> SearchJob:
        """Register a coverage-directed search job (``POST /search``).

        ``body`` carries ``targets`` (list of registered verification
        target names) plus the optional knobs of
        :class:`repro.search.SearchConfig` (``budget``, ``cycles``,
        ``seed``, ``strategy``, ``batch``, ``epsilon``,
        ``min_coverage``), and/or a ``frontier`` dict (``budget``,
        ``seed``, ``designs``, ``bindings``, ``formats``, ``frames``,
        ``capacities``, ``epsilon``) for the design-axes Pareto search.
        Validation errors raise :class:`ValueError` before any thread
        starts, so the HTTP layer can 400 them.
        """
        from ..search.driver import SearchConfig

        known = {"targets", "budget", "cycles", "seed", "strategy",
                 "batch", "epsilon", "min_coverage", "frontier"}
        unknown = set(body) - known
        if unknown:
            raise ValueError(f"unknown search keys: {sorted(unknown)}")
        targets = body.get("targets") or []
        if not isinstance(targets, (list, tuple)):
            raise ValueError("'targets' must be a list of target names")
        frontier_spec = body.get("frontier")
        if frontier_spec is not None:
            if not isinstance(frontier_spec, dict):
                raise ValueError("'frontier' must be a JSON object")
            frontier_known = {"budget", "seed", "designs", "bindings",
                              "formats", "frames", "capacities", "epsilon"}
            frontier_unknown = set(frontier_spec) - frontier_known
            if frontier_unknown:
                raise ValueError(
                    f"unknown frontier keys: {sorted(frontier_unknown)}")
        if not targets and frontier_spec is None:
            raise ValueError("a search job needs 'targets' and/or "
                             "'frontier'")
        config = None
        if targets:
            config = SearchConfig(
                targets=tuple(str(t) for t in targets),
                budget=int(body.get("budget", 32)),
                cycles=(None if body.get("cycles") is None
                        else int(body["cycles"])),
                seed=int(body.get("seed", 0)),
                strategy=str(body.get("strategy", "compiled-batched")),
                batch=int(body.get("batch", 1)),
                epsilon=float(body.get("epsilon", 0.1)),
                min_coverage=float(body.get("min_coverage", 100.0)))
        with self._lock:
            if self._closed:
                raise RuntimeError("JobManager is closed")
            job = SearchJob(f"search-{next(self._ids):06d}", config,
                            frontier_spec, self.store, self._lock)
            self._jobs[job.id] = job
            job.emit("submitted",
                     targets=list(config.targets) if config else [],
                     budget=config.budget if config else 0,
                     frontier=frontier_spec is not None)
            _REGISTRY.inc("search_jobs_submitted")
            _obs_tracing.add_event("search.submitted", job=job.id)
        return job.start()

    def job(self, job_id: str) -> Optional[SweepJob]:
        with self._lock:
            return self._jobs.get(job_id)

    def jobs(self) -> List[SweepJob]:
        with self._lock:
            return list(self._jobs.values())

    def queue_depth(self) -> int:
        """Shards waiting for a worker right now (``GET /healthz``)."""
        with self._lock:
            return len(self._pending)

    def worker_pids(self) -> List[int]:
        """Live worker PIDs (fault-injection tests kill these)."""
        with self._lock:
            return [worker.process.pid for worker in self._workers.values()
                    if worker.process.pid is not None]

    def close(self, timeout: float = 5.0) -> None:
        """Stop the pump and terminate the pool (idempotent)."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            workers = list(self._workers.values())
        for worker in workers:
            try:
                worker.conn.send(None)
            except (OSError, ValueError):
                pass
        self._pump.join(timeout)
        for worker in workers:
            worker.process.join(0.5)
            if worker.process.is_alive():
                worker.process.terminate()
                worker.process.join(0.5)
            worker.conn.close()

    def __enter__(self) -> "JobManager":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- worker pool -------------------------------------------------------

    def _spawn_worker(self) -> None:
        worker_id = next(self._worker_ids)
        parent_conn, child_conn = self._ctx.Pipe(duplex=True)
        process = self._ctx.Process(
            target=_worker_main, args=(child_conn, worker_id),
            name=f"sweep-worker-{worker_id}", daemon=True)
        process.start()
        child_conn.close()
        self._workers[worker_id] = _Worker(worker_id, process, parent_conn)

    def _dispatch(self) -> None:
        """Hand pending shards to idle workers (callers hold the lock)."""
        for worker in list(self._workers.values()):
            if not self._pending:
                return
            if worker.current is not None:
                continue
            shard = self._pending.popleft()
            job = self._jobs[shard.job_id]
            shard.attempts += 1
            shard.state = "running"
            worker.current = shard
            worker.assigned_at = time.monotonic()
            context_dict = None
            if job.trace is not None:
                # Allocate this attempt's manager-side span id *now* so
                # the worker's spans can name their parent before the
                # span record itself exists (it is written on reply).
                shard.trace_span = job.trace.next_id()
                shard.dispatched_ns = job.trace.now_ns()
                context_dict = job.trace.context(shard.trace_span).to_dict()
            try:
                worker.conn.send((shard.job_id, shard.shard_id,
                                  shard.point_dicts,
                                  job.config.to_dict(), context_dict))
            except (OSError, ValueError):
                self._worker_died(worker, "pipe closed on dispatch")
                continue
            job.emit("shard_started", shard=shard.shard_id,
                     attempt=shard.attempts, worker=worker.id,
                     points=len(shard.keys))
            _REGISTRY.inc("sweep_shards_dispatched")
            _obs_tracing.add_event("shard.dispatched", job=job.id,
                                   shard=shard.shard_id, worker=worker.id,
                                   attempt=shard.attempts)

    # -- event pump --------------------------------------------------------

    def _pump_loop(self) -> None:
        while True:
            with self._lock:
                if self._closed:
                    return
                conns = {worker.conn: worker
                         for worker in self._workers.values()}
            try:
                ready = mp_connection.wait(list(conns),
                                           timeout=self.poll_interval)
            except OSError:
                ready = []
            with self._lock:
                if self._closed:
                    return
                for conn in ready:
                    worker = conns.get(conn)
                    if worker is None or worker.id not in self._workers:
                        continue
                    try:
                        message = conn.recv()
                    except Exception:
                        self._worker_died(worker, "worker died mid-shard")
                        continue
                    self._handle_message(worker, message)
                self._reap_dead_workers()
                self._check_timeouts()
                self._dispatch()

    def _handle_message(self, worker: _Worker, message) -> None:
        kind, job_id, shard_id, payload, telemetry = message
        shard = worker.current
        elapsed = time.monotonic() - worker.assigned_at
        worker.current = None
        if (shard is None or shard.job_id != job_id
                or shard.shard_id != shard_id or shard.state != "running"):
            return  # stale reply from a shard already re-dispatched
        job = self._jobs[job_id]
        self._fold_telemetry(job, shard, telemetry or {})
        if kind == "done":
            shard.state = "done"
            for key, record in payload:
                job.results[key] = record
                if self.store is not None:
                    self.store.put(key, record)
            job.shard_seconds.append(elapsed)
            _REGISTRY.observe("sweep_shard_seconds", elapsed)
            job.emit("shard_done", shard=shard.shard_id,
                     attempt=shard.attempts, points=len(payload))
            _obs_tracing.add_event("shard.done", job=job_id,
                                   shard=shard.shard_id,
                                   seconds=round(elapsed, 6))
            self._maybe_finish(job)
        else:  # "error": the evaluation itself raised — deterministic, no retry
            shard.state = "failed"
            self._fail_shard_points(job, shard, str(payload))
            job.emit("shard_error", shard=shard.shard_id, error=str(payload))
            _REGISTRY.inc("sweep_shard_errors")
            _obs_tracing.add_event("shard.error", job=job_id,
                                   shard=shard.shard_id)
            self._maybe_finish(job)

    def _fold_telemetry(self, job: SweepJob, shard: _Shard,
                        telemetry: Dict[str, object]) -> None:
        """Fold one shard reply's telemetry into manager-side state.

        Counter deltas always fold (``GET /metrics`` stays pool-wide even
        for untraced jobs); span/profile payloads only exist — and only
        merge — when the job is traced.  Stale replies never reach here,
        so a re-dispatched shard's telemetry is counted exactly once.
        """
        _distributed.fold_counter_deltas(telemetry.get("counters"))
        if job.trace is None or shard.trace_span is None:
            return
        summary = job.trace.merge_worker(telemetry, shard.trace_span)
        job.trace.add_span(
            "shard", shard.dispatched_ns, job.trace.now_ns(),
            parent=job.trace.root_id, span_id=shard.trace_span,
            shard=shard.shard_id, attempt=shard.attempts,
            worker_pid=telemetry.get("pid"), points=len(shard.keys))
        _distributed.merge_profile(job.profile, telemetry.get("profile"))
        job.emit("span", name="shard", shard=shard.shard_id,
                 attempt=shard.attempts, worker_pid=telemetry.get("pid"),
                 spans=summary["spans"], dropped=summary["dropped"])

    def _reap_dead_workers(self) -> None:
        for worker in list(self._workers.values()):
            if not worker.process.is_alive():
                self._worker_died(worker, "worker process exited")

    def _check_timeouts(self) -> None:
        if self.shard_timeout is None:
            return
        now = time.monotonic()
        for worker in list(self._workers.values()):
            if (worker.current is not None
                    and now - worker.assigned_at > self.shard_timeout):
                worker.process.kill()
                worker.process.join(0.5)
                self._worker_died(worker, "shard timeout")

    def _worker_died(self, worker: _Worker, reason: str) -> None:
        """Replace a dead worker; requeue or fail its in-flight shard."""
        self._workers.pop(worker.id, None)
        try:
            worker.conn.close()
        except OSError:
            pass
        if worker.process.is_alive():
            worker.process.terminate()
        shard = worker.current
        if shard is not None and shard.state == "running":
            job = self._jobs[shard.job_id]
            if job.trace is not None and shard.trace_span is not None:
                # The attempt's telemetry died with the worker — record
                # the manager-side span flagged "lost" (never a hole),
                # and surrender the span id: a retry gets a fresh one.
                job.trace.mark_lost(shard.shard_id, shard.trace_span,
                                    shard.dispatched_ns, shard.attempts,
                                    reason)
                job.emit("span", name="shard", shard=shard.shard_id,
                         attempt=shard.attempts, telemetry="lost",
                         reason=reason)
                shard.trace_span = None
            if shard.attempts <= self.max_retries:
                shard.state = "pending"
                self._pending.appendleft(shard)
                self.requeues += 1
                _REGISTRY.inc("sweep_shard_requeues")
                job.emit("shard_requeued", shard=shard.shard_id,
                         attempt=shard.attempts, reason=reason)
                _obs_tracing.add_event("shard.requeued", job=job.id,
                                       shard=shard.shard_id, reason=reason)
            else:
                shard.state = "failed"
                self._fail_shard_points(job, shard, reason)
                job.emit("shard_failed", shard=shard.shard_id,
                         attempts=shard.attempts, reason=reason)
                _obs_tracing.add_event("shard.failed", job=job.id,
                                       shard=shard.shard_id, reason=reason)
                self._maybe_finish(job)
        if not self._closed and len(self._workers) < self.n_workers:
            self._spawn_worker()
            _REGISTRY.inc("sweep_worker_restarts")

    # -- completion --------------------------------------------------------

    def _fail_shard_points(self, job: SweepJob, shard: _Shard,
                           reason: str) -> None:
        """Record per-point failures.  Failures are job state only — they
        are never written to the store, so a transient fault cannot poison
        future sweeps."""
        for key, point_dict in zip(shard.keys, shard.point_dicts):
            job.failures[key] = {"key": key, "point": point_dict,
                                 "error": reason}

    def _maybe_finish(self, job: SweepJob) -> None:
        accounted = len(job.results) + len(job.failures)
        if accounted >= len(job.unique_keys):
            self._finalize(job)

    def _finalize(self, job: SweepJob) -> None:
        if job.done:
            return
        job.state = FAILED if job.failures else DONE
        job.finished_at = time.time()
        if job.trace is not None:
            job.trace.finish(state=job.state,
                             cached=len(job.cached_keys),
                             failed=len(job.failures))
        job.emit("completed", state=job.state,
                 cached=len(job.cached_keys),
                 simulated=len(job.results) - len(job.cached_keys),
                 failed=len(job.failures))
        _obs_tracing.add_event("job.completed", job=job.id, state=job.state)
        job._terminal.set()
