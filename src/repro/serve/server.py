"""Thin stdlib HTTP/JSON front end over the job manager and the store.

No third-party dependencies: a :class:`ThreadingHTTPServer` whose handler
translates HTTP to :class:`~repro.serve.jobs.JobManager` calls.  The API
(full reference with curl examples in ``docs/exploration.md``):

=======  ==========================  ===========================================
Method   Path                        Meaning
=======  ==========================  ===========================================
POST     ``/sweeps``                 Submit a sweep; body is JSON with a
                                     ``"spec"`` dict (sweep-spec axes, see
                                     :mod:`repro.explore.spec`) and/or a
                                     ``"points"`` record list, plus an optional
                                     ``"config"`` (:class:`SweepConfig` fields).
                                     Returns 202 with the job's status payload.
GET      ``/sweeps``                 Status payloads of every job.
GET      ``/sweeps/<id>``            One job's status: state and progress
                                     counts (total/cached/simulated/failed/
                                     pending).
GET      ``/sweeps/<id>/events``     The job's event log as NDJSON; with
                                     ``?follow=1`` the response streams until
                                     the job reaches a terminal state.
GET      ``/sweeps/<id>/results``    Result records + failures in point order.
GET      ``/sweeps/<id>/trace``      The merged distributed trace as NDJSON
                                     (jobs submitted with config
                                     ``{"trace": true}``): manager spans plus
                                     every worker's spans, re-parented and
                                     remapped onto one sweep-wide timeline.
                                     Feed it to ``python -m repro.obs
                                     timeline`` / ``summarize``.
POST     ``/search``                 Submit a coverage-directed search job
                                     (:mod:`repro.search`); body carries
                                     ``"targets"`` plus optional budget/seed
                                     knobs and/or a ``"frontier"`` axes dict.
                                     Returns 202; progress, the NDJSON event
                                     stream (one event per search round) and
                                     the final report/frontier artifacts ride
                                     the ``/sweeps/<id>/...`` routes above.
GET      ``/search``                 Status payloads of search jobs only.
GET      ``/results/<key>``          One record straight from the store — a
                                     pure file read, no simulator is ever
                                     constructed on this path.
GET      ``/healthz``                Liveness + store statistics, process
                                     counter snapshot and job-queue depth.
GET      ``/metrics``                Prometheus text exposition of the
                                     process-global telemetry registry
                                     (``repro.obs.metrics``): counters,
                                     gauges and histograms.
=======  ==========================  ===========================================

Construct a :class:`SweepServer` programmatically (tests do) or run
``python -m repro.serve --store DIR``.
"""

from __future__ import annotations

import json
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Optional, Tuple

from ..obs.metrics import REGISTRY, render_prometheus
from .jobs import JobManager, SweepConfig
from .records import point_from_dict
from .store import ResultStore, StoreError


class ApiError(Exception):
    """An HTTP-visible request error."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status
        self.message = message


def _expand_submission(body: dict):
    """The point list a ``POST /sweeps`` body asks for, in order."""
    if not isinstance(body, dict):
        raise ApiError(400, "request body must be a JSON object")
    unknown = set(body) - {"spec", "points", "config"}
    if unknown:
        raise ApiError(400, f"unknown request keys: {sorted(unknown)}")
    points = []
    if "spec" in body:
        from ..explore.spec import expand_spec

        try:
            design_points, pipeline_points = expand_spec(body["spec"])
        except ValueError as exc:
            raise ApiError(400, f"bad sweep spec: {exc}") from None
        points.extend(design_points)
        points.extend(pipeline_points)
    if "points" in body:
        if not isinstance(body["points"], list):
            raise ApiError(400, "'points' must be a list of point records")
        try:
            points.extend(point_from_dict(data) for data in body["points"])
        except (TypeError, ValueError) as exc:
            raise ApiError(400, f"bad point record: {exc}") from None
    if not points:
        raise ApiError(400, "the submission expands to zero valid points "
                            "(provide 'spec' axes and/or 'points')")
    try:
        config = SweepConfig.from_dict(body.get("config", {}))
    except (TypeError, ValueError) as exc:
        raise ApiError(400, f"bad sweep config: {exc}") from None
    return points, config


class _Handler(BaseHTTPRequestHandler):
    """One request; all state lives on ``self.server`` (the SweepServer)."""

    protocol_version = "HTTP/1.1"
    server_version = "repro-serve/1"

    # -- plumbing ----------------------------------------------------------

    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        if self.server.owner.verbose:
            super().log_message(format, *args)

    def _send_json(self, payload, status: int = 200) -> None:
        body = (json.dumps(payload, indent=2, sort_keys=True) + "\n").encode()
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _error(self, status: int, message: str) -> None:
        self._send_json({"error": message}, status=status)

    def _read_body(self) -> dict:
        length = int(self.headers.get("Content-Length") or 0)
        raw = self.rfile.read(length) if length else b""
        if not raw:
            raise ApiError(400, "empty request body")
        try:
            return json.loads(raw.decode("utf-8"))
        except (ValueError, UnicodeDecodeError) as exc:
            raise ApiError(400, f"request body is not valid JSON: {exc}"
                           ) from None

    def _route(self) -> Tuple[str, ...]:
        path = self.path.split("?", 1)[0]
        return tuple(part for part in path.split("/") if part)

    def _query(self) -> dict:
        if "?" not in self.path:
            return {}
        query = {}
        for pair in self.path.split("?", 1)[1].split("&"):
            if "=" in pair:
                name, value = pair.split("=", 1)
                query[name] = value
        return query

    # -- methods -----------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 - stdlib naming
        try:
            self._get(self._route())
        except ApiError as exc:
            self._error(exc.status, exc.message)
        except BrokenPipeError:
            pass  # client hung up mid-stream
        except Exception as exc:  # never kill the serving thread
            self._error(500, f"internal error: {exc}")

    def do_POST(self) -> None:  # noqa: N802 - stdlib naming
        try:
            self._post(self._route())
        except ApiError as exc:
            self._error(exc.status, exc.message)
        except Exception as exc:
            self._error(500, f"internal error: {exc}")

    def _get(self, route: Tuple[str, ...]) -> None:
        owner = self.server.owner
        if route == ("healthz",):
            self._send_json({"ok": True, "store": owner.store.stats(),
                             "jobs": len(owner.manager.jobs()),
                             "queue_depth": owner.manager.queue_depth(),
                             "counters": REGISTRY.counters()})
        elif route == ("metrics",):
            self._send_metrics(owner)
        elif route in (("sweeps",), ("search",)):
            # Each listing filters to its own kind; the per-job
            # /sweeps/<id>/... routes still serve both kinds.
            progresses = [job.progress() for job in owner.manager.jobs()]
            want_search = route == ("search",)
            self._send_json(
                {"jobs": [p for p in progresses
                          if (p.get("kind") == "search") == want_search]})
        elif len(route) == 2 and route[0] == "sweeps":
            self._send_json(self._job(route[1]).progress())
        elif len(route) == 3 and route[0] == "sweeps" and route[2] == "results":
            job = self._job(route[1])
            payload = job.ordered_records()
            payload["state"] = job.state
            self._send_json(payload)
        elif len(route) == 3 and route[0] == "sweeps" and route[2] == "events":
            self._stream_events(self._job(route[1]))
        elif len(route) == 3 and route[0] == "sweeps" and route[2] == "trace":
            self._send_trace(self._job(route[1]))
        elif len(route) == 2 and route[0] == "results":
            try:
                record = owner.store.get(route[1])
            except StoreError as exc:
                raise ApiError(400, str(exc)) from None
            if record is None:
                raise ApiError(404, f"no stored result for key {route[1]}")
            self._send_json(record)
        else:
            raise ApiError(404, f"unknown path {self.path!r}")

    def _post(self, route: Tuple[str, ...]) -> None:
        if route == ("sweeps",):
            points, config = _expand_submission(self._read_body())
            job = self.server.owner.manager.submit(points, config)
            self._send_json(job.progress(), status=202)
        elif route == ("search",):
            body = self._read_body()
            if not isinstance(body, dict):
                raise ApiError(400, "request body must be a JSON object")
            try:
                job = self.server.owner.manager.submit_search(body)
            except ValueError as exc:
                raise ApiError(400, f"bad search request: {exc}") from None
            self._send_json(job.progress(), status=202)
        else:
            raise ApiError(404, f"unknown path {self.path!r}")

    # -- helpers -----------------------------------------------------------

    def _send_metrics(self, owner: "SweepServer") -> None:
        """Prometheus text exposition, with scrape-time service gauges.

        Counters accumulate as the service works; the point-in-time facts
        (store occupancy, queue depth, job count, uptime) are refreshed as
        gauges on every scrape so the exposition is self-contained.
        """
        REGISTRY.set_gauge("store_entries", len(owner.store))
        REGISTRY.set_gauge("sweep_queue_depth", owner.manager.queue_depth())
        REGISTRY.set_gauge("sweep_jobs", len(owner.manager.jobs()))
        REGISTRY.set_gauge("uptime_seconds",
                           round(time.time() - owner._started, 3))
        body = render_prometheus(REGISTRY).encode("utf-8")
        self.send_response(200)
        self.send_header("Content-Type",
                         "text/plain; version=0.0.4; charset=utf-8")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _job(self, job_id: str):
        job = self.server.owner.manager.job(job_id)
        if job is None:
            raise ApiError(404, f"unknown sweep {job_id!r}")
        return job

    def _send_trace(self, job) -> None:
        """The merged distributed trace as NDJSON (traced jobs only)."""
        records = job.trace_records()
        if records is None:
            raise ApiError(
                404, f"sweep {job.id!r} was not traced — submit with "
                     "config {'trace': true} to capture a distributed trace")
        body = "".join(json.dumps(record, sort_keys=True) + "\n"
                       for record in records).encode("utf-8")
        self.send_response(200)
        self.send_header("Content-Type", "application/x-ndjson")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _stream_events(self, job) -> None:
        """NDJSON event stream; ``?follow=1`` tails until the job ends."""
        query = self._query()
        follow = query.get("follow", "0") not in ("0", "false", "")
        index = int(query.get("since", 0))
        self.send_response(200)
        self.send_header("Content-Type", "application/x-ndjson")
        # Chunked would need framing; close-delimited is simpler for curl.
        self.send_header("Connection", "close")
        self.end_headers()
        while True:
            events = job.events_since(index)
            for event in events:
                self.wfile.write(
                    (json.dumps(event, sort_keys=True) + "\n").encode())
            index += len(events)
            if events:
                self.wfile.flush()
            if not follow or job.done:
                return
            job.wait(timeout=self.server.owner.stream_poll)


class _HTTPServer(ThreadingHTTPServer):
    daemon_threads = True
    owner: "SweepServer"


class SweepServer:
    """The exploration service: store + job manager + HTTP front end.

    ``port=0`` (the default) binds an ephemeral port; read :attr:`url`
    after construction.  Use as a context manager or call
    :meth:`start` / :meth:`close` explicitly.
    """

    def __init__(self, store, host: str = "127.0.0.1", port: int = 0,
                 workers: int = 2, shard_size: int = 16,
                 shard_timeout: Optional[float] = None, max_retries: int = 1,
                 verbose: bool = False, stream_poll: float = 0.1) -> None:
        self.store = store if isinstance(store, ResultStore) \
            else ResultStore(store)
        self.manager = JobManager(
            store=self.store, workers=workers, shard_size=shard_size,
            shard_timeout=shard_timeout, max_retries=max_retries)
        self.verbose = verbose
        self.stream_poll = stream_poll
        self._httpd = _HTTPServer((host, port), _Handler)
        self._httpd.owner = self
        self._thread: Optional[threading.Thread] = None
        self._started = time.time()

    @property
    def host(self) -> str:
        return self._httpd.server_address[0]

    @property
    def port(self) -> int:
        return self._httpd.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def start(self) -> "SweepServer":
        """Serve requests on a background thread (idempotent)."""
        if self._thread is None:
            self._thread = threading.Thread(
                target=self._httpd.serve_forever, name="sweep-http",
                daemon=True)
            self._thread.start()
        return self

    def serve_forever(self) -> None:
        """Blocking serve loop (the ``python -m repro.serve`` path)."""
        self._httpd.serve_forever()

    def close(self) -> None:
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5)
            self._thread = None
        self.manager.close()

    def __enter__(self) -> "SweepServer":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.close()
