"""Exploration-as-a-service: persistent results + async sweep serving.

The explore layer made design-space sweeps cheap; this package makes them
*durable* and *shared*.  It has four moving parts, each usable on its own:

``serve.store``
    :class:`ResultStore` — a content-addressed on-disk result store keyed
    by the explorer's memo keys (design hash × strategy × verify config),
    with atomic JSON-blob writes, schema versioning, corruption quarantine
    and an LRU size cap.  A warm store means a repeated sweep performs
    **zero** simulations (provable via :mod:`repro.rtl.instrument`).

``serve.records``
    The serialization boundary: design/pipeline points and
    :class:`~repro.explore.runner.ExplorationResult`\\ s round-trip through
    plain JSON records, and every record's store key is the SHA-256 of its
    canonical identity payload.

``serve.jobs``
    :class:`JobManager` — the async job model (submitted → sharded →
    running → done/failed): a grid is diffed against the store
    (:func:`diff_points`, the incremental re-sweep), the missing points are
    split into shards, and shards are farmed to a worker-process pool with
    work-stealing dispatch, per-shard timeouts and bounded retry on worker
    death.  Shards reuse the batched lockstep backend
    (:func:`repro.rtl.batch_groups`) so compatible points still share lanes.

``serve.server`` / ``serve.client``
    A thin stdlib HTTP/JSON service (``POST /sweeps``, ``GET /sweeps/<id>``,
    streamed NDJSON events, ``GET /results/<key>`` straight from the store)
    and its urllib client.  ``python -m repro.explore --server URL`` is one
    client of the same API; ``python -m repro.serve`` runs the service.

See ``docs/exploration.md`` for the operator's guide.
"""

from .client import ServiceError, SweepClient
from .jobs import (
    JobManager,
    SearchJob,
    SweepConfig,
    SweepJob,
    diff_points,
    split_shards,
)
from .records import (
    UnstorablePointError,
    exploration_key,
    point_from_dict,
    point_to_dict,
    result_from_record,
    result_to_record,
    verify_key,
    verify_record,
)
from .store import SCHEMA_VERSION, ResultStore
from .server import SweepServer

__all__ = [
    "ResultStore",
    "SCHEMA_VERSION",
    "JobManager",
    "SweepConfig",
    "SweepJob",
    "SearchJob",
    "diff_points",
    "split_shards",
    "SweepServer",
    "SweepClient",
    "ServiceError",
    "UnstorablePointError",
    "point_to_dict",
    "point_from_dict",
    "result_to_record",
    "result_from_record",
    "exploration_key",
    "verify_key",
    "verify_record",
]
