"""Command-line entry: ``python -m repro.serve`` — run the sweep service.

Binds the HTTP/JSON exploration service over a persistent result store::

    $ PYTHONPATH=src python -m repro.serve --store /var/tmp/repro-store \\
          --host 127.0.0.1 --port 8377 --workers 4

then submit sweeps with ``python -m repro.explore --server
http://127.0.0.1:8377 ...`` or raw curl (API reference and operator
recipes: ``docs/exploration.md``).  With ``--port 0`` an ephemeral port is
chosen and printed — handy for smoke tests and CI.
"""

from __future__ import annotations

import argparse
import sys

from .server import SweepServer
from .store import ResultStore


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.serve",
        description="HTTP/JSON design-space exploration service over a "
                    "persistent result store.",
        epilog="Endpoints: POST /sweeps, GET /sweeps/<id>, "
               "GET /sweeps/<id>/events (NDJSON), GET /sweeps/<id>/results, "
               "GET /results/<key>, GET /healthz.  "
               "See docs/exploration.md for the full operator's guide.")
    parser.add_argument("--store", metavar="DIR", required=True,
                        help="result store directory (created if missing)")
    parser.add_argument("--host", default="127.0.0.1",
                        help="bind address (default: 127.0.0.1)")
    parser.add_argument("--port", type=int, default=8377,
                        help="TCP port; 0 picks an ephemeral port "
                             "(default: 8377)")
    parser.add_argument("--workers", type=int, default=2, metavar="N",
                        help="worker-process pool size (default: 2)")
    parser.add_argument("--shard-size", type=int, default=16, metavar="N",
                        help="points per shard — the retry/timeout unit "
                             "(default: 16)")
    parser.add_argument("--shard-timeout", type=float, default=None,
                        metavar="SECONDS",
                        help="kill and re-dispatch a shard running longer "
                             "than this (default: no timeout)")
    parser.add_argument("--max-retries", type=int, default=1, metavar="N",
                        help="re-dispatches per shard after worker death or "
                             "timeout before its points fail (default: 1)")
    parser.add_argument("--max-entries", type=int, default=None, metavar="N",
                        help="LRU cap on stored results (default: unbounded)")
    parser.add_argument("--verbose", action="store_true",
                        help="log every HTTP request to stderr")
    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    store = ResultStore(args.store, max_entries=args.max_entries)
    server = SweepServer(
        store, host=args.host, port=args.port, workers=args.workers,
        shard_size=args.shard_size, shard_timeout=args.shard_timeout,
        max_retries=args.max_retries, verbose=args.verbose)
    print(f"serving sweeps on {server.url} "
          f"(store: {store.root}, workers: {args.workers})", flush=True)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        print("shutting down", file=sys.stderr)
    finally:
        server.close()
    return 0


if __name__ == "__main__":
    sys.exit(main())
