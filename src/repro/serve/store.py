"""Content-addressed on-disk result store.

A :class:`ResultStore` maps hex digest keys (see :mod:`repro.serve.records`
for how keys are derived from memo identities) to JSON records.  Design
goals, in order:

* **Never serve a wrong record.**  Every blob carries its schema version
  and its own key; a mismatch on either is treated as a miss and the blob
  is removed (schema bumps invalidate cleanly, a blob copied to the wrong
  path can never alias another key).
* **Never crash on a bad blob.**  Unparseable files — torn by a crashed
  writer on a non-atomic filesystem, truncated by a full disk, hand-edited
  — are moved to ``quarantine/`` for post-mortem and reported as a miss,
  so the caller simply re-simulates.
* **Concurrent writers stay safe.**  Writes go to a temporary file in the
  same directory followed by :func:`os.replace`, so readers see either the
  old record or the new one, never a torn write.  Two writers racing on
  one key both write valid records with identical content (records are
  deterministic functions of the key), so last-write-wins is harmless.
* **Bounded size.**  With ``max_entries`` set, least-recently-*used*
  records are evicted once the cap is exceeded (reads refresh a blob's
  mtime, which is the recency clock).

Layout on disk (see ``docs/exploration.md`` for the operator view)::

    <root>/
      objects/<key[:2]>/<key>.json     one record per key
      quarantine/<name>.<n>            corrupt blobs, moved aside, never read
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Tuple

from ..obs import tracing as _obs_tracing
from ..obs.metrics import REGISTRY as _REGISTRY

#: Version of the record envelope/payload layout.  Bumping it invalidates
#: every existing record: :meth:`ResultStore.get` treats a mismatched blob
#: as a miss and deletes it, so a schema migration needs no tooling — the
#: next sweep simply re-simulates and re-populates.
SCHEMA_VERSION = 1

_KEY_CHARS = set("0123456789abcdef")


def _valid_key(key: str) -> bool:
    return (isinstance(key, str) and 8 <= len(key) <= 128
            and set(key) <= _KEY_CHARS)


class StoreError(ValueError):
    """A caller-side misuse of the store (bad key, bad record envelope)."""


class ResultStore:
    """Persistent, content-addressed JSON-record store.

    Parameters
    ----------
    root:
        Directory to hold the store (created if missing, together with its
        ``objects/`` and ``quarantine/`` subdirectories).
    max_entries:
        Optional LRU cap.  ``None`` (default) means unbounded; an integer
        ``n`` keeps at most ``n`` records, evicting the least recently
        read/written after each :meth:`put`.

    Statistics (``hits``/``misses``/``puts``/``evictions``/``quarantined``
    /``invalidated``) count events since construction; the service's status
    endpoint exposes them via :meth:`stats`.
    """

    def __init__(self, root, max_entries: Optional[int] = None) -> None:
        if max_entries is not None and max_entries < 1:
            raise StoreError(f"max_entries must be >= 1, got {max_entries}")
        self.root = Path(root)
        self.objects_dir = self.root / "objects"
        self.quarantine_dir = self.root / "quarantine"
        self.objects_dir.mkdir(parents=True, exist_ok=True)
        self.quarantine_dir.mkdir(parents=True, exist_ok=True)
        self.max_entries = max_entries
        self.hits = 0
        self.misses = 0
        self.puts = 0
        self.evictions = 0
        self.quarantined = 0
        self.invalidated = 0

    # -- paths -------------------------------------------------------------

    def path_for(self, key: str) -> Path:
        """Where ``key``'s record lives (whether or not it exists yet)."""
        if not _valid_key(key):
            raise StoreError(f"malformed store key {key!r}")
        return self.objects_dir / key[:2] / f"{key}.json"

    # -- read side ---------------------------------------------------------

    def get(self, key: str) -> Optional[dict]:
        """The record stored under ``key``, or ``None`` on any miss.

        A corrupt blob is quarantined, a stale-schema or mis-keyed blob is
        deleted; both count as misses — the caller's contract is simply
        "recompute on ``None``", never an exception for on-disk state.
        """
        with _obs_tracing.span("store.get", key=key[:12]) as sp:
            record = self._get(key)
            sp.args["hit"] = record is not None
        return record

    def _get(self, key: str) -> Optional[dict]:
        path = self.path_for(key)
        try:
            text = path.read_text(encoding="utf-8")
        except (FileNotFoundError, NotADirectoryError):
            self._miss()
            return None
        try:
            record = json.loads(text)
            if not isinstance(record, dict):
                raise ValueError("record is not a JSON object")
        except (ValueError, UnicodeDecodeError):
            self._quarantine(path)
            self._miss()
            return None
        if record.get("schema") != SCHEMA_VERSION or record.get("key") != key:
            # Stale schema or aliased key: silently invalid, cleanly removed.
            try:
                path.unlink()
            except OSError:
                pass
            self.invalidated += 1
            _REGISTRY.inc("store_invalidated")
            self._miss()
            return None
        try:
            os.utime(path)  # refresh LRU recency
        except OSError:
            pass
        self.hits += 1
        _REGISTRY.inc("store_hits")
        return record

    def _miss(self) -> None:
        self.misses += 1
        _REGISTRY.inc("store_misses")

    def __contains__(self, key: str) -> bool:
        return self.path_for(key).is_file()

    def keys(self) -> List[str]:
        """Every stored key (unordered scan of the objects tree)."""
        return [path.stem for _, path in self._entries()]

    def __len__(self) -> int:
        return sum(1 for _ in self._entries())

    # -- write side --------------------------------------------------------

    def put(self, key: str, record: dict) -> None:
        """Atomically persist ``record`` under ``key``.

        The record must already carry the matching ``key`` and current
        ``schema`` fields (the records module builds such envelopes);
        refusing mismatches here keeps a bug from planting records that
        :meth:`get` would immediately discard.
        """
        with _obs_tracing.span("store.put", key=key[:12]):
            self._put(key, record)

    def _put(self, key: str, record: dict) -> None:
        path = self.path_for(key)
        if record.get("schema") != SCHEMA_VERSION:
            raise StoreError(
                f"record schema {record.get('schema')!r} != current "
                f"{SCHEMA_VERSION} (build records via repro.serve.records)")
        if record.get("key") != key:
            raise StoreError(
                f"record key {record.get('key')!r} does not match store "
                f"key {key!r}")
        path.parent.mkdir(parents=True, exist_ok=True)
        text = json.dumps(record, indent=2, sort_keys=True)
        fd, tmp_name = tempfile.mkstemp(prefix=f".{key[:8]}-", suffix=".tmp",
                                        dir=str(path.parent))
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                handle.write(text)
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        self.puts += 1
        _REGISTRY.inc("store_puts")
        if self.max_entries is not None:
            self._evict_over_cap()

    def invalidate(self, key: str) -> bool:
        """Drop ``key``'s record if present; returns whether one existed."""
        try:
            self.path_for(key).unlink()
        except OSError:
            return False
        self.invalidated += 1
        _REGISTRY.inc("store_invalidated")
        return True

    # -- maintenance -------------------------------------------------------

    def stats(self) -> Dict[str, int]:
        """Counter snapshot plus the current entry count."""
        return {
            "entries": len(self),
            "hits": self.hits,
            "misses": self.misses,
            "puts": self.puts,
            "evictions": self.evictions,
            "quarantined": self.quarantined,
            "invalidated": self.invalidated,
        }

    def _entries(self) -> Iterator[Tuple[float, Path]]:
        """(mtime, path) for every record blob currently on disk."""
        try:
            buckets = list(self.objects_dir.iterdir())
        except OSError:
            return
        for bucket in buckets:
            if not bucket.is_dir():
                continue
            try:
                blobs = list(bucket.iterdir())
            except OSError:
                continue
            for blob in blobs:
                if blob.suffix != ".json":
                    continue
                try:
                    yield blob.stat().st_mtime, blob
                except OSError:
                    continue  # raced with an eviction/invalidation

    def _evict_over_cap(self) -> None:
        entries = sorted(self._entries())  # oldest mtime first
        excess = len(entries) - (self.max_entries or 0)
        for _, path in entries[:max(0, excess)]:
            try:
                path.unlink()
            except OSError:
                continue
            self.evictions += 1
            _REGISTRY.inc("store_evictions")

    def _quarantine(self, path: Path) -> None:
        """Move a corrupt blob aside (never delete evidence)."""
        base = self.quarantine_dir / path.name
        target = base
        counter = 0
        while target.exists():
            counter += 1
            target = base.with_suffix(f"{base.suffix}.{counter}")
        try:
            os.replace(path, target)
            self.quarantined += 1
            _REGISTRY.inc("store_quarantined")
        except OSError:
            # Worst case (e.g. quarantine dir removed): drop the blob so
            # the next run is not poisoned by it either.
            try:
                path.unlink()
            except OSError:
                pass
