"""Elaboration: turn a validated :class:`PipelineGraph` into hardware.

The elaborated :class:`Pipeline` is an ordinary :class:`~repro.rtl.Component`
exposing the standard ``input_fill`` / ``output_drain`` stream interfaces, so
it drops unchanged into every harness the repo already has: ``VideoSystem``,
``run_stream_through``, the verification session runner, the exploration
runner and the synthesis estimator (which aggregates area over the whole
tree for free).

Per edge, the elaborator builds the chain

    producer ─[bridge]─ (WidthDownConverter) ─ (StreamChannel) ─
        (WidthUpConverter) ─[bridge]─ consumer

inserting each element only when needed: converters appear exactly when an
endpoint's element width differs from the edge's bus width (Section 3.3's
automatic width adaptation, "requiring no designer intervention"), and the
channel FIFO appears when the edge has a non-zero depth.  Bridges are pure
combinational renaming, so a depth-0 edge between width-matched ports adds
zero cycles — the legacy ``VideoSystem`` wiring is exactly the two-wire-edge
special case.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..core.interfaces import StreamSinkIface, StreamSourceIface
from ..metagen.width_adapter import WidthDownConverter, WidthUpConverter
from ..rtl import Component
from .channel import StreamChannel
from .graph import GRAPH_INPUT, GRAPH_OUTPUT, Edge, PipelineGraph


def _bridge_source_to_sink(src: StreamSourceIface, dst: StreamSinkIface):
    """Producer source iface -> consumer sink iface (the standard hop)."""
    def bridge() -> None:
        dst.data.next = src.data.value
        dst.push.next = src.valid.value
        src.pop.next = dst.ready.value
    return bridge


def _bridge_sink_to_sink(src: StreamSinkIface, dst: StreamSinkIface):
    """Pipeline's external fill -> first consumer (graph-input hop)."""
    def bridge() -> None:
        dst.data.next = src.data.value
        dst.push.next = src.push.value
        src.ready.next = dst.ready.value
    return bridge


def _bridge_source_to_source(src: StreamSourceIface, dst: StreamSourceIface):
    """Last producer -> pipeline's external drain (graph-output hop)."""
    def bridge() -> None:
        dst.data.next = src.data.value
        dst.valid.next = src.valid.value
        src.pop.next = dst.pop.value
    return bridge


def _bridge_sink_to_source(src: StreamSinkIface, dst: StreamSourceIface):
    """External fill straight to external drain (degenerate pass-through)."""
    def bridge() -> None:
        dst.data.next = src.data.value
        dst.valid.next = src.push.value
        src.ready.next = dst.pop.value
    return bridge


def _is_source_style(iface) -> bool:
    return isinstance(iface, StreamSourceIface) or hasattr(iface, "valid")


@dataclass(frozen=True)
class EdgeInstance:
    """The hardware one graph edge elaborated into."""

    edge: Edge
    #: The elastic FIFO of the edge, or None for a depth-0 wire.
    channel: Optional[StreamChannel]
    #: Width converters inserted on this edge (producer-side first).
    adapters: Tuple[Component, ...]

    @property
    def bus_width(self) -> int:
        if self.channel is not None:
            return self.channel.width
        return 0


class Pipeline(Component):
    """A fully-elaborated pipeline graph, ready to simulate.

    Attributes
    ----------
    input_fill / output_drain:
        The external stream boundary (same convention as every design).
    channels:
        Every elastic FIFO edge, in graph-edge order.
    adapters:
        Every auto-inserted width converter, in insertion order.
    edge_instances:
        Per-edge record of what was built (channel + adapters), used by the
        per-edge verification monitors and by :meth:`describe`.
    """

    #: The pipeline shell is wiring only; nodes, channels and adapters own
    #: all the logic, so synthesis dissolves the shell itself.
    transparent = True
    style = "flow"
    binding = "flow"

    def __init__(self, graph: PipelineGraph, name: Optional[str] = None) -> None:
        super().__init__(name or graph.name)
        graph.validate()
        self.graph = graph

        for node in graph.nodes.values():
            self.child(node.component)

        self.width = graph.resolved_input_width()
        self.output_width = graph.resolved_output_width()
        self.input_fill = StreamSinkIface(self, self.width,
                                          name=f"{self.name}_in")
        self.output_drain = StreamSourceIface(self, self.output_width,
                                              name=f"{self.name}_out")

        self.channels: List[StreamChannel] = []
        self.adapters: List[Component] = []
        self.edge_instances: List[EdgeInstance] = []
        for edge in graph.edges:
            self._build_edge(edge)

        if graph._golden is not None:
            #: Pipeline-level golden model (``pixels -> pixels``) consumed
            #: by the verification session and the exploration runner.
            self.expected_output = graph._golden

    # -- construction ---------------------------------------------------------

    def _endpoints(self, edge: Edge):
        """(producer iface, producer width, consumer iface, consumer width)."""
        if edge.src == GRAPH_INPUT:
            src_iface: object = self.input_fill
            src_w = self.width
        else:
            node = self.graph.nodes[edge.src]
            src_iface = node.outputs[edge.src_port]
            src_w = src_iface.width
        if edge.dst == GRAPH_OUTPUT:
            dst_iface: object = self.output_drain
            dst_w = self.output_width
        else:
            node = self.graph.nodes[edge.dst]
            dst_iface = node.inputs[edge.dst_port]
            dst_w = dst_iface.width
        return src_iface, src_w, dst_iface, dst_w

    def _connect(self, src, dst) -> None:
        """Register the right combinational bridge for an iface pair."""
        if _is_source_style(src):
            if _is_source_style(dst):
                self.comb(_bridge_source_to_source(src, dst))
            else:
                self.comb(_bridge_source_to_sink(src, dst))
        else:
            if _is_source_style(dst):
                self.comb(_bridge_sink_to_source(src, dst))
            else:
                self.comb(_bridge_sink_to_sink(src, dst))

    def _build_edge(self, edge: Edge) -> None:
        src_iface, src_w, dst_iface, dst_w = self._endpoints(edge)
        bus = edge.bus_width if edge.bus_width is not None else min(src_w, dst_w)
        label = edge.label()
        current = src_iface
        inserted: List[Component] = []

        if src_w != bus:
            down = WidthDownConverter(f"{label}_down", element_width=src_w,
                                      bus_width=bus)
            self.child(down)
            inserted.append(down)
            self._connect(current, down.wide_in)
            current = down.narrow_out

        channel: Optional[StreamChannel] = None
        if edge.depth > 0:
            channel = StreamChannel(f"{label}_ch", width=bus, depth=edge.depth)
            self.child(channel)
            self.channels.append(channel)
            self._connect(current, channel.fill)
            current = channel.drain

        if dst_w != bus:
            up = WidthUpConverter(f"{label}_up", element_width=dst_w,
                                  bus_width=bus)
            self.child(up)
            inserted.append(up)
            self._connect(current, up.narrow_in)
            current = up.wide_out

        self._connect(current, dst_iface)
        self.adapters.extend(inserted)
        self.edge_instances.append(EdgeInstance(edge, channel, tuple(inserted)))

    # -- introspection ---------------------------------------------------------

    def adaptation_plans(self) -> List[object]:
        """The :class:`WidthAdaptationPlan` of every inserted converter."""
        return [adapter.plan for adapter in self.adapters]

    def describe(self) -> dict:
        """Structural summary in the same shape the shipped designs use."""
        return {
            "design": self.name,
            "style": self.style,
            "binding": self.binding,
            "nodes": sorted(self.graph.nodes),
            "edges": [
                {
                    "label": inst.edge.label(),
                    "depth": inst.edge.depth,
                    "bus_width": (inst.channel.width if inst.channel
                                  else inst.edge.bus_width),
                    "adapters": [type(a).__name__ for a in inst.adapters],
                }
                for inst in self.edge_instances
            ],
            "auto_adapters": len(self.adapters),
            "channels": len(self.channels),
        }


def elaborate(graph: PipelineGraph, name: Optional[str] = None) -> Pipeline:
    """Functional spelling of :meth:`PipelineGraph.elaborate`."""
    return Pipeline(graph, name=name)
