"""Typed stream channels: the edges of an elaborated pipeline graph.

A :class:`StreamChannel` is the physical form of one graph edge — an elastic
first-word-fall-through FIFO with a :class:`~repro.core.interfaces.StreamSinkIface`
facing the producer and a :class:`~repro.core.interfaces.StreamSourceIface`
facing the consumer.  Like the shipped queue container it is a pure wrapper
around the :class:`~repro.primitives.fifo.SyncFIFO` core (``transparent``:
the glue dissolves at synthesis, only the FIFO macro remains), which also
means every edge of a pipeline can be watched by the *same* protocol
monitors and golden models the verification subsystem uses for containers.

Depth-0 edges ("wires") are not built from this class at all — the
elaborator forwards the endpoint interfaces combinationally, adding zero
cycles of latency, which is what makes the legacy ``VideoSystem`` wiring a
two-wire-edge special case of a pipeline graph.
"""

from __future__ import annotations

from ..core.interfaces import StreamSinkIface, StreamSourceIface
from ..primitives import SyncFIFO
from ..rtl import Component


class StreamChannel(Component):
    """One elastic FIFO edge of an elaborated pipeline.

    Parameters
    ----------
    width:
        Element width in bits.  The elaborator sizes channels to the edge's
        *bus* width, so a width-adapted edge buffers narrow beats, not wide
        elements.
    depth:
        FIFO depth in elements (>= 2, the :class:`SyncFIFO` minimum).
    """

    transparent = True

    def __init__(self, name: str, width: int, depth: int) -> None:
        super().__init__(name)
        if depth < 2:
            raise ValueError(
                f"channel {name!r}: FIFO depth must be >= 2, got {depth} "
                f"(use depth=0 for a combinational wire edge)")
        self.width = width
        self.depth = depth
        #: Logical capacity, mirroring the container API the stream
        #: monitors expect (occupancy must stay within [0, capacity]).
        self.capacity = depth
        self.fill = StreamSinkIface(self, width, name=f"{name}_fill")
        self.drain = StreamSourceIface(self, width, name=f"{name}_drain")
        self.fifo = self.child(SyncFIFO(f"{name}_fifo", depth=depth, width=width))

        @self.comb
        def wrap() -> None:
            self.fifo.din.next = self.fill.data.value
            self.fifo.push.next = self.fill.push.value
            self.fill.ready.next = 0 if self.fifo.full.value else 1
            self.drain.data.next = self.fifo.dout.value
            self.drain.valid.next = 0 if self.fifo.empty.value else 1
            self.fifo.pop.next = self.drain.pop.value

    @property
    def occupancy(self) -> int:
        """Number of elements currently buffered."""
        return self.fifo.occupancy

    def snapshot(self) -> list:
        """A copy of the buffered elements, head first."""
        return self.fifo.contents()
