"""Per-edge verification monitors for elaborated pipelines.

Every elastic channel of a :class:`~repro.flow.elaborate.Pipeline` is a
FIFO-ordered stream container, so the *same* protocol monitor + golden
model the verification subsystem applies to shipped containers
(:class:`~repro.verify.monitor.StreamContainerMonitor` over a
:class:`~repro.verify.scoreboard.FifoModel`) watches every edge of a
pipeline: occupancy bounds, element conservation, valid/data stability and
FIFO-exact data ordering, edge by edge.

Monitors are returned *unattached*; a verification session attaches them to
its simulator and drives their two-phase hooks (see
``repro.verify.session._run_bench``), and tests may drive them manually::

    monitors = edge_monitors(pipeline)
    for m in monitors:
        m.attach(sim)
    ...per cycle: sim.settle(); m.pre_edge(cycle); sim.step()
"""

from __future__ import annotations

from typing import List

from ..verify.monitor import StreamContainerMonitor
from ..verify.scoreboard import FifoModel


def edge_monitors(pipeline) -> List[StreamContainerMonitor]:
    """One FIFO-ordered stream monitor per elastic channel of ``pipeline``.

    Depth-0 wire edges carry no state and are not monitored (their
    correctness is covered by the endpoint monitors on either side).
    """
    monitors: List[StreamContainerMonitor] = []
    for inst in pipeline.edge_instances:
        channel = inst.channel
        if channel is None:
            continue
        monitors.append(StreamContainerMonitor(
            f"{pipeline.name}.edge.{channel.name}", channel,
            channel.fill, channel.drain, FifoModel(channel.depth),
            max_occupancy=channel.depth))
    return monitors
