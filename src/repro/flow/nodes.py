"""Structural pipeline nodes: fork, join and round-robin stream routing.

These are the topology-shaping building blocks a :class:`~repro.flow.graph.
PipelineGraph` offers beyond plain processing stages:

* :class:`Fork` — broadcast one stream to every output (each consumer sees
  every element; an element retires only once *all* outputs accepted it);
* :class:`Join` — merge several streams through a real arbiter from
  :mod:`repro.primitives.arbiter` (priority or round-robin policy), the
  "automatic generation of arbitration logic for shared physical resources"
  of Section 3.4 applied to stream channels;
* :class:`RoundRobinSplit` / :class:`RoundRobinMerge` — deterministic
  alternating distribution/collection.  A split/merge pair with the same
  fan count reconstructs the original element order exactly, which is what
  lets the dual-path pipeline scenario round-trip frames bit-exact.

Every node exposes its ports through the ``flow_inputs`` / ``flow_outputs``
dicts the graph's port discovery looks for first.
"""

from __future__ import annotations

from typing import Dict, List

from ..core.interfaces import StreamSinkIface, StreamSourceIface
from ..primitives import PriorityArbiter, RoundRobinArbiter
from ..rtl import Component, clog2

#: Arbitration policies a :class:`Join` accepts, mapped to the primitive.
JOIN_POLICIES = {
    "priority": PriorityArbiter,
    "roundrobin": RoundRobinArbiter,
}


class Fork(Component):
    """Broadcast one input stream to ``ways`` output streams.

    One element is held at a time; each output presents it until that
    output pops it, and a fresh element is accepted only after every
    output has taken the current one.  Slow consumers therefore throttle
    the whole broadcast — the behaviour a video tap (e.g. a statistics
    side-channel) needs to stay frame-consistent with the main path.
    """

    def __init__(self, name: str, width: int, ways: int = 2) -> None:
        super().__init__(name)
        if ways < 2:
            raise ValueError(f"Fork needs at least 2 ways, got {ways}")
        self.width = width
        self.ways = ways
        self.fill = StreamSinkIface(self, width, name=f"{name}_fill")
        self.outs: List[StreamSourceIface] = [
            StreamSourceIface(self, width, name=f"{name}_out{i}")
            for i in range(ways)]
        self.flow_inputs: Dict[str, StreamSinkIface] = {"in": self.fill}
        self.flow_outputs: Dict[str, StreamSourceIface] = {
            f"out{i}": out for i, out in enumerate(self.outs)}

        self._data = self.state(width, name=f"{name}_data")
        #: Bitmask of outputs that still have to accept the held element;
        #: zero means the fork is empty and can take a new element.
        self._pending = self.state(ways, name=f"{name}_pending")

        @self.comb
        def wires() -> None:
            pending = self._pending.value
            self.fill.ready.next = 1 if pending == 0 else 0
            for i, out in enumerate(self.outs):
                out.data.next = self._data.value
                out.valid.next = (pending >> i) & 1

        @self.seq
        def control() -> None:
            pending = self._pending.value
            if pending == 0:
                if self.fill.push.value:
                    self._data.next = self.fill.data.value
                    self._pending.next = (1 << self.ways) - 1
                return
            nxt = pending
            for i, out in enumerate(self.outs):
                if ((pending >> i) & 1) and out.pop.value:
                    nxt &= ~(1 << i)
            self._pending.next = nxt


class Join(Component):
    """Merge ``ways`` input streams into one through a generated arbiter.

    Element order across inputs follows the arbitration policy (an input
    keeps its grant while it has data, matching the arbiter's transaction
    lock), so a :class:`Join` is the right merge when the consumer is
    order-insensitive — a histogram, a multiset scoreboard, a shared
    memory port.  Use :class:`RoundRobinMerge` when the original
    interleaving must be reconstructed exactly.
    """

    def __init__(self, name: str, width: int, ways: int = 2,
                 policy: str = "roundrobin") -> None:
        super().__init__(name)
        if ways < 2:
            raise ValueError(f"Join needs at least 2 ways, got {ways}")
        try:
            arbiter_cls = JOIN_POLICIES[policy]
        except KeyError:
            raise ValueError(
                f"unknown join policy {policy!r}; expected one of "
                f"{sorted(JOIN_POLICIES)}") from None
        self.width = width
        self.ways = ways
        self.policy = policy
        self.ins: List[StreamSinkIface] = [
            StreamSinkIface(self, width, name=f"{name}_in{i}")
            for i in range(ways)]
        self.out = StreamSourceIface(self, width, name=f"{name}_out")
        self.flow_inputs = {f"in{i}": port for i, port in enumerate(self.ins)}
        self.flow_outputs = {"out": self.out}
        self.arbiter = self.child(arbiter_cls(f"{name}_arb", ways))

        @self.comb
        def request_feed() -> None:
            for i, port in enumerate(self.ins):
                self.arbiter.requests[i].next = port.push.value

        @self.comb
        def route() -> None:
            granted = -1
            for i in range(self.ways):
                if self.arbiter.grants[i].value:
                    granted = i
            if granted >= 0:
                winner = self.ins[granted]
                self.out.valid.next = 1
                self.out.data.next = winner.data.value
            else:
                self.out.valid.next = 0
                self.out.data.next = 0
            for i, port in enumerate(self.ins):
                grant = self.arbiter.grants[i].value
                port.ready.next = 1 if (grant and self.out.pop.value) else 0


class RoundRobinSplit(Component):
    """Distribute an input stream over ``ways`` outputs, one element each.

    Element ``k`` goes to output ``k mod ways``.  Paired with a
    :class:`RoundRobinMerge` of the same fan count, the original stream
    order is reconstructed exactly whatever the relative latencies of the
    paths in between.
    """

    def __init__(self, name: str, width: int, ways: int = 2) -> None:
        super().__init__(name)
        if ways < 2:
            raise ValueError(f"RoundRobinSplit needs at least 2 ways, got {ways}")
        self.width = width
        self.ways = ways
        self.fill = StreamSinkIface(self, width, name=f"{name}_fill")
        self.outs: List[StreamSourceIface] = [
            StreamSourceIface(self, width, name=f"{name}_out{i}")
            for i in range(ways)]
        self.flow_inputs = {"in": self.fill}
        self.flow_outputs = {f"out{i}": out for i, out in enumerate(self.outs)}
        self._ptr = self.state(max(1, clog2(max(2, ways))), name=f"{name}_ptr")

        @self.comb
        def wires() -> None:
            ptr = self._ptr.value
            ready = 0
            for i, out in enumerate(self.outs):
                selected = 1 if i == ptr else 0
                out.data.next = self.fill.data.value
                out.valid.next = self.fill.push.value if selected else 0
                if selected and out.pop.value:
                    ready = 1
            self.fill.ready.next = ready

        @self.seq
        def advance() -> None:
            if self.fill.push.value and self.fill.ready.value:
                self._ptr.next = (self._ptr.value + 1) % self.ways


class RoundRobinMerge(Component):
    """Collect elements from ``ways`` inputs in strict rotation.

    The inverse of :class:`RoundRobinSplit`: the output waits for the
    selected input even when other inputs have data, trading merge
    opportunism for exact order reconstruction.
    """

    def __init__(self, name: str, width: int, ways: int = 2) -> None:
        super().__init__(name)
        if ways < 2:
            raise ValueError(f"RoundRobinMerge needs at least 2 ways, got {ways}")
        self.width = width
        self.ways = ways
        self.ins: List[StreamSinkIface] = [
            StreamSinkIface(self, width, name=f"{name}_in{i}")
            for i in range(ways)]
        self.out = StreamSourceIface(self, width, name=f"{name}_out")
        self.flow_inputs = {f"in{i}": port for i, port in enumerate(self.ins)}
        self.flow_outputs = {"out": self.out}
        self._ptr = self.state(max(1, clog2(max(2, ways))), name=f"{name}_ptr")

        @self.comb
        def wires() -> None:
            ptr = self._ptr.value
            valid = 0
            data = 0
            for i, port in enumerate(self.ins):
                selected = 1 if i == ptr else 0
                port.ready.next = 1 if (selected and self.out.pop.value) else 0
                if selected:
                    valid = port.push.value
                    data = port.data.value
            self.out.valid.next = valid
            self.out.data.next = data

        @self.seq
        def advance() -> None:
            if self.out.valid.value and self.out.pop.value:
                self._ptr.next = (self._ptr.value + 1) % self.ways
