"""Pipeline-composition axes for the design-space explorer.

A :class:`PipelinePoint` pins down one elaborated pipeline configuration —
topology, pipeline depth (number of chained stages), per-edge FIFO depth
and shared-bus width — and plugs into the *existing*
:class:`~repro.explore.runner.ExplorationRunner` unchanged: the runner
calls ``point.build()`` / ``point.golden(frame)`` when a point provides
them, and the point exposes the report-facing attributes
(``design``/``binding``/``pixel_format``/``capacity``) so sweep tables,
memoization and multiprocessing all work exactly as for the built-in
design families.

This module deliberately avoids importing :mod:`repro.explore` at load
time (the explore package re-exports these names, which would cycle);
everything explore-side is reached lazily.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

#: Pipeline topologies the sweep knows how to build.
PIPELINE_TOPOLOGIES = ("chain", "dualpath", "rgbbus")


@dataclass(frozen=True, order=True)
class PipelinePoint:
    """One point of a pipeline-composition sweep.

    Attributes
    ----------
    topology:
        ``"chain"`` (N copy stages in series), ``"dualpath"``
        (split/merge over two parallel copy paths) or ``"rgbbus"`` (24-bit
        pixels over a narrow shared bus with auto-inserted adapters).
    stages:
        Pipeline depth of the ``chain`` topology (structural constant for
        the other two: 2 parallel paths / 1 bus core).
    fifo_depth:
        Elastic FIFO depth of every buffered edge.
    bus_width:
        Stage/bus element width.  For ``rgbbus`` this is the narrow shared
        bus the 24-bit pixels are serialised over.
    frame_width, frame_height:
        Stimulus frame geometry.
    """

    topology: str = "chain"
    stages: int = 2
    fifo_depth: int = 4
    bus_width: int = 8
    frame_width: int = 16
    frame_height: int = 8

    # -- the report/memoization surface the explorer expects ------------------

    @property
    def design(self) -> str:
        return f"flow/{self.topology}"

    @property
    def binding(self) -> str:
        return f"s{self.stages}.d{self.fifo_depth}.b{self.bus_width}"

    @property
    def pixel_format(self) -> str:
        return "rgb24" if self.topology == "rgbbus" else "gray8"

    @property
    def capacity(self) -> int:
        return self.fifo_depth

    @property
    def element_width(self) -> int:
        """Width of the pixels entering the pipeline."""
        return 24 if self.topology == "rgbbus" else self.bus_width

    @property
    def stimulus_max_value(self) -> int:
        """Stimulus ceiling honoured by ``explore.runner.stimulus_frame``:
        the datapath is exactly ``element_width`` bits wide, which for
        narrow buses is less than the nominal pixel format's range."""
        return (1 << self.element_width) - 1

    def key(self) -> Tuple:
        """Canonical memoization key (disjoint from DesignPoint keys)."""
        return ("flow", self.topology, self.stages, self.fifo_depth,
                self.bus_width, self.frame_width, self.frame_height)

    def design_hash(self) -> str:
        """Stable short hash of the point's structural configuration."""
        text = ":".join(str(part) for part in self.key())
        return hashlib.sha1(text.encode("ascii")).hexdigest()[:12]

    def label(self) -> str:
        return (f"{self.design} {self.binding} "
                f"{self.frame_width}x{self.frame_height}")

    # -- runner hooks ----------------------------------------------------------

    def build(self):
        """Elaborate the pipeline this point describes."""
        from ..designs import (
            build_copy_chain,
            build_dual_path_saa2vga,
            build_rgb_over_bus_pipeline,
        )

        name = f"{self.topology}_{self.design_hash()}"
        if self.topology == "chain":
            return build_copy_chain(self.stages, name=name,
                                    width=self.bus_width,
                                    fifo_depth=self.fifo_depth)
        if self.topology == "dualpath":
            return build_dual_path_saa2vga(name=name, width=self.bus_width,
                                           fifo_depth=self.fifo_depth)
        if self.topology == "rgbbus":
            return build_rgb_over_bus_pipeline(name=name,
                                               bus_width=self.bus_width,
                                               fifo_depth=self.fifo_depth)
        raise ValueError(f"unknown pipeline topology {self.topology!r}")

    def golden(self, frame) -> list:
        """All shipped sweep topologies are stream-identity pipelines."""
        from ..video import flatten

        return flatten(frame)


def is_valid_pipeline_point(point: PipelinePoint) -> Tuple[bool, Optional[str]]:
    """Check whether a point names a buildable pipeline configuration."""
    if point.topology not in PIPELINE_TOPOLOGIES:
        return False, (f"unknown topology {point.topology!r} "
                       f"(known: {PIPELINE_TOPOLOGIES})")
    if point.stages < 1:
        return False, "pipeline depth (stages) must be >= 1"
    if point.fifo_depth < 2:
        return False, "edge FIFO depth must be >= 2"
    if point.bus_width < 1:
        return False, "bus width must be >= 1"
    if point.topology == "rgbbus" and 24 % point.bus_width:
        return False, (f"rgbbus needs a bus width dividing 24, "
                       f"got {point.bus_width}")
    if point.topology != "chain" and point.stages != 2:
        # Structural constant for dualpath (2 paths) and rgbbus (core +
        # adapters); only the chain topology sweeps real pipeline depth.
        return False, f"topology {point.topology!r} has a fixed depth of 2"
    if point.frame_width < 1 or point.frame_height < 1:
        return False, "frame dimensions must be >= 1"
    return True, None


def expand_pipeline_grid(
        topologies: Sequence[str] = ("chain",),
        stages: Sequence[int] = (2,),
        fifo_depths: Sequence[int] = (4,),
        bus_widths: Sequence[int] = (8,),
        frame_sizes: Sequence[Tuple[int, int]] = ((16, 8),),
) -> List[PipelinePoint]:
    """Cartesian expansion of the pipeline axes into valid points.

    Same contract as :func:`repro.explore.grid.expand_grid`: fixed nesting
    order, deterministic output, invalid combinations silently dropped
    (e.g. depth values for the fixed-depth topologies other than 2).
    """
    points: List[PipelinePoint] = []
    for topology in topologies:
        for depth in stages:
            for fifo_depth in fifo_depths:
                for bus in bus_widths:
                    for width, height in frame_sizes:
                        point = PipelinePoint(
                            topology=topology, stages=int(depth),
                            fifo_depth=int(fifo_depth), bus_width=int(bus),
                            frame_width=int(width), frame_height=int(height))
                        ok, _ = is_valid_pipeline_point(point)
                        if ok:
                            points.append(point)
    return points
