"""Dataflow pipeline composition: graph-built multi-stage streaming systems.

The composition subsystem the paper's building blocks were missing a stage
for: declare a :class:`PipelineGraph` whose nodes are any stream-interfaced
stages (shipped designs, containers, width converters, fork/join/round-robin
routers) and whose edges are typed elastic channels, then
:meth:`~PipelineGraph.elaborate` it into an ordinary component that runs
under every settle strategy, slots into ``VideoSystem``/``run_stream_through``,
verifies with per-edge protocol monitors, sweeps through ``repro.explore``
(see :mod:`repro.flow.sweep`) and aggregates area through ``repro.synth``.

Width mismatches between connected ports are resolved automatically: the
elaborator inserts :class:`~repro.metagen.width_adapter.WidthDownConverter` /
:class:`~repro.metagen.width_adapter.WidthUpConverter` pairs from the
metagen adaptation plans, "requiring no designer intervention" (Section 3.3).
"""

from .channel import StreamChannel
from .elaborate import EdgeInstance, Pipeline, elaborate
from .graph import (
    GRAPH_INPUT,
    GRAPH_OUTPUT,
    Edge,
    FlowNode,
    GraphError,
    PipelineGraph,
    stream_ports,
)
from .monitors import edge_monitors
from .nodes import JOIN_POLICIES, Fork, Join, RoundRobinMerge, RoundRobinSplit

__all__ = [
    "PipelineGraph",
    "Pipeline",
    "elaborate",
    "Edge",
    "EdgeInstance",
    "FlowNode",
    "GraphError",
    "GRAPH_INPUT",
    "GRAPH_OUTPUT",
    "stream_ports",
    "StreamChannel",
    "Fork",
    "Join",
    "RoundRobinSplit",
    "RoundRobinMerge",
    "JOIN_POLICIES",
    "edge_monitors",
]
