"""Declarative pipeline graphs: nodes, typed edges, topology validation.

The paper's central claim is that containers, iterators and algorithms are
*composable*; this module provides the composition surface.  A
:class:`PipelineGraph` is a plain Python description — no hardware is built
until :meth:`PipelineGraph.elaborate` — of a multi-stage streaming system:

* **nodes** are stages exposing stream interfaces: shipped designs
  (anything with ``input_fill``/``output_drain``), bare containers, width
  converters, or the structural nodes of :mod:`repro.flow.nodes`
  (fork/join/round-robin);
* **edges** are typed stream channels with a configurable elastic FIFO
  depth (0 = combinational wire) and an optional ``bus_width`` that forces
  the edge onto a narrower physical bus — the elaborator then inserts
  width converters from :mod:`repro.metagen.width_adapter` automatically.

Validation catches dangling ports, double-driven ports, non-adaptable
width mismatches and cycles *before* any component is instantiated, so
graph-construction errors surface with graph-level names.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple, Union

from ..core.interfaces import StreamSinkIface, StreamSourceIface
from ..rtl import Component
from .nodes import Fork, Join, RoundRobinMerge, RoundRobinSplit

#: Sentinel node names for the graph's external boundary.
GRAPH_INPUT = "@in"
GRAPH_OUTPUT = "@out"


class GraphError(Exception):
    """A malformed pipeline graph (validation happens before elaboration)."""


def stream_ports(component: Component) -> Tuple[Dict[str, StreamSinkIface],
                                                Dict[str, StreamSourceIface]]:
    """Discover the stream ports of a stage component.

    Resolution order:

    1. explicit ``flow_inputs`` / ``flow_outputs`` dicts (the structural
       nodes declare these);
    2. the design convention ``input_fill`` / ``output_drain``;
    3. every :class:`StreamSinkIface` / :class:`StreamSourceIface`
       attribute of the component itself (children are not scanned), keyed
       by attribute name — this is what makes bare containers and width
       converters usable as stages without any wrapping.
    """
    explicit_in = getattr(component, "flow_inputs", None)
    explicit_out = getattr(component, "flow_outputs", None)
    if explicit_in is not None or explicit_out is not None:
        return dict(explicit_in or {}), dict(explicit_out or {})
    fill = getattr(component, "input_fill", None)
    drain = getattr(component, "output_drain", None)
    if fill is not None or drain is not None:
        inputs = {"in": fill} if fill is not None else {}
        outputs = {"out": drain} if drain is not None else {}
        return inputs, outputs
    inputs: Dict[str, StreamSinkIface] = {}
    outputs: Dict[str, StreamSourceIface] = {}
    for attr, value in vars(component).items():
        if isinstance(value, StreamSinkIface):
            inputs[attr] = value
        elif isinstance(value, StreamSourceIface):
            outputs[attr] = value
    return inputs, outputs


@dataclass
class FlowNode:
    """One stage of a pipeline graph plus its discovered stream ports."""

    name: str
    component: Component
    inputs: Dict[str, StreamSinkIface] = field(default_factory=dict)
    outputs: Dict[str, StreamSourceIface] = field(default_factory=dict)

    def input_width(self, port: str) -> int:
        return self.inputs[port].width

    def output_width(self, port: str) -> int:
        return self.outputs[port].width

    def __repr__(self) -> str:
        return (f"<FlowNode {self.name}: in={sorted(self.inputs)} "
                f"out={sorted(self.outputs)}>")


@dataclass(frozen=True)
class Edge:
    """One typed stream connection of the graph."""

    src: str
    src_port: str
    dst: str
    dst_port: str
    depth: int
    bus_width: Optional[int] = None

    def label(self) -> str:
        """Identifier used to name the edge's elaborated hardware."""
        src = "in" if self.src == GRAPH_INPUT else f"{self.src}_{self.src_port}"
        dst = "out" if self.dst == GRAPH_OUTPUT else f"{self.dst}_{self.dst_port}"
        return f"{src}__{dst}"


NodeRef = Union[str, FlowNode]


class PipelineGraph:
    """Build a multi-stage streaming system declaratively, then elaborate it.

    Typical use::

        g = PipelineGraph("dual", input_width=8, output_width=8)
        split = g.split("split", width=8, ways=2)
        a = g.stage(build_saa2vga_pattern("fifo"), name="path_a")
        b = g.stage(build_saa2vga_pattern("fifo"), name="path_b")
        merge = g.merge("merge", width=8, ways=2)
        g.connect(g.INPUT, split, depth=0)
        g.connect(split, a, depth=4)
        g.connect(split, b, depth=4)
        g.connect(a, merge, depth=4)
        g.connect(b, merge, depth=4)
        g.connect(merge, g.OUTPUT, depth=0)
        pipeline = g.elaborate()          # a Component: drop into VideoSystem

    ``connect`` resolves ports automatically — the first still-unconnected
    output of the source and input of the destination — so fan-out nodes
    read naturally; explicit ``src_port``/``dst_port`` override.
    """

    INPUT = GRAPH_INPUT
    OUTPUT = GRAPH_OUTPUT

    def __init__(self, name: str = "pipeline",
                 input_width: Optional[int] = None,
                 output_width: Optional[int] = None) -> None:
        self.name = name
        self.input_width = input_width
        self.output_width = output_width
        self.nodes: Dict[str, FlowNode] = {}
        self.edges: List[Edge] = []
        self._used_inputs: set = set()   # (node, port)
        self._used_outputs: set = set()
        self._open_outputs: set = set()
        self._golden = None

    # -- node construction ----------------------------------------------------

    def stage(self, component: Component, name: Optional[str] = None) -> FlowNode:
        """Add any stream-interfaced component as a pipeline stage."""
        node_name = name or component.name
        if node_name in self.nodes:
            raise GraphError(f"duplicate node name {node_name!r}")
        if node_name in (GRAPH_INPUT, GRAPH_OUTPUT):
            raise GraphError(f"{node_name!r} is a reserved node name")
        if component.parent is not None:
            raise GraphError(
                f"component {component.name!r} already has a parent and "
                f"cannot be added as a stage")
        inputs, outputs = stream_ports(component)
        if not inputs and not outputs:
            raise GraphError(
                f"component {component.name!r} exposes no stream interfaces "
                f"and cannot be a pipeline stage")
        # The node name becomes the component name, so two stages built from
        # the same factory (same default component name) stay distinct in
        # the elaborated hierarchy.
        component.name = node_name
        node = FlowNode(node_name, component, inputs, outputs)
        self.nodes[node_name] = node
        return node

    def fork(self, name: str, width: int, ways: int = 2) -> FlowNode:
        """Add a broadcast :class:`~repro.flow.nodes.Fork` node."""
        return self.stage(Fork(name, width=width, ways=ways))

    def join(self, name: str, width: int, ways: int = 2,
             policy: str = "roundrobin") -> FlowNode:
        """Add an arbiter-based :class:`~repro.flow.nodes.Join` node."""
        return self.stage(Join(name, width=width, ways=ways, policy=policy))

    def split(self, name: str, width: int, ways: int = 2) -> FlowNode:
        """Add a deterministic :class:`~repro.flow.nodes.RoundRobinSplit`."""
        return self.stage(RoundRobinSplit(name, width=width, ways=ways))

    def merge(self, name: str, width: int, ways: int = 2) -> FlowNode:
        """Add a deterministic :class:`~repro.flow.nodes.RoundRobinMerge`."""
        return self.stage(RoundRobinMerge(name, width=width, ways=ways))

    # -- connectivity ---------------------------------------------------------

    def _resolve(self, ref: NodeRef) -> str:
        if isinstance(ref, FlowNode):
            ref = ref.name
        if ref in (GRAPH_INPUT, GRAPH_OUTPUT):
            return ref
        if ref not in self.nodes:
            raise GraphError(f"unknown node {ref!r}")
        return ref

    def _pick_output(self, node: str, port: Optional[str]) -> str:
        ports = self.nodes[node].outputs
        if port is not None:
            if port not in ports:
                raise GraphError(
                    f"node {node!r} has no output port {port!r} "
                    f"(has: {sorted(ports)})")
            return port
        for candidate in ports:
            if (node, candidate) not in self._used_outputs:
                return candidate
        raise GraphError(f"node {node!r} has no free output port left")

    def _pick_input(self, node: str, port: Optional[str]) -> str:
        ports = self.nodes[node].inputs
        if port is not None:
            if port not in ports:
                raise GraphError(
                    f"node {node!r} has no input port {port!r} "
                    f"(has: {sorted(ports)})")
            return port
        for candidate in ports:
            if (node, candidate) not in self._used_inputs:
                return candidate
        raise GraphError(f"node {node!r} has no free input port left")

    def connect(self, src: NodeRef, dst: NodeRef, depth: int = 2,
                bus_width: Optional[int] = None,
                src_port: Optional[str] = None,
                dst_port: Optional[str] = None) -> Edge:
        """Add one edge; returns the recorded :class:`Edge`.

        ``depth`` is the elastic FIFO depth of the edge (0 = pure wire,
        otherwise >= 2).  ``bus_width`` forces the edge onto a narrower
        physical bus; when it (or the endpoint widths) disagree with an
        endpoint's element width, the elaborator inserts width converters
        automatically.
        """
        if depth != 0 and depth < 2:
            raise GraphError(
                f"edge depth must be 0 (wire) or >= 2 (FIFO), got {depth}")
        src_name = self._resolve(src)
        dst_name = self._resolve(dst)
        if src_name == GRAPH_OUTPUT:
            raise GraphError("the graph output cannot be an edge source")
        if dst_name == GRAPH_INPUT:
            raise GraphError("the graph input cannot be an edge destination")

        if src_name == GRAPH_INPUT:
            if any(edge.src == GRAPH_INPUT for edge in self.edges):
                raise GraphError(
                    "the graph input is already connected; use a Fork or "
                    "RoundRobinSplit node for fan-out")
            s_port = "out"
        else:
            s_port = self._pick_output(src_name, src_port)
            if (src_name, s_port) in self._used_outputs:
                raise GraphError(
                    f"output port {src_name}.{s_port} is already connected; "
                    f"use a Fork node to duplicate a stream")
            self._used_outputs.add((src_name, s_port))

        if dst_name == GRAPH_OUTPUT:
            if any(edge.dst == GRAPH_OUTPUT for edge in self.edges):
                raise GraphError(
                    "the graph output is already connected; use a Join or "
                    "RoundRobinMerge node for fan-in")
            d_port = "in"
        else:
            d_port = self._pick_input(dst_name, dst_port)
            if (dst_name, d_port) in self._used_inputs:
                raise GraphError(
                    f"input port {dst_name}.{d_port} is already driven")
            self._used_inputs.add((dst_name, d_port))

        edge = Edge(src_name, s_port, dst_name, d_port, depth, bus_width)
        self.edges.append(edge)
        return edge

    def open_output(self, node: NodeRef, port: Optional[str] = None) -> None:
        """Declare an output port intentionally unconnected (not dangling)."""
        name = self._resolve(node)
        picked = self._pick_output(name, port)
        self._open_outputs.add((name, picked))
        # Mark it used so automatic port picking skips it too.
        self._used_outputs.add((name, picked))

    def golden(self, fn) -> None:
        """Register the pipeline-level golden model (``pixels -> pixels``).

        The elaborated pipeline exposes it as ``expected_output``, the hook
        the verification subsystem and the exploration runner both use.
        """
        self._golden = fn

    # -- resolved boundary widths ---------------------------------------------

    def _boundary_edges(self) -> Tuple[Optional[Edge], Optional[Edge]]:
        in_edge = next((e for e in self.edges if e.src == GRAPH_INPUT), None)
        out_edge = next((e for e in self.edges if e.dst == GRAPH_OUTPUT), None)
        return in_edge, out_edge

    def resolved_input_width(self) -> int:
        """Declared input width, or the width of the port the input feeds."""
        in_edge, _ = self._boundary_edges()
        if self.input_width is not None:
            return self.input_width
        if in_edge is None:
            raise GraphError("graph has no input edge")
        return self.nodes[in_edge.dst].input_width(in_edge.dst_port)

    def resolved_output_width(self) -> int:
        """Declared output width, or the width of the port feeding the output."""
        _, out_edge = self._boundary_edges()
        if self.output_width is not None:
            return self.output_width
        if out_edge is None:
            raise GraphError("graph has no output edge")
        return self.nodes[out_edge.src].output_width(out_edge.src_port)

    # -- validation -----------------------------------------------------------

    def _edge_widths(self, edge: Edge) -> Tuple[int, int, int]:
        """(producer width, consumer width, bus width) of one edge."""
        if edge.src == GRAPH_INPUT:
            src_w = self.resolved_input_width()
        else:
            src_w = self.nodes[edge.src].output_width(edge.src_port)
        if edge.dst == GRAPH_OUTPUT:
            dst_w = self.resolved_output_width()
        else:
            dst_w = self.nodes[edge.dst].input_width(edge.dst_port)
        bus = edge.bus_width if edge.bus_width is not None else min(src_w, dst_w)
        return src_w, dst_w, bus

    def validate(self) -> None:
        """Raise :class:`GraphError` on any structural problem."""
        if not self.nodes:
            raise GraphError("graph has no nodes")
        in_edge, out_edge = self._boundary_edges()
        if in_edge is None:
            raise GraphError("graph input is not connected to any stage")
        if out_edge is None:
            raise GraphError("graph output is not fed by any stage")

        # Dangling ports: every input driven, every output consumed or open.
        for name, node in self.nodes.items():
            for port in node.inputs:
                if (name, port) not in self._used_inputs:
                    raise GraphError(
                        f"dangling input port {name}.{port}: every stage "
                        f"input must be driven by an edge or the graph input")
            for port in node.outputs:
                if (name, port) not in self._used_outputs \
                        and (name, port) not in self._open_outputs:
                    raise GraphError(
                        f"dangling output port {name}.{port}: connect it, "
                        f"or declare it open with open_output()")

        # Width compatibility: both endpoint widths must be bus multiples.
        for edge in self.edges:
            src_w, dst_w, bus = self._edge_widths(edge)
            if bus < 1:
                raise GraphError(f"edge {edge.label()}: bus width must be >= 1")
            for side, width in (("producer", src_w), ("consumer", dst_w)):
                if width % bus:
                    raise GraphError(
                        f"edge {edge.label()}: {side} width {width} is not a "
                        f"multiple of the {bus}-bit bus — no width adaptation "
                        f"plan exists (widths must divide evenly)")

        self._check_acyclic()

    def _check_acyclic(self) -> None:
        """The data-flow graph must be a DAG (elastic buffers do not make
        a combinational loop safe: a full cycle deadlocks on back-pressure)."""
        adjacency: Dict[str, List[str]] = {name: [] for name in self.nodes}
        for edge in self.edges:
            if edge.src in adjacency and edge.dst in adjacency:
                adjacency[edge.src].append(edge.dst)
        WHITE, GREY, BLACK = 0, 1, 2
        colour = {name: WHITE for name in adjacency}

        def visit(name: str, trail: List[str]) -> None:
            colour[name] = GREY
            trail.append(name)
            for succ in adjacency[name]:
                if colour[succ] == GREY:
                    cycle = trail[trail.index(succ):] + [succ]
                    raise GraphError(
                        f"pipeline graph contains a cycle: "
                        f"{' -> '.join(cycle)}")
                if colour[succ] == WHITE:
                    visit(succ, trail)
            trail.pop()
            colour[name] = BLACK

        for name in adjacency:
            if colour[name] == WHITE:
                visit(name, [])

    # -- elaboration ----------------------------------------------------------

    def elaborate(self, name: Optional[str] = None):
        """Validate and build the simulatable pipeline component."""
        from .elaborate import Pipeline

        return Pipeline(self, name=name)
