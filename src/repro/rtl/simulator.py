"""Cycle-accurate simulator with event-driven and fixpoint settle strategies.

Every synchronous design in the reproduced paper is a collection of clocked
FSMs and memories connected by combinational glue.  The simulator therefore
uses a two-phase evaluation per clock cycle:

1. **Settle**: combinational processes are evaluated, with pending signal
   values committed at delta boundaries, until no signal changes (a fixed
   point).  Exceeding ``max_settle`` delta iterations raises
   :class:`CombinationalLoopError`.
2. **Clock edge**: all sequential processes run exactly once, observing the
   settled values; their pending assignments are then committed, followed by
   another settle phase so outputs reflect the new state within the same
   reported cycle boundary.

Two settle strategies implement that contract:

``strategy="event"`` (the default)
    Sensitivity-based event-driven scheduling, the levelized/event-driven
    discipline of Verilator-class simulators.  Each combinational process's
    input set is inferred dynamically by tracing the :class:`Signal` values
    and :class:`Memory` words it actually reads during evaluation; commits
    then wake only the processes sensitive to the signals that changed.  The
    sensitivity list is refreshed on *every* evaluation, which makes the
    scheme exact rather than approximate: a process's outputs are a function
    only of the values it read last time, so if none of those changed,
    re-evaluating it cannot produce different results.  (This is the dynamic
    sensitivity of SystemC/VHDL processes, not a static over-approximation.)

``strategy="fixpoint"``
    The classic evaluate-everything discipline: all combinational processes
    are re-evaluated each delta iteration until no signal changes.  Kept as a
    fallback and as a differential-testing oracle — all strategies must
    produce cycle-identical traces on every design
    (``tests/rtl/test_strategy_equivalence.py``).

``strategy="compiled"``
    Per-design specialisation: the combinational network is statically
    analysed (:mod:`repro.rtl.compile`), topologically ordered and emitted
    as one straight-line Python function with slot-indexed signal access,
    inlined bit-width masks and fused write+commit — a settle is a single
    pass with no scheduler overhead at all.  True combinational feedback
    iterates in small local groups; processes the analyser cannot fully
    resolve demote the settle to a guarded convergence loop, so the
    strategy is never wrong, merely slower on such designs.

All strategies observe identical two-phase semantics: by the end of a settle
the network is at the same fixed point, so the engines agree cycle-for-cycle.
"""

from __future__ import annotations

import time
from typing import Callable, Dict, List, Optional, Set

from ..obs import profile as _obs_profile
from ..obs import tracing as _obs_tracing
from . import instrument
from . import signal as _signal_state
from .component import Component, Memory
from .errors import CombinationalLoopError, SimulationError
from .signal import Signal

#: Settle-strategy names accepted by :class:`Simulator`.
EVENT = "event"
FIXPOINT = "fixpoint"
COMPILED = "compiled"
STRATEGIES = (EVENT, FIXPOINT, COMPILED)


class Simulator:
    """Drive a component hierarchy through clock cycles.

    Parameters
    ----------
    top:
        The root component.  All descendants' processes and signals are
        gathered at construction time; building structure after the simulator
        is created requires constructing a new simulator.
    max_settle:
        Maximum number of combinational delta iterations per settle phase.
    max_cycles:
        A global safety limit for :meth:`run_until`.
    strategy:
        ``"event"`` (default) for sensitivity-based event-driven settling,
        ``"fixpoint"`` for the evaluate-everything oracle, or ``"compiled"``
        for per-design specialised straight-line code.
    verify:
        Only meaningful with ``strategy="compiled"``: after every settle,
        re-run the fixpoint oracle and raise if the compiled schedule left
        the network unsettled.  Slow; intended for differential testing.
    """

    def __init__(self, top: Component, max_settle: int = 64,
                 max_cycles: int = 10_000_000, strategy: str = EVENT,
                 verify: bool = False) -> None:
        if strategy not in STRATEGIES:
            raise SimulationError(
                f"unknown settle strategy {strategy!r}; expected one of "
                f"{STRATEGIES}")
        instrument.bump(instrument.SIMULATOR_CONSTRUCTIONS)
        self.top = top
        self.max_settle = max_settle
        self.max_cycles = max_cycles
        self._strategy = strategy
        self._comb = top.all_comb_procs()
        self._seq = top.all_seq_procs()
        self._signals = top.all_signals()
        self._memories = top.all_memories()
        self._cycles = 0
        self._watchers: List[Callable[[int], None]] = []
        self._watcher_resets: List[Callable[[], None]] = []
        self._verify = verify
        #: Number of settles where the static analysis was caught missing a
        #: write (compiled strategy only); the simulator self-corrects by
        #: falling back to fixpoint convergence, but a non-zero count means
        #: the analyser should be fixed.  Always 0 on the shipped designs.
        self.analysis_misses = 0
        profiler = _obs_profile.active()
        if profiler is not None:
            profiler.record_sim(strategy)
        if strategy == COMPILED:
            from .compile import compile_design

            self._invalidate_previous()
            self._written: List[Signal] = []
            self._dirty = True
            for sig in self._signals:
                sig._sched = self
                if sig._next != sig._value:
                    self._written.append(sig)
            for mem in self._memories:
                mem._sched = self
            compile_start = time.perf_counter()
            with _obs_tracing.span("compile", strategy=COMPILED,
                                   design=type(top).__name__):
                self._program = compile_design(self._comb, self._seq,
                                               max_settle=max_settle)
            if profiler is not None:
                profiler.record_compile(time.perf_counter() - compile_start,
                                        self._program.report)
            #: Generated Python source of the specialised settle/cycle pair.
            self.compiled_source = self._program.source
            #: :class:`~repro.rtl.compile.emit.CompileReport` for this design.
            self.compile_report = self._program.report
        elif strategy == EVENT:
            # Deterministic evaluation order within a delta wave: processes
            # run in registration order, matching the fixpoint strategy.
            self._proc_index = {proc: i for i, proc in enumerate(self._comb)}
            self._proc_reads: Dict[Callable, Set] = {}
            self._fanout: Dict[object, Set[Callable]] = {}
            self._written: List[Signal] = []
            self._pending: Set[Callable] = set(self._comb)
            # Processes with a declared sensitivity list (``Component.comb``'s
            # ``sensitivity=`` argument) get static fanout entries and are
            # evaluated without read-tracing.
            self._static_procs: Set[Callable] = set()
            for proc in self._comb:
                declared = getattr(proc, "sensitivity", None)
                if declared is not None:
                    self._static_procs.add(proc)
                    for obj in declared:
                        procs = self._fanout.get(obj)
                        if procs is None:
                            self._fanout[obj] = procs = set()
                        procs.add(proc)
            self._invalidate_previous()
            for sig in self._signals:
                sig._sched = self
                # Writes made before the simulator existed (legal two-phase
                # pokes) predate the notification hooks; queue them so the
                # initial settle commits them exactly like the fixpoint
                # strategy's commit-everything pass would.
                if sig._next != sig._value:
                    self._written.append(sig)
            for mem in self._memories:
                mem._sched = self
        else:
            # Detach any scheduler a previous event-driven simulator left on
            # this hierarchy, so writes stop feeding its stale queues.
            self._invalidate_previous()
            for sig in self._signals:
                sig._sched = None
            for mem in self._memories:
                mem._sched = None
        #: False once another simulator has attached to the same hierarchy;
        #: an event-driven simulator without its notification hooks would
        #: silently return stale values, so stale use raises instead.
        self._attached = True
        # Initial settle so combinational outputs are valid before cycle 0.
        self._settle()

    def _invalidate_previous(self) -> None:
        """Mark any simulator currently hooked to these signals as stale.

        Only event-driven simulators depend on the per-signal hooks, so only
        they are invalidated; a fixpoint simulator over the same hierarchy
        keeps working regardless of who is attached.
        """
        previous = {sig._sched for sig in self._signals}
        previous.update(mem._sched for mem in self._memories)
        for sched in previous:
            if sched is not None and sched is not self:
                sched._attached = False

    def _check_attached(self) -> None:
        if not self._attached:
            raise SimulationError(
                "this event-driven simulator was detached: another Simulator "
                "was constructed over the same component hierarchy; build a "
                "new simulator (or keep one per hierarchy)")

    # -- properties -------------------------------------------------------------

    @property
    def cycles(self) -> int:
        """Number of clock cycles executed so far."""
        return self._cycles

    @property
    def strategy(self) -> str:
        """The settle strategy this simulator was built with."""
        return self._strategy

    def add_watcher(self, func: Callable[[int], None],
                    on_reset: Optional[Callable[[], None]] = None) -> None:
        """Register a callable invoked after every cycle with the cycle index.

        Used by tracers and test benches to sample signals.  ``on_reset``
        optionally registers a hook :meth:`reset` calls to clear the
        watcher's recorded state; when omitted and ``func`` is a bound
        method whose instance exposes ``on_reset()``, that method is
        registered automatically (how :class:`~.trace.Recorder` and
        :class:`~.trace.VCDWriter` hook in).  Wrapped watchers
        (``functools.partial``, lambdas) that keep state must pass
        ``on_reset`` explicitly — introspection cannot find their owner.

        Watchers are removable with :meth:`remove_watcher`, so tracers and
        protocol monitors can detach cleanly when a simulator is reused.
        """
        self._watchers.append(func)
        if on_reset is None:
            owner = getattr(func, "__self__", None)
            on_reset = getattr(owner, "on_reset", None) if owner is not None else None
        # The reset-hook list is kept index-parallel to the watcher list
        # (None for stateless watchers) so remove_watcher can drop both.
        self._watcher_resets.append(on_reset)

    def remove_watcher(self, func: Callable[[int], None]) -> None:
        """Unregister a watcher (and its reset hook) added by :meth:`add_watcher`.

        The argument is matched by equality, so passing a fresh reference
        to the same bound method works.  Raises :class:`SimulationError`
        when the watcher was never registered — a silent no-op would mask
        double-detach bugs in tracers and monitors.
        """
        for index, registered in enumerate(self._watchers):
            if registered == func:
                del self._watchers[index]
                del self._watcher_resets[index]
                return
        raise SimulationError(
            f"cannot remove watcher {func!r}: it is not registered")

    # -- scheduler notifications (event strategy) --------------------------------

    def notify_changed(self, sig: Signal) -> None:
        """A signal's committed value changed outside the commit discipline.

        Called by :meth:`Signal.force` and :meth:`Signal.reset` so test-bench
        pokes wake the processes that depend on the signal.
        """
        if self._strategy == COMPILED:
            self._dirty = True
            return
        procs = self._fanout.get(sig)
        if procs:
            self._pending.update(procs)

    def notify_memory(self, mem: Memory) -> None:
        """A memory word was written; wake every process that read the array."""
        if self._strategy == COMPILED:
            self._dirty = True
            return
        procs = self._fanout.get(mem)
        if procs:
            self._pending.update(procs)

    def _raise_comb_loop(self) -> None:
        """Raise the standard non-convergence error (all strategies)."""
        raise CombinationalLoopError(
            f"combinational network did not settle after {self.max_settle} "
            f"iterations (cycle {self._cycles})")

    # -- compiled-strategy support hooks ------------------------------------------

    def _drain_check(self) -> None:
        """Commit leftover writes after a compiled settle.

        Writes from non-inlined processes land in ``_written`` via the
        :attr:`Signal.next` hook; the generated code already committed every
        statically-known write, so surviving differences mean the analyser
        under-approximated a write set.  The simulator self-corrects by
        converging with the fixpoint oracle and records the miss.
        """
        missed = False
        written = self._written
        for sig in written:
            if sig._value != sig._next:
                sig._value = sig._next
                missed = True
        del written[:]
        if missed:
            self.analysis_misses += 1
            self._settle_fixpoint()
            del self._written[:]

    def _verify_settled(self) -> None:
        """Differential check: the compiled settle must be a fixed point."""
        for proc in self._comb:
            proc()
        changed = self._commit_all()
        del self._written[:]
        if changed:
            self.analysis_misses += 1
            raise SimulationError(
                "compiled settle did not reach the fixpoint oracle's fixed "
                "point; the static analysis missed a dependency")

    # -- core evaluation ----------------------------------------------------------

    def _commit_all(self) -> bool:
        changed = False
        for sig in self._signals:
            if sig.commit():
                changed = True
        return changed

    def _settle_fixpoint(self) -> int:
        """Run every combinational process to a fixed point (oracle strategy)."""
        for iteration in range(1, self.max_settle + 1):
            for proc in self._comb:
                proc()
            if not self._commit_all():
                return iteration
        self._raise_comb_loop()

    def _evaluate_traced(self, proc: Callable[[], None]) -> None:
        """Evaluate ``proc`` recording every Signal/Memory it reads.

        The recorded set *replaces* the process's previous sensitivity list:
        dynamic last-read sensitivity is exact for deterministic processes,
        and refreshing it every evaluation means branch changes (a newly
        taken path reading new signals) are always discovered — the branch
        condition itself was read last time, so its change re-triggers the
        process.
        """
        reads: Set = set()
        _signal_state._active_reads = reads
        try:
            proc()
        finally:
            _signal_state._active_reads = None
        old = self._proc_reads.get(proc)
        if old != reads:
            fanout = self._fanout
            if old:
                for obj in old - reads:
                    fanout[obj].discard(proc)
                new = reads - old
            else:
                new = reads
            for obj in new:
                procs = fanout.get(obj)
                if procs is None:
                    fanout[obj] = procs = set()
                procs.add(proc)
            self._proc_reads[proc] = reads

    def _flush_written(self) -> None:
        """Commit every pending signal write and wake the fanout of changes."""
        written = self._written
        if not written:
            return
        self._written = []
        pending = self._pending
        fanout = self._fanout
        for sig in written:
            nxt = sig._next
            if nxt != sig._value:
                sig._value = nxt
                procs = fanout.get(sig)
                if procs:
                    pending.update(procs)

    def _settle_event(self) -> int:
        """Run only the processes whose inputs changed, wave by wave."""
        self._check_attached()
        pending = self._pending
        order = self._proc_index
        evaluate = self._evaluate_traced
        static = self._static_procs
        # Commit test-bench ``sig.next`` pokes made since the last settle so
        # they wake their fanout, mirroring the fixpoint strategy's
        # commit-after-first-iteration behaviour.
        self._flush_written()
        iteration = 0
        while pending:
            iteration += 1
            if iteration > self.max_settle:
                self._raise_comb_loop()
            wave = sorted(pending, key=order.__getitem__)
            pending.clear()
            for proc in wave:
                if proc in static:
                    proc()
                else:
                    evaluate(proc)
            self._flush_written()
        return iteration

    def _settle(self) -> int:
        """Run combinational processes to a fixed point.

        Returns the number of delta iterations used.
        """
        if self._strategy == COMPILED:
            return self._program.settle(self)
        if self._strategy == EVENT:
            return self._settle_event()
        return self._settle_fixpoint()

    def step(self, cycles: int = 1) -> None:
        """Advance the design by ``cycles`` clock cycles.

        The telemetry check up front is the *entire* disabled-path cost:
        two module-attribute reads (``tests/obs/test_overhead.py`` pins
        the disabled step loop to zero telemetry allocations, and the
        ``compiled-obs-off`` floor in ``benchmarks/check_regression.py``
        pins its throughput).  Only while a profiler or tracer is
        installed does the slower instrumented loop run.
        """
        if cycles < 0:
            raise SimulationError(f"cannot step a negative number of cycles: {cycles}")
        if _obs_profile._ACTIVE is not None or _obs_tracing._STATE.active:
            self._step_instrumented(cycles)
            return
        self._step_plain(cycles)

    def _step_plain(self, cycles: int) -> None:
        """The uninstrumented hot loops — one per settle strategy."""
        if self._strategy == COMPILED:
            cycle = self._program.cycle
            for _ in range(cycles):
                cycle(self)
            return
        if self._strategy == EVENT:
            settle = self._settle_event
            flush = self._flush_written
            seq = self._seq
            watchers = self._watchers
            for _ in range(cycles):
                settle()
                for proc in seq:
                    proc()
                flush()
                settle()
                self._cycles += 1
                for watcher in watchers:
                    watcher(self._cycles)
            return
        for _ in range(cycles):
            self._settle_fixpoint()
            for proc in self._seq:
                proc()
            self._commit_all()
            self._settle_fixpoint()
            self._cycles += 1
            for watcher in self._watchers:
                watcher(self._cycles)

    def _step_instrumented(self, cycles: int) -> None:
        """Step with telemetry: batch-level span plus per-step profiling.

        Spans stay *batch*-granular — one span per :meth:`step` call when
        it advances more than one cycle, never one per cycle — so tracing
        a million-cycle run records a handful of spans, not a million.
        The profiled loops mirror the plain ones but keep the settle
        delta-iteration counts the fast paths discard (for the compiled
        strategy the generated ``cycle()`` is re-expressed in terms of
        ``program.settle`` so its convergence rounds become visible).
        """
        profiler = _obs_profile.active()
        if profiler is None:
            if cycles > 1:
                with _obs_tracing.span("step", strategy=self._strategy,
                                       cycles=cycles):
                    self._step_plain(cycles)
            else:
                self._step_plain(cycles)
            return
        tracer_on = _obs_tracing._STATE.active and cycles > 1
        span = (_obs_tracing.span("step", strategy=self._strategy,
                                  cycles=cycles, profiled=True)
                if tracer_on else _obs_tracing.NULL_SPAN)
        misses_before = self.analysis_misses
        iterations = 0
        with span:
            start = time.perf_counter()
            if self._strategy == COMPILED:
                settle = self._program.settle
                seq = self._seq
                for _ in range(cycles):
                    # Mirrors the generated cycle() (see emit_module), with
                    # the settle return values captured instead of dropped.
                    if not self._attached:
                        self._check_attached()
                    if self._dirty or self._written:
                        iterations += settle(self)
                    for proc in seq:
                        proc()
                    written = self._written
                    for sig in written:
                        sig._value = sig._next
                    del written[:]
                    iterations += settle(self)
                    self._cycles += 1
                    for watcher in self._watchers:
                        watcher(self._cycles)
            elif self._strategy == EVENT:
                for _ in range(cycles):
                    iterations += self._settle_event()
                    for proc in self._seq:
                        proc()
                    self._flush_written()
                    iterations += self._settle_event()
                    self._cycles += 1
                    for watcher in self._watchers:
                        watcher(self._cycles)
            else:
                for _ in range(cycles):
                    iterations += self._settle_fixpoint()
                    for proc in self._seq:
                        proc()
                    self._commit_all()
                    iterations += self._settle_fixpoint()
                    self._cycles += 1
                    for watcher in self._watchers:
                        watcher(self._cycles)
            elapsed = time.perf_counter() - start
        profiler.record_step(self._strategy, cycles, elapsed,
                             settle_iterations=iterations,
                             fallback_hits=self.analysis_misses - misses_before)

    def run_until(self, condition: Callable[[], bool],
                  max_cycles: Optional[int] = None) -> int:
        """Step until ``condition()`` is true; return the cycles consumed.

        Raises :class:`SimulationError` if the condition does not become true
        within the cycle budget — silent infinite simulations are always bugs.
        """
        if _obs_tracing._STATE.active:
            with _obs_tracing.span("settle", strategy=self._strategy,
                                   kind="run_until",
                                   design=type(self.top).__name__) as sp:
                consumed = self._run_until(condition, max_cycles)
                sp.args["cycles"] = consumed
            return consumed
        return self._run_until(condition, max_cycles)

    def _run_until(self, condition: Callable[[], bool],
                   max_cycles: Optional[int]) -> int:
        budget = self.max_cycles if max_cycles is None else max_cycles
        start = self._cycles
        while not condition():
            if self._cycles - start >= budget:
                raise SimulationError(
                    f"condition not reached within {budget} cycles")
            self.step()
        return self._cycles - start

    def settle(self) -> int:
        """Expose a settle-only evaluation (useful after forcing signals)."""
        if _obs_tracing._STATE.active:
            with _obs_tracing.span("settle", strategy=self._strategy,
                                   kind="settle"):
                return self._settle()
        return self._settle()

    def reset(self) -> None:
        """Reset all state, the cycle counter and watcher state, then re-settle.

        Watchers whose owning object exposes an ``on_reset()`` method (the
        :class:`~.trace.Recorder` and :class:`~.trace.VCDWriter` tracers do)
        are told to clear their recorded state, so post-reset samples are not
        appended to a pre-reset history with clashing cycle numbers.  The
        initial settle is re-run under the simulator's configured strategy.
        """
        self.top.reset_state()
        self._cycles = 0
        if self._strategy == EVENT:
            # Signal/memory resets jumped values without the commit
            # discipline; re-seed every process and drop stale bookkeeping so
            # the initial settle re-traces from scratch.
            self._written = []
            self._pending = set(self._comb)
        elif self._strategy == COMPILED:
            # Resets restored both committed and pending values, so stale
            # queue entries are harmless no-ops; re-run the full schedule.
            self._written = []
            self._dirty = True
        for hook in self._watcher_resets:
            if hook is not None:
                hook()
        self._settle()


def pulse(sim: Simulator, sig: Signal, cycles: int = 1, value: int = 1) -> None:
    """Drive ``sig`` to ``value`` for ``cycles`` cycles, then back to zero.

    A small test-bench convenience for strobe-style control inputs.
    """
    sig.force(value)
    sim.step(cycles)
    sig.force(0)
