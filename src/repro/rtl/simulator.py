"""Two-phase cycle-accurate simulator.

Every synchronous design in the reproduced paper is a collection of clocked
FSMs and memories connected by combinational glue.  The simulator therefore
uses a two-phase evaluation per clock cycle:

1. **Settle**: all combinational processes are evaluated repeatedly, with
   pending signal values committed after each pass, until no signal changes
   (a fixed point).  Exceeding ``max_settle`` iterations raises
   :class:`CombinationalLoopError`.
2. **Clock edge**: all sequential processes run exactly once, observing the
   settled values; their pending assignments are then committed, followed by
   another settle phase so outputs reflect the new state within the same
   reported cycle boundary.

This is the classic "evaluate/update" discipline of cycle-based simulators
(PyMTL CL, Verilator's eval loop) and is sufficient for the FSM + memory
designs of the paper, while remaining easy to reason about and to test.
"""

from __future__ import annotations

from typing import Callable, List, Optional

from .component import Component
from .errors import CombinationalLoopError, SimulationError
from .signal import Signal


class Simulator:
    """Drive a component hierarchy through clock cycles.

    Parameters
    ----------
    top:
        The root component.  All descendants' processes and signals are
        gathered at construction time; building structure after the simulator
        is created requires constructing a new simulator.
    max_settle:
        Maximum number of combinational delta iterations per settle phase.
    max_cycles:
        A global safety limit for :meth:`run_until`.
    """

    def __init__(self, top: Component, max_settle: int = 64,
                 max_cycles: int = 10_000_000) -> None:
        self.top = top
        self.max_settle = max_settle
        self.max_cycles = max_cycles
        self._comb = top.all_comb_procs()
        self._seq = top.all_seq_procs()
        self._signals = top.all_signals()
        self._cycles = 0
        self._watchers: List[Callable[[int], None]] = []
        # Initial settle so combinational outputs are valid before cycle 0.
        self._settle()

    # -- properties -------------------------------------------------------------

    @property
    def cycles(self) -> int:
        """Number of clock cycles executed so far."""
        return self._cycles

    def add_watcher(self, func: Callable[[int], None]) -> None:
        """Register a callable invoked after every cycle with the cycle index.

        Used by tracers and test benches to sample signals.
        """
        self._watchers.append(func)

    # -- core evaluation ----------------------------------------------------------

    def _commit_all(self) -> bool:
        changed = False
        for sig in self._signals:
            if sig.commit():
                changed = True
        return changed

    def _settle(self) -> int:
        """Run combinational processes to a fixed point.

        Returns the number of delta iterations used.
        """
        for iteration in range(1, self.max_settle + 1):
            for proc in self._comb:
                proc()
            if not self._commit_all():
                return iteration
        raise CombinationalLoopError(
            f"combinational network did not settle after {self.max_settle} "
            f"iterations (cycle {self._cycles})")

    def step(self, cycles: int = 1) -> None:
        """Advance the design by ``cycles`` clock cycles."""
        if cycles < 0:
            raise SimulationError(f"cannot step a negative number of cycles: {cycles}")
        for _ in range(cycles):
            self._settle()
            for proc in self._seq:
                proc()
            self._commit_all()
            self._settle()
            self._cycles += 1
            for watcher in self._watchers:
                watcher(self._cycles)

    def run_until(self, condition: Callable[[], bool],
                  max_cycles: Optional[int] = None) -> int:
        """Step until ``condition()`` is true; return the cycles consumed.

        Raises :class:`SimulationError` if the condition does not become true
        within the cycle budget — silent infinite simulations are always bugs.
        """
        budget = self.max_cycles if max_cycles is None else max_cycles
        start = self._cycles
        while not condition():
            if self._cycles - start >= budget:
                raise SimulationError(
                    f"condition not reached within {budget} cycles")
            self.step()
        return self._cycles - start

    def settle(self) -> int:
        """Expose a settle-only evaluation (useful after forcing signals)."""
        return self._settle()

    def reset(self) -> None:
        """Reset all state and the cycle counter, then re-settle."""
        self.top.reset_state()
        self._cycles = 0
        self._settle()


def pulse(sim: Simulator, sig: Signal, cycles: int = 1, value: int = 1) -> None:
    """Drive ``sig`` to ``value`` for ``cycles`` cycles, then back to zero.

    A small test-bench convenience for strobe-style control inputs.
    """
    sig.force(value)
    sim.step(cycles)
    sig.force(0)
