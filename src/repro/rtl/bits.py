"""Fixed-width unsigned integer values with hardware-like semantics.

:class:`Bits` models the value carried by a hardware signal or stored in a
register: it has an explicit bit width, wraps on overflow, and supports bit
and slice extraction as well as concatenation.  It is deliberately a *value*
type (immutable), so it can be freely shared between signals.

The arithmetic semantics follow what a synthesis tool produces for unsigned
vectors: all operations are performed modulo ``2 ** width`` of the left-hand
operand.
"""

from __future__ import annotations

from typing import Iterable, Union

from .errors import WidthError

IntLike = Union[int, "Bits"]


def mask(width: int) -> int:
    """Return the bit mask for ``width`` bits (``0b111...1``)."""
    if width < 0:
        raise WidthError(f"width must be non-negative, got {width}")
    return (1 << width) - 1


def bits_for(value: int) -> int:
    """Return the minimum number of bits needed to represent ``value``.

    ``bits_for(0)`` is 1 so that a register holding only zero still has a
    physical width.
    """
    if value < 0:
        raise WidthError(f"bits_for expects a non-negative value, got {value}")
    return max(1, value.bit_length())


def clog2(value: int) -> int:
    """Ceiling log2, as used for address-width computation.

    ``clog2(1)`` is 0 (a single-entry memory needs no address bits) and
    ``clog2(depth)`` for ``depth > 1`` is the number of address bits needed to
    index ``depth`` locations.
    """
    if value <= 0:
        raise WidthError(f"clog2 expects a positive value, got {value}")
    return (value - 1).bit_length()


class Bits:
    """An immutable fixed-width unsigned integer.

    Parameters
    ----------
    width:
        The number of bits.  Must be at least 1.
    value:
        The initial value; it is truncated (wrapped) to ``width`` bits.
    """

    __slots__ = ("_width", "_value")

    def __init__(self, width: int, value: IntLike = 0) -> None:
        if width < 1:
            raise WidthError(f"Bits width must be >= 1, got {width}")
        self._width = int(width)
        self._value = int(value) & mask(self._width)

    # -- basic accessors -------------------------------------------------

    @property
    def width(self) -> int:
        """The declared bit width."""
        return self._width

    @property
    def value(self) -> int:
        """The value as a plain non-negative ``int``."""
        return self._value

    @property
    def max(self) -> int:
        """The largest representable value, ``2**width - 1``."""
        return mask(self._width)

    def __int__(self) -> int:
        return self._value

    def __index__(self) -> int:
        return self._value

    def __bool__(self) -> bool:
        return self._value != 0

    def __len__(self) -> int:
        return self._width

    def __hash__(self) -> int:
        return hash((self._width, self._value))

    def __repr__(self) -> str:
        return f"Bits({self._width}, 0x{self._value:x})"

    # -- construction helpers --------------------------------------------

    @classmethod
    def from_signed(cls, width: int, value: int) -> "Bits":
        """Build from a signed integer using two's-complement wrapping."""
        return cls(width, value & mask(width))

    def signed(self) -> int:
        """Interpret the value as a two's-complement signed integer."""
        if self._value & (1 << (self._width - 1)):
            return self._value - (1 << self._width)
        return self._value

    def resize(self, width: int) -> "Bits":
        """Return a copy truncated or zero-extended to ``width`` bits."""
        return Bits(width, self._value)

    # -- bit and slice access ---------------------------------------------

    def __getitem__(self, key) -> "Bits":
        if isinstance(key, slice):
            # Hardware-style slice: b[msb:lsb] inclusive on both ends, with
            # msb >= lsb.  Plain Python ``b[a:b]`` with a < b is rejected to
            # avoid silent confusion.
            if key.step is not None:
                raise WidthError("Bits slices do not support a step")
            msb = self._width - 1 if key.start is None else int(key.start)
            lsb = 0 if key.stop is None else int(key.stop)
            if msb < lsb:
                raise WidthError(
                    f"Bits slice expects [msb:lsb] with msb >= lsb, got [{msb}:{lsb}]"
                )
            if msb >= self._width or lsb < 0:
                raise WidthError(
                    f"slice [{msb}:{lsb}] out of range for width {self._width}"
                )
            width = msb - lsb + 1
            return Bits(width, (self._value >> lsb) & mask(width))
        index = int(key)
        if index < 0:
            index += self._width
        if not 0 <= index < self._width:
            raise WidthError(f"bit index {key} out of range for width {self._width}")
        return Bits(1, (self._value >> index) & 1)

    def bit(self, index: int) -> int:
        """Return bit ``index`` as a plain int (0 or 1)."""
        return int(self[index])

    def concat(self, *others: "Bits") -> "Bits":
        """Concatenate ``self`` (most significant) with ``others`` (less significant)."""
        width = self._width
        value = self._value
        for other in others:
            width += other.width
            value = (value << other.width) | other.value
        return Bits(width, value)

    @staticmethod
    def join(parts: Iterable["Bits"]) -> "Bits":
        """Concatenate an iterable of :class:`Bits`, first element most significant."""
        items = list(parts)
        if not items:
            raise WidthError("Bits.join needs at least one element")
        head, *tail = items
        return head.concat(*tail)

    def replicate(self, count: int) -> "Bits":
        """Return ``count`` copies of this value concatenated together."""
        if count < 1:
            raise WidthError(f"replicate count must be >= 1, got {count}")
        return Bits.join([self] * count)

    def split(self, part_width: int) -> list:
        """Split into chunks of ``part_width`` bits, most significant first.

        The total width must be a multiple of ``part_width``; this mirrors
        the width-adaptation performed by the code generator when a wide data
        value is moved over a narrow bus.
        """
        if part_width < 1:
            raise WidthError(f"part width must be >= 1, got {part_width}")
        if self._width % part_width:
            raise WidthError(
                f"cannot split {self._width} bits into {part_width}-bit parts"
            )
        count = self._width // part_width
        return [
            Bits(part_width, (self._value >> (part_width * i)) & mask(part_width))
            for i in reversed(range(count))
        ]

    # -- arithmetic (modulo 2**width of the left operand) ------------------

    def _coerce(self, other: IntLike) -> int:
        return int(other)

    def __add__(self, other: IntLike) -> "Bits":
        return Bits(self._width, self._value + self._coerce(other))

    def __radd__(self, other: int) -> "Bits":
        return Bits(self._width, other + self._value)

    def __sub__(self, other: IntLike) -> "Bits":
        return Bits(self._width, self._value - self._coerce(other))

    def __rsub__(self, other: int) -> "Bits":
        return Bits(self._width, other - self._value)

    def __mul__(self, other: IntLike) -> "Bits":
        return Bits(self._width, self._value * self._coerce(other))

    def __rmul__(self, other: int) -> "Bits":
        return Bits(self._width, other * self._value)

    def __floordiv__(self, other: IntLike) -> "Bits":
        return Bits(self._width, self._value // self._coerce(other))

    def __mod__(self, other: IntLike) -> "Bits":
        return Bits(self._width, self._value % self._coerce(other))

    def __lshift__(self, amount: int) -> "Bits":
        return Bits(self._width, self._value << int(amount))

    def __rshift__(self, amount: int) -> "Bits":
        return Bits(self._width, self._value >> int(amount))

    def __and__(self, other: IntLike) -> "Bits":
        return Bits(self._width, self._value & self._coerce(other))

    def __rand__(self, other: int) -> "Bits":
        return self.__and__(other)

    def __or__(self, other: IntLike) -> "Bits":
        return Bits(self._width, self._value | self._coerce(other))

    def __ror__(self, other: int) -> "Bits":
        return self.__or__(other)

    def __xor__(self, other: IntLike) -> "Bits":
        return Bits(self._width, self._value ^ self._coerce(other))

    def __rxor__(self, other: int) -> "Bits":
        return self.__xor__(other)

    def __invert__(self) -> "Bits":
        return Bits(self._width, ~self._value)

    # -- comparisons (by value, width is not part of equality) -------------

    def __eq__(self, other: object) -> bool:
        if isinstance(other, (int, Bits)):
            return self._value == int(other)
        return NotImplemented

    def __ne__(self, other: object) -> bool:
        result = self.__eq__(other)
        if result is NotImplemented:
            return result
        return not result

    def __lt__(self, other: IntLike) -> bool:
        return self._value < int(other)

    def __le__(self, other: IntLike) -> bool:
        return self._value <= int(other)

    def __gt__(self, other: IntLike) -> bool:
        return self._value > int(other)

    def __ge__(self, other: IntLike) -> bool:
        return self._value >= int(other)

    # -- formatting ---------------------------------------------------------

    def bin(self) -> str:
        """Binary string padded to the full width (no ``0b`` prefix)."""
        return format(self._value, f"0{self._width}b")

    def hex(self) -> str:
        """Hexadecimal string padded to the full width (no ``0x`` prefix)."""
        digits = (self._width + 3) // 4
        return format(self._value, f"0{digits}x")
