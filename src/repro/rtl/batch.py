"""Batched lockstep simulation: one compiled kernel, many lanes.

:class:`BatchedSimulator` advances N independent design instances ("lanes")
through the two-phase settle/cycle contract in lockstep.  Signal state lives
in ``(n_signals, n_lanes)`` int64 matrices; the per-design vectorized kernel
(:mod:`repro.rtl.compile.emit_batched`) walks the same statically-scheduled
program as the scalar compiled backend but executes every statement once for
all lanes via numpy, so sweeps and seed matrices amortize the Python
interpreter across the batch.

Lane compatibility is verification-by-regeneration: the batched emitter is
run per lane and lanes may share a batch only when the generated sources
are byte-identical (:attr:`BatchedProgram.signature`).  Incompatible designs
raise :class:`SimulationError` — callers (the explore runner, the verify
session) group points by signature first via :func:`batch_groups`.

Between kernel invocations the real :class:`~repro.rtl.signal.Signal` /
:class:`~repro.rtl.component.Memory` objects of each lane are stale; the
public :meth:`BatchedSimulator.settle` / :meth:`BatchedSimulator.step`
synchronize every lane's objects afterwards so benches behave exactly as
with a scalar simulator.  The internal :meth:`BatchedSimulator.run_lockstep`
fast path skips the per-cycle object sync — its per-lane stop conditions
must read Python-side state the kernel keeps live (appended lists such as
``sink.received``, or promoted attribute counters via :meth:`lane_attr`).
"""

from __future__ import annotations

import time
from collections import deque
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

try:
    import numpy as _np
except ImportError:  # pragma: no cover - the toolchain ships numpy
    _np = None

from ..obs import profile as _obs_profile
from ..obs import tracing as _obs_tracing
from . import instrument
from .component import Component, Memory
from .errors import CombinationalLoopError, SimulationError
from .signal import Signal

#: Strategy name routing to :class:`BatchedSimulator`.
COMPILED_BATCHED = "compiled-batched"


def _require_numpy() -> None:
    if _np is None:
        raise SimulationError(
            "strategy 'compiled-batched' requires numpy, which is not "
            "installed; use strategy='compiled' instead")


#: Recently emitted reference programs, newest first.  Sweeps and verify
#: matrices construct many simulators over sibling designs; rebinding
#: against a cached reference skips the dominant emission cost entirely.
#: Soundness does not depend on the cache: ``rebind_batched_program``
#: re-verifies every value the cached source baked — against the *cached*
#: design (mutation since emission) and the new one — and bails to a full
#: emission on any doubt.  Bounded because each entry pins its design's
#: object graph.
_REFERENCE_CACHE: deque = deque(maxlen=4)


def _program_for(top: Component, max_settle: int):
    """Emit ``top``'s batched program, reusing a cached emission if possible."""
    from .compile.emit_batched import emit_batched_program
    from .compile.rebind import rebind_batched_program

    profiler = _obs_profile.active()
    start = time.perf_counter() if profiler is not None else 0.0
    with _obs_tracing.span("rebind", design=type(top).__name__,
                           candidates=len(_REFERENCE_CACHE)):
        for reference in _REFERENCE_CACHE:
            program = rebind_batched_program(reference, top,
                                             max_settle=max_settle)
            if program is not None:
                if profiler is not None:
                    profiler.record_rebind(time.perf_counter() - start)
                return program
    with _obs_tracing.span("compile", strategy=COMPILED_BATCHED,
                           design=type(top).__name__):
        program = emit_batched_program(top, max_settle=max_settle)
    if profiler is not None:
        profiler.record_compile(time.perf_counter() - start)
    _REFERENCE_CACHE.appendleft(program)
    return program


class _WriteLog(list):
    """The per-lane ``_written`` queue; appends flag the batch dirty.

    :attr:`Signal.next`'s setter appends to ``sched._written`` without any
    notification call, so the queue itself must raise the batch's
    ``_in_dirty`` flag for test-bench pokes made between kernel calls to be
    gathered at the next settle.
    """

    __slots__ = ("_batch",)

    def __init__(self, batch: "BatchedSimulator") -> None:
        super().__init__()
        self._batch = batch

    def append(self, sig: Signal) -> None:
        list.append(self, sig)
        self._batch._in_dirty = True


class _LaneHook:
    """The scheduler object installed as one lane's ``sig._sched``.

    It records pokes (``next`` writes, ``force``, memory stores) for the
    batch to gather, and forwards the scalar detach protocol: a scalar
    :class:`~repro.rtl.simulator.Simulator` attaching to the same hierarchy
    sets ``sched._attached = False`` on whatever it finds, which here
    detaches the whole batch.
    """

    __slots__ = ("_batch", "_lane", "_written", "_forced", "_mems")

    def __init__(self, batch: "BatchedSimulator", lane: int) -> None:
        self._batch = batch
        self._lane = lane
        self._written = _WriteLog(batch)
        self._forced: List[Signal] = []
        self._mems: List[Memory] = []

    @property
    def _attached(self) -> bool:
        return self._batch._attached

    @_attached.setter
    def _attached(self, value: bool) -> None:
        if not value:
            self._batch._attached = False

    def notify_changed(self, sig: Signal) -> None:
        self._forced.append(sig)
        self._batch._in_dirty = True

    def notify_memory(self, mem: Memory) -> None:
        self._mems.append(mem)
        self._batch._in_dirty = True

    def clear(self) -> None:
        del self._written[:]
        del self._forced[:]
        del self._mems[:]


class LaneView:
    """A scalar-simulator-shaped window onto one lane of a batch.

    Provides the subset of the :class:`~repro.rtl.simulator.Simulator`
    surface that tracers and monitors use (``add_watcher`` /
    ``remove_watcher`` / ``cycles`` / ``strategy``), so a
    :class:`~repro.rtl.trace.Recorder` can sample one lane of a batched run
    exactly as it samples a scalar run.
    """

    def __init__(self, batch: "BatchedSimulator", lane: int) -> None:
        self._batch = batch
        self._lane = lane

    @property
    def lane(self) -> int:
        return self._lane

    @property
    def top(self) -> Component:
        return self._batch.tops[self._lane]

    @property
    def cycles(self) -> int:
        return self._batch.cycles

    @property
    def strategy(self) -> str:
        return COMPILED_BATCHED

    def add_watcher(self, func: Callable[[int], None],
                    on_reset: Optional[Callable[[], None]] = None) -> None:
        if on_reset is None:
            owner = getattr(func, "__self__", None)
            on_reset = getattr(owner, "on_reset", None) \
                if owner is not None else None
        self._batch._lane_watchers[self._lane].append((func, on_reset))
        self._batch._has_watchers = True

    def remove_watcher(self, func: Callable[[int], None]) -> None:
        watchers = self._batch._lane_watchers[self._lane]
        for index, (registered, _reset) in enumerate(watchers):
            if registered == func:
                del watchers[index]
                self._batch._refresh_has_watchers()
                return
        raise SimulationError(
            f"cannot remove watcher {func!r}: it is not registered")


class BatchedSimulator:
    """Drive N compatible design instances in vectorized lockstep.

    Parameters
    ----------
    tops:
        One root component per lane.  Each lane is an independent instance;
        the lanes must be *structurally identical* (their batched programs
        must have matching signatures) but may hold different state, queued
        stimulus and parameter-independent Python attributes.
    max_settle:
        Combinational delta-iteration budget per settle phase.
    max_cycles:
        Safety limit for :meth:`run_until` / :meth:`run_lockstep`.
    programs:
        Pre-emitted per-lane :class:`BatchedProgram` objects (from
        :func:`batch_groups`), to avoid emitting twice.
    """

    def __init__(self, tops: Sequence[Component], max_settle: int = 64,
                 max_cycles: int = 10_000_000,
                 programs: Optional[Sequence] = None) -> None:
        _require_numpy()
        instrument.bump(instrument.BATCHED_CONSTRUCTIONS)
        profiler = _obs_profile.active()
        if profiler is not None:
            profiler.record_sim(COMPILED_BATCHED)

        tops = list(tops)
        if not tops:
            raise SimulationError("a batched simulator needs >= 1 lane")
        self.tops = tops
        self.n_lanes = len(tops)
        self.max_settle = max_settle
        self.max_cycles = max_cycles
        if programs is None:
            # Emit the generated source at most once (the dominant
            # construction cost) and rebind it to every sibling lane; a
            # lane that cannot be proven recipe-identical re-emits in
            # full and is caught by the signature comparison below.
            programs = [_program_for(top, max_settle) for top in tops]
        else:
            programs = list(programs)
            if len(programs) != len(tops):
                raise SimulationError(
                    f"{len(tops)} lanes but {len(programs)} programs")
        reference = programs[0]
        for lane, program in enumerate(programs[1:], start=1):
            if program.signature != reference.signature:
                raise SimulationError(
                    f"lane {lane} is not batch-compatible with lane 0: "
                    f"the generated batched programs differ (group "
                    f"incompatible designs with repro.rtl.batch_groups)")
        self._programs = programs
        self.program = reference
        #: Generated vectorized settle/cycle source (lane 0 == all lanes).
        self.batched_source = reference.source
        #: :class:`~repro.rtl.compile.emit_batched.BatchReport`.
        self.batch_report = reference.report

        self._cycles = 0
        self._dirty = True
        self._in_dirty = False
        self._attached = True
        self._has_watchers = False
        self._lane_watchers: List[List[Tuple[Callable, Optional[Callable]]]]
        self._lane_watchers = [[] for _ in range(self.n_lanes)]
        self._lane_views: Dict[int, LaneView] = {}

        self._invalidate_previous()
        self._hooks = [_LaneHook(self, lane) for lane in range(self.n_lanes)]
        self._slot_maps: List[Dict[int, int]] = []
        self._mem_maps: List[Dict[int, int]] = []
        for lane, program in enumerate(self._programs):
            hook = self._hooks[lane]
            for sig in program.signals:
                sig._sched = hook
            for mem in program.memories:
                mem._sched = hook
            self._slot_maps.append(
                {id(sig): i for i, sig in enumerate(program.signals)})
            self._mem_maps.append(
                {id(mem): k for k, mem in enumerate(program.memories)})

        self._allocate()
        self._build_namespace()
        # Mirror the scalar constructor: pre-construction two-phase pokes
        # (rows where next != value) are committed by the initial settle.
        _np.copyto(self._V, self._VN)
        self._settle_fn(self)
        self.sync_out()

    # -- batch assembly --------------------------------------------------------

    def _invalidate_previous(self) -> None:
        previous = set()
        for top in self.tops:
            for sig in top.all_signals():
                previous.add(sig._sched)
            for mem in top.all_memories():
                previous.add(mem._sched)
        for sched in previous:
            if sched is not None and getattr(sched, "_batch", None) is not self:
                sched._attached = False

    def _allocate(self) -> None:
        program = self.program
        n_sigs = len(program.signals)
        n = self.n_lanes
        self._V = _np.zeros((n_sigs, n), dtype=_np.int64)
        self._VN = _np.zeros((n_sigs, n), dtype=_np.int64)
        self._MM = [_np.zeros((mem.depth, n), dtype=_np.int64)
                    for mem in program.memories]
        self._PA = [_np.zeros(n, dtype=_np.int64)
                    for _ in program.attr_slots]
        self._PL: List[list] = [[None] for _ in program.gather_lists]
        self._PLEN = [_np.zeros(n, dtype=_np.int64)
                      for _ in program.gather_lists]
        self._LS: List[List[list]] = [
            [self._programs[lane].append_lists[j] for lane in range(n)]
            for j in range(len(program.append_lists))]
        self._gather_all()
        self._LC = [self._make_comb_call(q)
                    for q in range(len(program.comb_calls))]
        self._LQ = [self._make_seq_call(q)
                    for q in range(len(program.seq_calls))]

    def _gather_all(self) -> None:
        """(Re)load every lane's object state into the batch arrays."""
        for lane, program in enumerate(self._programs):
            for i, sig in enumerate(program.signals):
                self._V[i, lane] = sig._value
                self._VN[i, lane] = sig._next
            for k, mem in enumerate(program.memories):
                self._MM[k][:, lane] = mem._data
            for j, (owner, attr) in enumerate(program.attr_slots):
                self._PA[j][lane] = int(getattr(owner, attr))
        for j in range(len(self.program.gather_lists)):
            self._rebuild_gather(j)

    def _rebuild_gather(self, j: int) -> None:
        lanes = [self._programs[lane].gather_lists[j]
                 for lane in range(self.n_lanes)]
        longest = max((len(data) for data in lanes), default=0)
        matrix = _np.zeros((self.n_lanes, max(1, longest)), dtype=_np.int64)
        for lane, data in enumerate(lanes):
            if data:
                matrix[lane, :len(data)] = data
            self._PLEN[j][lane] = len(data)
        self._PL[j][0] = matrix

    def _build_namespace(self) -> None:
        namespace: Dict[str, Any] = {
            "_NP": _np,
            "_LIDX": _np.arange(self.n_lanes),
            "_NLANES": self.n_lanes,
            "_VR": self._V,
            "_NR": self._VN,
            "_V": self._V,
            "_VN": self._VN,
            "_MM": self._MM,
            "_PA": self._PA,
            "_PL": self._PL,
            "_PLEN": self._PLEN,
            "_LS": self._LS,
            "_LC": self._LC,
            "_LQ": self._LQ,
        }
        exec(compile(self.program.source, "<repro-batched>", "exec"),
             namespace)
        self._settle_fn = namespace["settle"]
        self._cycle_fn = namespace["cycle"]

    # -- per-lane fallback calls ----------------------------------------------

    def _make_comb_call(self, q: int) -> Callable[[], bool]:
        plans = [program.comb_calls[q] for program in self._programs]
        if plans[0].opaque:
            return self._make_opaque_call(plans)
        sig_slots = plans[0].sig_slots
        mem_slots = plans[0].mem_slots
        V, VN, MM = self._V, self._VN, self._MM

        def run() -> bool:
            changed = False
            for lane in range(self.n_lanes):
                program = self._programs[lane]
                self._scatter_lane(lane, sig_slots, mem_slots)
                plans[lane].proc()
                if self._drain_lane(lane, program, seq=False,
                                    v=V, vn=VN, mm=MM):
                    changed = True
            return changed

        return run

    def _make_opaque_call(self, plans: List) -> Callable[[], bool]:
        def run() -> bool:
            changed = False
            for lane in range(self.n_lanes):
                program = self._programs[lane]
                self._scatter_lane(lane, None, None)
                plans[lane].proc()
                if self._drain_lane(lane, program, seq=False,
                                    v=self._V, vn=self._VN, mm=self._MM):
                    changed = True
            return changed

        return run

    def _make_seq_call(self, q: int) -> Callable[[], None]:
        plans = [program.seq_calls[q] for program in self._programs]
        opaque = plans[0].opaque
        sig_slots = None if opaque else plans[0].sig_slots
        mem_slots = None if opaque else plans[0].mem_slots

        def run() -> None:
            for lane in range(self.n_lanes):
                program = self._programs[lane]
                self._scatter_lane(lane, sig_slots, mem_slots)
                plans[lane].proc()
                self._drain_lane(lane, program, seq=True,
                                 v=self._V, vn=self._VN, mm=self._MM)

        return run

    def _scatter_lane(self, lane: int, sig_slots: Optional[List[int]],
                      mem_slots: Optional[List[int]]) -> None:
        """Push batch columns onto one lane's live objects before a call."""
        program = self._programs[lane]
        signals = program.signals
        V, VN = self._V, self._VN
        if sig_slots is None:
            sig_slots = range(len(signals))
        for slot in sig_slots:
            sig = signals[slot]
            sig._value = int(V[slot, lane])
            sig._next = int(VN[slot, lane])
        memories = program.memories
        if mem_slots is None:
            mem_slots = range(len(memories))
        for k in mem_slots:
            memories[k]._data[:] = self._MM[k][:, lane].tolist()
        for j, (owner, attr) in enumerate(program.attr_slots):
            setattr(owner, attr, int(self._PA[j][lane]))

    def _drain_lane(self, lane: int, program, seq: bool, v, vn, mm) -> bool:
        """Pull one lane's post-call writes back into the batch arrays."""
        hook = self._hooks[lane]
        slot_map = self._slot_maps[lane]
        mem_map = self._mem_maps[lane]
        changed = False
        for sig in hook._written:
            slot = slot_map[id(sig)]
            nxt = sig._next
            if seq:
                vn[slot, lane] = nxt
            else:
                if v[slot, lane] != nxt:
                    changed = True
                v[slot, lane] = nxt
                vn[slot, lane] = nxt
        for sig in hook._forced:
            slot = slot_map[id(sig)]
            value = sig._value
            if v[slot, lane] != value:
                changed = True
            v[slot, lane] = value
            vn[slot, lane] = value
        for mem in hook._mems:
            k = mem_map.get(id(mem))
            if k is not None:
                mm[k][:, lane] = mem._data
        hook.clear()
        for j, (owner, attr) in enumerate(program.attr_slots):
            self._PA[j][lane] = int(getattr(owner, attr))
        # The drained queues account for every poke the call made; the flag
        # they raised would otherwise trigger a pointless sync next settle.
        if not any(h._written or h._forced or h._mems for h in self._hooks):
            self._in_dirty = False
        return changed

    # -- kernel support hooks (called from generated code) ---------------------

    def _check_attached(self) -> None:
        if not self._attached:
            raise SimulationError(
                "this batched simulator was detached: another simulator was "
                "constructed over one of its lane hierarchies; build a new "
                "batch (or keep one simulator per hierarchy)")

    def _raise_comb_loop(self) -> None:
        raise CombinationalLoopError(
            f"combinational network did not settle after {self.max_settle} "
            f"iterations in at least one lane (cycle {self._cycles})")

    def _sync_in(self) -> None:
        """Gather test-bench pokes made since the last kernel call.

        Mirrors the scalar compiled settle's entry: pending ``next`` pokes
        are committed (both rows), ``force``/``reset`` writes land in both
        rows, notified memories are re-gathered, and gather-list matrices
        are rebuilt when any lane's list grew.
        """
        V, VN = self._V, self._VN
        for lane, hook in enumerate(self._hooks):
            if hook._written:
                slot_map = self._slot_maps[lane]
                for sig in hook._written:
                    slot = slot_map[id(sig)]
                    nxt = sig._next
                    sig._value = nxt
                    V[slot, lane] = nxt
                    VN[slot, lane] = nxt
            if hook._forced:
                slot_map = self._slot_maps[lane]
                for sig in hook._forced:
                    slot = slot_map[id(sig)]
                    value = sig._value
                    V[slot, lane] = value
                    VN[slot, lane] = value
            if hook._mems:
                mem_map = self._mem_maps[lane]
                for mem in hook._mems:
                    k = mem_map.get(id(mem))
                    if k is not None:
                        self._MM[k][:, lane] = mem._data
            hook.clear()
        for j in range(len(self.program.gather_lists)):
            plen = self._PLEN[j]
            for lane in range(self.n_lanes):
                if len(self._programs[lane].gather_lists[j]) != plen[lane]:
                    self._rebuild_gather(j)
                    break
        self._in_dirty = False

    def _post_cycle(self) -> None:
        """Per-cycle watcher dispatch: sync only the lanes being watched."""
        for lane, watchers in enumerate(self._lane_watchers):
            if watchers:
                self.sync_out_lane(lane)
                for func, _reset in watchers:
                    func(self._cycles)

    def _refresh_has_watchers(self) -> None:
        self._has_watchers = any(self._lane_watchers)

    # -- object-state synchronization ------------------------------------------

    def sync_out_lane(self, lane: int) -> None:
        """Write one lane's batch columns back onto its live objects."""
        program = self._programs[lane]
        values = self._V[:, lane].tolist()
        nexts = self._VN[:, lane].tolist()
        for i, sig in enumerate(program.signals):
            sig._value = values[i]
            sig._next = nexts[i]
        for k, mem in enumerate(program.memories):
            mem._data[:] = self._MM[k][:, lane].tolist()
        for j, (owner, attr) in enumerate(program.attr_slots):
            setattr(owner, attr, int(self._PA[j][lane]))

    def sync_out(self) -> None:
        """Write every lane's state back onto its live objects."""
        for lane in range(self.n_lanes):
            self.sync_out_lane(lane)

    # -- public simulator surface ----------------------------------------------

    @property
    def cycles(self) -> int:
        """Number of lockstep clock cycles executed so far (all lanes)."""
        return self._cycles

    @property
    def strategy(self) -> str:
        return COMPILED_BATCHED

    def lane(self, index: int) -> LaneView:
        """A scalar-shaped view of one lane (for tracers and monitors)."""
        view = self._lane_views.get(index)
        if view is None:
            if not 0 <= index < self.n_lanes:
                raise SimulationError(
                    f"lane {index} out of range (batch has "
                    f"{self.n_lanes} lanes)")
            view = self._lane_views[index] = LaneView(self, index)
        return view

    def settle(self) -> int:
        """Settle all lanes, then sync every lane's objects."""
        rounds = self._settle_fn(self)
        self.sync_out()
        return rounds

    def step(self, cycles: int = 1) -> None:
        """Advance all lanes ``cycles`` clock cycles, then sync objects."""
        if cycles < 0:
            raise SimulationError(
                f"cannot step a negative number of cycles: {cycles}")
        profiler = _obs_profile.active()
        start = time.perf_counter() if profiler is not None else 0.0
        cycle_fn = self._cycle_fn
        for _ in range(cycles):
            cycle_fn(self)
        self.sync_out()
        if profiler is not None:
            profiler.record_step(COMPILED_BATCHED, cycles * self.n_lanes,
                                 time.perf_counter() - start)

    def run_until(self, condition: Callable[[], bool],
                  max_cycles: Optional[int] = None) -> int:
        """Step all lanes until a (whole-batch) condition holds."""
        budget = self.max_cycles if max_cycles is None else max_cycles
        start = self._cycles
        cycle_fn = self._cycle_fn
        while True:
            self.sync_out()
            if condition():
                break
            if self._cycles - start >= budget:
                raise SimulationError(
                    f"condition not reached within {budget} cycles")
            cycle_fn(self)
        return self._cycles - start

    def run_lockstep(self, conditions: Sequence[Callable[[], bool]],
                     max_cycles: Optional[int] = None) -> List[int]:
        """Advance until every lane's condition has become true.

        This is the sweep fast path: there is **no per-cycle object sync**,
        so each ``conditions[lane]`` must read state the kernel keeps live —
        appended Python lists (``sink.received`` via ``sink.count``) or
        promoted attribute rows via :meth:`lane_attr` — not ``Signal.value``.
        Returns the cycle count at which each lane's condition first held;
        lanes that finish early keep simulating (their pipelines simply
        drain) until the whole batch is done, preserving lockstep.
        """
        if len(conditions) != self.n_lanes:
            raise SimulationError(
                f"{self.n_lanes} lanes but {len(conditions)} conditions")
        if (_obs_profile._ACTIVE is not None
                or _obs_tracing._STATE.active):
            return self._run_lockstep_instrumented(conditions, max_cycles)
        return self._run_lockstep(conditions, max_cycles)

    def _run_lockstep_instrumented(self, conditions, max_cycles):
        """Lockstep run under a ``batch.lockstep`` span / profiler record.

        One span covers the whole batch run — lane count and the lockstep
        cycle total land in its attributes; lane-cycles (cycles × lanes,
        the throughput-relevant unit) are what the profiler accumulates.
        """
        profiler = _obs_profile.active()
        start_cycle = self._cycles
        wall = time.perf_counter()
        with _obs_tracing.span("batch.lockstep", lanes=self.n_lanes) as sp:
            done = self._run_lockstep(conditions, max_cycles)
            sp.args["cycles"] = self._cycles - start_cycle
        if profiler is not None:
            profiler.record_step(
                COMPILED_BATCHED,
                (self._cycles - start_cycle) * self.n_lanes,
                time.perf_counter() - wall)
        return done

    def _run_lockstep(self, conditions: Sequence[Callable[[], bool]],
                      max_cycles: Optional[int] = None) -> List[int]:
        budget = self.max_cycles if max_cycles is None else max_cycles
        start = self._cycles
        done: List[Optional[int]] = [None] * self.n_lanes
        cycle_fn = self._cycle_fn
        while True:
            for lane, condition in enumerate(conditions):
                if done[lane] is None and condition():
                    done[lane] = self._cycles - start
            if all(d is not None for d in done):
                break
            if self._cycles - start >= budget:
                missing = [i for i, d in enumerate(done) if d is None]
                raise SimulationError(
                    f"lanes {missing} did not reach their conditions "
                    f"within {budget} cycles")
            cycle_fn(self)
        self.sync_out()
        return [d for d in done if d is not None]

    def lane_attr(self, lane: int, owner: Any, attr: str) -> int:
        """Read a promoted Python attribute for one lane without a sync."""
        program = self._programs[lane]
        for j, (slot_owner, slot_attr) in enumerate(program.attr_slots):
            if slot_owner is owner and slot_attr == attr:
                return int(self._PA[j][lane])
        return int(getattr(owner, attr))

    def add_watcher(self, func: Callable[[int], None],
                    on_reset: Optional[Callable[[], None]] = None) -> None:
        """Watch every cycle (lane-agnostic); lanes are synced first."""
        self.lane(0).add_watcher(func, on_reset)

    def reset(self) -> None:
        """Reset every lane, the cycle counter and watcher state; re-settle."""
        for top in self.tops:
            top.reset_state()
        self._cycles = 0
        for hook in self._hooks:
            hook.clear()
        self._in_dirty = False
        self._dirty = True
        self._gather_all()
        for watchers in self._lane_watchers:
            for _func, on_reset in watchers:
                if on_reset is not None:
                    on_reset()
        self._settle_fn(self)
        self.sync_out()


def batch_groups(tops: Sequence[Component], max_settle: int = 64
                 ) -> List[Tuple[List[int], List]]:
    """Group design instances into batch-compatible lane sets.

    Buckets designs by program signature (byte-identical generated source
    and array shapes).  Each design is first rebound against recently
    emitted reference programs — recipe-identical siblings reuse a prior
    emission outright — and only novel designs pay a full emitter run.
    Returns ``[(indices, programs), ...]`` in first-seen order; feed each
    group's ``tops``/``programs`` pair straight into
    :class:`BatchedSimulator` to avoid a second emission.
    """
    _require_numpy()

    groups: Dict[str, Tuple[List[int], List]] = {}
    order: List[str] = []
    for index, top in enumerate(tops):
        program = _program_for(top, max_settle)
        key = program.signature
        if key not in groups:
            groups[key] = ([], [])
            order.append(key)
        groups[key][0].append(index)
        groups[key][1].append(program)
    return [groups[key] for key in order]
