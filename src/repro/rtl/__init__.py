"""Pure-Python RTL modelling and simulation kernel.

This package is the substrate the reproduction is built on: it plays the role
that VHDL plus a simulator played for the original paper.  It provides
fixed-width values (:class:`Bits`), two-phase signals (:class:`Signal`),
hierarchical components (:class:`Component`), a cycle-accurate simulator
(:class:`Simulator`), an FSM helper and waveform tracing.
"""

from .bits import Bits, bits_for, clog2, mask
from .component import Component, Memory
from .errors import (
    CombinationalLoopError,
    ElaborationError,
    PortError,
    RTLError,
    SimulationError,
    WidthError,
)
from .batch import COMPILED_BATCHED, BatchedSimulator, LaneView, batch_groups
from .fsm import FSM
from .signal import REG, WIRE, Signal, SignalBundle, register, wire
from .simulator import COMPILED, EVENT, FIXPOINT, STRATEGIES, Simulator, pulse
from .trace import Recorder, VCDWriter

__all__ = [
    "BatchedSimulator",
    "COMPILED_BATCHED",
    "LaneView",
    "batch_groups",
    "Bits",
    "bits_for",
    "clog2",
    "mask",
    "Component",
    "Memory",
    "FSM",
    "Signal",
    "SignalBundle",
    "register",
    "wire",
    "REG",
    "WIRE",
    "Simulator",
    "COMPILED",
    "EVENT",
    "FIXPOINT",
    "STRATEGIES",
    "pulse",
    "Recorder",
    "VCDWriter",
    "RTLError",
    "WidthError",
    "CombinationalLoopError",
    "ElaborationError",
    "SimulationError",
    "PortError",
]
