"""Hierarchical hardware components.

A :class:`Component` owns signals, child components and processes:

* *combinational processes* (registered with :meth:`Component.comb`) are
  plain callables re-evaluated until the signal network settles each cycle;
* *sequential processes* (registered with :meth:`Component.seq`) are called
  exactly once per clock cycle, after settling, and model clocked logic.

Components also carry the structural metadata the synthesis estimator needs:
declared state registers, memories, and an optional ``transparent`` flag for
pure wrappers (such as simple iterators) that dissolve at synthesis.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterator, List, Optional

from . import signal as _signal_state
from .errors import ElaborationError
from .signal import REG, WIRE, Signal

Process = Callable[[], None]


class Memory:
    """A behavioural memory array owned by a component.

    The array is a plain Python list of ints; the declared ``depth`` and
    ``width`` are used by the synthesis estimator to decide whether the
    memory maps to block RAM or distributed/external storage.
    """

    def __init__(self, depth: int, width: int, name: str = "mem",
                 init: Optional[List[int]] = None) -> None:
        if depth < 1:
            raise ElaborationError(f"memory depth must be >= 1, got {depth}")
        if width < 1:
            raise ElaborationError(f"memory width must be >= 1, got {width}")
        self.depth = depth
        self.width = width
        self.name = name
        self._mask = (1 << width) - 1
        contents = list(init or [])
        if len(contents) > depth:
            raise ElaborationError(
                f"memory init has {len(contents)} words but depth is {depth}")
        self._data = [int(v) & self._mask for v in contents]
        self._data += [0] * (depth - len(self._data))
        self._init = list(self._data)
        #: Scheduler notified on writes (event-driven simulation).  Sensitivity
        #: is whole-memory: any write wakes every process that read the array.
        self._sched = None

    def __len__(self) -> int:
        return self.depth

    def __getitem__(self, addr: int) -> int:
        reads = _signal_state._active_reads
        if reads is not None:
            reads.add(self)
        return self._data[int(addr) % self.depth]

    def __setitem__(self, addr: int, value: int) -> None:
        self._data[int(addr) % self.depth] = int(value) & self._mask
        sched = self._sched
        if sched is not None:
            sched.notify_memory(self)

    def load(self, values: List[int], offset: int = 0) -> None:
        """Bulk-load ``values`` starting at ``offset`` (wrapping disallowed)."""
        if offset + len(values) > self.depth:
            raise ElaborationError("memory load exceeds depth")
        for i, value in enumerate(values):
            self[offset + i] = value

    def dump(self, start: int = 0, count: Optional[int] = None) -> List[int]:
        """Return a copy of ``count`` words starting at ``start``."""
        if count is None:
            count = self.depth - start
        return [self[start + i] for i in range(count)]

    def reset(self) -> None:
        """Restore initial contents."""
        self._data = list(self._init)
        sched = self._sched
        if sched is not None:
            sched.notify_memory(self)

    @property
    def bits(self) -> int:
        """Total number of storage bits."""
        return self.depth * self.width


class Component:
    """Base class for every hardware block in the library.

    Subclasses build their structure in ``__init__``: declare signals with
    :meth:`signal` / :meth:`state`, instantiate children with :meth:`child`,
    and register processes with :meth:`comb` and :meth:`seq`.
    """

    #: Pure wrappers (renaming/forwarding only) set this to True; the
    #: synthesis estimator then charges them zero resources, mirroring the
    #: paper's "iterators are dissolved at synthesis" observation.
    transparent: bool = False

    def __init__(self, name: str) -> None:
        self.name = name
        self.parent: Optional["Component"] = None
        self._children: List[Component] = []
        self._child_names: Dict[str, Component] = {}
        self._signals: List[Signal] = []
        self._memories: List[Memory] = []
        self._comb_procs: List[Process] = []
        self._seq_procs: List[Process] = []

    # -- structure ------------------------------------------------------------

    def child(self, component: "Component") -> "Component":
        """Attach ``component`` as a child and return it."""
        if component.parent is not None:
            raise ElaborationError(
                f"component {component.name!r} already has a parent "
                f"({component.parent.name!r})")
        if component.name in self._child_names:
            raise ElaborationError(
                f"duplicate child name {component.name!r} under {self.name!r}")
        component.parent = self
        self._children.append(component)
        self._child_names[component.name] = component
        return component

    def get_child(self, name: str) -> "Component":
        """Return the direct child called ``name``."""
        try:
            return self._child_names[name]
        except KeyError:
            raise ElaborationError(
                f"{self.name!r} has no child named {name!r}") from None

    @property
    def children(self) -> List["Component"]:
        return list(self._children)

    def path(self) -> str:
        """Hierarchical path from the root, dot-separated."""
        if self.parent is None:
            return self.name
        return f"{self.parent.path()}.{self.name}"

    def walk(self) -> Iterator["Component"]:
        """Depth-first iteration over this component and all descendants."""
        yield self
        for chl in self._children:
            yield from chl.walk()

    def find(self, path: str) -> "Component":
        """Look up a descendant by dot-separated relative path."""
        node: Component = self
        for part in path.split("."):
            node = node.get_child(part)
        return node

    # -- signals and memories ---------------------------------------------------

    def signal(self, width: int = 1, init: int = 0, name: str = "") -> Signal:
        """Declare a combinational (wire) signal owned by this component."""
        sig = Signal(width=width, init=init, name=name or f"{self.name}_w{len(self._signals)}",
                     kind=WIRE)
        self._signals.append(sig)
        return sig

    def state(self, width: int = 1, init: int = 0, name: str = "") -> Signal:
        """Declare a clocked register signal owned by this component."""
        sig = Signal(width=width, init=init, name=name or f"{self.name}_r{len(self._signals)}",
                     kind=REG)
        self._signals.append(sig)
        return sig

    def memory(self, depth: int, width: int, name: str = "",
               init: Optional[List[int]] = None) -> Memory:
        """Declare a behavioural memory array owned by this component."""
        mem = Memory(depth, width, name=name or f"{self.name}_mem{len(self._memories)}",
                     init=init)
        self._memories.append(mem)
        return mem

    def adopt_signal(self, sig: Signal) -> Signal:
        """Register an externally-created signal for tracing/estimation."""
        self._signals.append(sig)
        return sig

    @property
    def signals(self) -> List[Signal]:
        return list(self._signals)

    @property
    def memories(self) -> List[Memory]:
        return list(self._memories)

    def all_signals(self) -> List[Signal]:
        """All signals of this component and its descendants."""
        result: List[Signal] = []
        for comp in self.walk():
            result.extend(comp._signals)
        return result

    def all_memories(self) -> List[Memory]:
        """All memories of this component and its descendants."""
        result: List[Memory] = []
        for comp in self.walk():
            result.extend(comp._memories)
        return result

    # -- processes ----------------------------------------------------------------

    def comb(self, func: Optional[Process] = None, *,
             sensitivity: Optional[list] = None) -> Process:
        """Register (or decorate) a combinational process.

        ``sensitivity`` optionally declares the process's input set (signals
        and/or memories) up front, like a VHDL sensitivity list.  The
        event-driven scheduler then wakes the process on exactly those
        objects and skips read-tracing it; the declared set must therefore
        cover **everything** the process ever reads — an omission means
        missed wake-ups.  Without it (the common case) the scheduler infers
        the set automatically by tracing reads on every evaluation.

        Both decorator forms work::

            @self.comb
            def wires(): ...

            @self.comb(sensitivity=[self.a, self.b])
            def wires(): ...
        """
        if func is None:
            def wrap(inner: Process) -> Process:
                return self.comb(inner, sensitivity=sensitivity)
            return wrap
        if sensitivity is not None:
            func.sensitivity = tuple(sensitivity)
        self._comb_procs.append(func)
        return func

    def seq(self, func: Process) -> Process:
        """Register (or decorate) a clocked process."""
        self._seq_procs.append(func)
        return func

    @property
    def comb_procs(self) -> List[Process]:
        return list(self._comb_procs)

    @property
    def seq_procs(self) -> List[Process]:
        return list(self._seq_procs)

    def all_comb_procs(self) -> List[Process]:
        result: List[Process] = []
        for comp in self.walk():
            result.extend(comp._comb_procs)
        return result

    def all_seq_procs(self) -> List[Process]:
        result: List[Process] = []
        for comp in self.walk():
            result.extend(comp._seq_procs)
        return result

    # -- structural queries used by the synthesis estimator --------------------------

    def state_bits(self) -> int:
        """Number of register bits declared directly by this component."""
        return sum(sig.width for sig in self._signals if sig.kind == REG)

    def memory_bits(self) -> int:
        """Number of memory bits declared directly by this component."""
        return sum(mem.bits for mem in self._memories)

    # -- misc -------------------------------------------------------------------------

    def reset_state(self) -> None:
        """Reset all signals and memories in the subtree to their initial values."""
        for comp in self.walk():
            for sig in comp._signals:
                sig.reset()
            for mem in comp._memories:
                mem.reset()

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.path()}>"
