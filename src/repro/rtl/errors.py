"""Exception hierarchy for the RTL modelling kernel.

All kernel-level failures derive from :class:`RTLError` so library users can
catch modelling problems separately from ordinary Python errors.
"""

from __future__ import annotations


class RTLError(Exception):
    """Base class for all errors raised by the RTL kernel."""


class WidthError(RTLError):
    """A value does not fit in the declared signal width, or widths mismatch."""


class CombinationalLoopError(RTLError):
    """Combinational settling did not reach a fixed point.

    Raised by the simulator when the combinational processes keep changing
    signal values after the configured maximum number of delta iterations.
    This almost always indicates a combinational feedback loop in the model.
    """


class ElaborationError(RTLError):
    """The component hierarchy is malformed (duplicate names, reparenting...)."""


class SimulationError(RTLError):
    """A runtime failure during simulation (e.g. protocol violation)."""


class PortError(RTLError):
    """A port connection is missing or inconsistent."""
