"""Finite-state-machine helper.

The algorithms in the paper (stream copy, blur) are "implemented as a finite
state machine handling the buffer signals and sequencing the read and write
operations".  :class:`FSM` packages the recurring bookkeeping: symbolic state
names, a state register of the right width, and transition recording that
feeds both debugging and the synthesis estimator (state count and transition
count drive the LUT estimate of the control logic).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from .bits import clog2
from .component import Component
from .errors import ElaborationError
from .signal import Signal


class FSM:
    """Symbolic state machine bound to a state register of a component.

    Usage::

        fsm = FSM(self, ["IDLE", "READ", "WRITE"], name="ctrl")
        ...
        @self.seq
        def control():
            if fsm.is_in("IDLE"):
                fsm.goto("READ")

    State names become attributes holding their binary encoding, so
    ``fsm.IDLE == 0``; the underlying register is :attr:`state`.
    """

    def __init__(self, component: Component, states: List[str],
                 initial: Optional[str] = None, name: str = "fsm") -> None:
        if not states:
            raise ElaborationError("an FSM needs at least one state")
        if len(set(states)) != len(states):
            raise ElaborationError(f"duplicate FSM state names in {states}")
        self.name = name
        self.states = list(states)
        self._encoding: Dict[str, int] = {s: i for i, s in enumerate(states)}
        initial = initial or states[0]
        if initial not in self._encoding:
            raise ElaborationError(f"initial state {initial!r} is not a state")
        self.initial = initial
        width = clog2(len(states)) if len(states) > 1 else 1
        self.state: Signal = component.state(
            width=width, init=self._encoding[initial], name=f"{name}_state")
        self._transitions: List[Tuple[str, str]] = []
        self._transition_set: set = set()
        for state_name, code in self._encoding.items():
            setattr(self, state_name, code)

    # -- encode / decode -------------------------------------------------------

    def encode(self, state_name: str) -> int:
        """Return the binary encoding of ``state_name``."""
        try:
            return self._encoding[state_name]
        except KeyError:
            raise ElaborationError(f"unknown FSM state {state_name!r}") from None

    def decode(self, code: int) -> str:
        """Return the state name for encoding ``code``."""
        code = int(code)
        if not 0 <= code < len(self.states):
            raise ElaborationError(f"no FSM state with encoding {code}")
        return self.states[code]

    @property
    def current(self) -> str:
        """The symbolic name of the current state."""
        return self.decode(self.state.value)

    # -- behaviour helpers (used inside sequential processes) -------------------

    def is_in(self, state_name: str) -> bool:
        """True when the committed state equals ``state_name``."""
        return self.state.value == self.encode(state_name)

    def goto(self, state_name: str) -> None:
        """Schedule a transition to ``state_name`` for the next cycle."""
        target = self.encode(state_name)
        source = self.current
        key = (source, state_name)
        if key not in self._transition_set:
            self._transition_set.add(key)
            self._transitions.append(key)
        self.state.next = target

    def stay(self) -> None:
        """Explicitly remain in the current state (self-loop)."""
        self.state.next = self.state.value

    # -- structural queries ------------------------------------------------------

    @property
    def num_states(self) -> int:
        return len(self.states)

    @property
    def width(self) -> int:
        return self.state.width

    def observed_transitions(self) -> List[Tuple[str, str]]:
        """Distinct (source, target) transitions taken so far in simulation."""
        return list(self._transitions)

    def __repr__(self) -> str:
        return f"FSM({self.name!r}, states={self.states}, current={self.current!r})"
