"""Signals: the wires and registers of the RTL model.

A :class:`Signal` carries a fixed-width unsigned value.  Processes never
mutate the current value directly; they assign to :attr:`Signal.next` and the
simulator commits pending values at well-defined points (after each
combinational delta iteration and after the clocked processes of a cycle).
This mirrors the signal-update semantics of VHDL/Verilog and of MyHDL.

Two flavours exist:

* *wires* (``Signal(..., kind=WIRE)``): driven by combinational processes,
  they hold no state between cycles and do not map to flip-flops.
* *registers* (``Signal(..., kind=REG)`` or :meth:`Component.state`): driven
  by clocked processes, they represent flip-flops and are what the synthesis
  estimator counts as FFs.
"""

from __future__ import annotations

import itertools
from typing import Optional

from .bits import Bits, mask
from .errors import WidthError

WIRE = "wire"
REG = "reg"

_signal_ids = itertools.count()

#: Read-trace hook used by the event-driven scheduler.  While a combinational
#: process is being evaluated the scheduler installs a set here; every
#: :attr:`Signal.value` read (and every :class:`~.component.Memory` indexed
#: read) records itself into it, yielding the process's dynamic sensitivity
#: list.  ``None`` outside traced evaluations, so the fixpoint strategy and
#: test benches pay only a None-check per read.
_active_reads: Optional[set] = None


class Signal:
    """A fixed-width signal with deferred (two-phase) assignment.

    Parameters
    ----------
    width:
        Bit width of the signal (>= 1).
    init:
        Initial (reset) value; wrapped to ``width`` bits.
    name:
        Optional human-readable name, used by traces and error messages.
    kind:
        ``WIRE`` for combinationally-driven nets, ``REG`` for clocked state.
    """

    __slots__ = ("width", "name", "kind", "init", "_value", "_next", "_uid",
                 "_mask", "_sched")

    def __init__(self, width: int = 1, init: int = 0,
                 name: str = "", kind: str = WIRE) -> None:
        if width < 1:
            raise WidthError(f"signal width must be >= 1, got {width}")
        if kind not in (WIRE, REG):
            raise WidthError(f"unknown signal kind {kind!r}")
        self.width = int(width)
        self.name = name or f"sig{next(_signal_ids)}"
        self.kind = kind
        self._mask = mask(self.width)
        self.init = int(init) & self._mask
        self._value = self.init
        self._next = self.init
        self._uid = next(_signal_ids)
        #: Scheduler this signal notifies on writes (event-driven simulation).
        self._sched = None

    # -- value access -------------------------------------------------------

    @property
    def value(self) -> int:
        """The committed value (what other processes observe this cycle)."""
        if _active_reads is not None:
            _active_reads.add(self)
        return self._value

    @property
    def bits(self) -> Bits:
        """The committed value wrapped in a :class:`Bits`."""
        return Bits(self.width, self._value)

    @property
    def next(self) -> int:
        """The pending value that will be committed at the next commit point."""
        return self._next

    @next.setter
    def next(self, value) -> None:
        self._next = int(value) & self._mask
        sched = self._sched
        if sched is not None:
            sched._written.append(self)

    def drive(self, value) -> None:
        """Alias for assigning :attr:`next`; reads better in some processes."""
        self.next = value

    # -- simulator hooks ------------------------------------------------------

    def commit(self) -> bool:
        """Publish the pending value.  Returns ``True`` if the value changed."""
        changed = self._next != self._value
        self._value = self._next
        return changed

    def reset(self) -> None:
        """Restore the initial value (both committed and pending)."""
        changed = self._value != self.init or self._next != self.init
        self._value = self.init
        self._next = self.init
        sched = self._sched
        if changed and sched is not None:
            sched.notify_changed(self)

    def force(self, value) -> None:
        """Set both committed and pending value immediately.

        Intended for test benches that need to poke a value outside the
        normal two-phase update discipline.
        """
        value = int(value) & self._mask
        if value == self._value and value == self._next:
            return
        self._value = value
        self._next = value
        sched = self._sched
        if sched is not None:
            sched.notify_changed(self)

    # -- conversions ----------------------------------------------------------

    def __int__(self) -> int:
        return self._value

    def __index__(self) -> int:
        return self._value

    def __bool__(self) -> bool:
        return self._value != 0

    def __repr__(self) -> str:
        return (f"Signal({self.name!r}, width={self.width}, "
                f"value=0x{self._value:x}, kind={self.kind})")

    # -- comparisons read the committed value ---------------------------------

    def __eq__(self, other) -> bool:
        if isinstance(other, Signal):
            return self is other
        if isinstance(other, (int, Bits)):
            return self._value == int(other)
        return NotImplemented

    def __hash__(self) -> int:
        return self._uid


def wire(width: int = 1, init: int = 0, name: str = "") -> Signal:
    """Convenience constructor for a combinational (wire) signal."""
    return Signal(width=width, init=init, name=name, kind=WIRE)


def register(width: int = 1, init: int = 0, name: str = "") -> Signal:
    """Convenience constructor for a clocked (register) signal."""
    return Signal(width=width, init=init, name=name, kind=REG)


class SignalBundle:
    """A named group of signals, used to model record-like port bundles.

    The bundle is a thin container: attribute access returns the underlying
    :class:`Signal` objects, and :meth:`signals` enumerates them for tracing
    and estimation.
    """

    def __init__(self, name: str = "bundle", **signals: Signal) -> None:
        self._name = name
        self._signals = dict(signals)
        for key, sig in signals.items():
            setattr(self, key, sig)

    @property
    def name(self) -> str:
        return self._name

    def signals(self) -> dict:
        """Return the mapping of field name to :class:`Signal`."""
        return dict(self._signals)

    def add(self, key: str, sig: Signal) -> Signal:
        """Add a named signal to the bundle and return it."""
        self._signals[key] = sig
        setattr(self, key, sig)
        return sig

    def __contains__(self, key: str) -> bool:
        return key in self._signals

    def __getitem__(self, key: str) -> Signal:
        return self._signals[key]

    def __iter__(self):
        return iter(self._signals.items())

    def __repr__(self) -> str:
        fields = ", ".join(sorted(self._signals))
        return f"SignalBundle({self._name!r}: {fields})"
