"""Compiled per-design simulation backend.

``Simulator(strategy="compiled")`` elaborates a design once, statically
analyses every combinational process's read/write sets
(:mod:`~repro.rtl.compile.analyze`), orders the network so one pass settles
it (:mod:`~repro.rtl.compile.schedule`) and emits a specialised module-level
Python function per design (:mod:`~repro.rtl.compile.emit`): slot-indexed
signal access, inlined bit-width masks, fused write+commit, topologically
ordered process bodies.  It is the software analogue of the paper's wrapper
dissolution — the generic scheduler disappears into design-specific
straight-line code.
"""

from __future__ import annotations

from typing import Callable, Sequence

from ...obs import tracing as _obs_tracing
from .analyze import ProcAnalysis, analyze_proc
from .emit import CompiledProgram, CompileReport, emit_program
from .emit_batched import (
    BatchedProgram,
    BatchReport,
    VectorizeError,
    emit_batched_program,
)
from .schedule import Schedule, build_schedule


def compile_design(comb_procs: Sequence[Callable],
                   seq_procs: Sequence[Callable],
                   max_settle: int = 64) -> CompiledProgram:
    """Compile a design's processes into a specialised settle/cycle pair.

    Each pipeline stage runs under its own child span ("analyze" /
    "schedule" / "emit") so traced compiles show where elaboration time
    goes; with tracing disabled the spans are no-op singletons.
    """
    with _obs_tracing.span("analyze", procs=len(comb_procs)):
        analyses = [analyze_proc(proc) for proc in comb_procs]
    with _obs_tracing.span("schedule"):
        schedule = build_schedule(analyses)
    with _obs_tracing.span("emit"):
        return emit_program(schedule, comb_procs, seq_procs, max_settle)


__all__ = [
    "analyze_proc",
    "build_schedule",
    "compile_design",
    "emit_program",
    "emit_batched_program",
    "BatchedProgram",
    "BatchReport",
    "CompiledProgram",
    "CompileReport",
    "ProcAnalysis",
    "Schedule",
    "VectorizeError",
]
