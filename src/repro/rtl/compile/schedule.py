"""Dependency scheduling for the compiled settle function.

The analysed combinational network is turned into *units* — either one
transpiled statement or one whole process — and a dependency graph:

* writer-before-reader for every signal and memory (so a single pass in
  topological order reaches the settle fixed point directly);
* program order between multiple writers of the same signal (last writer
  wins, exactly as under repeated fixpoint evaluation);
* definition-before-use program order for the local temporaries shared by
  the statements of a split process.

Strongly connected components (true combinational feedback, e.g. a
ready/valid loop that converges) are collapsed and emitted as small
iterate-until-stable groups; everything else becomes straight-line code.
The condensation is ordered with a deterministic Kahn topological sort so
the generated source is reproducible for a given design.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Set, Tuple

from .analyze import ProcAnalysis, StatementUnit


@dataclass
class Unit:
    """One schedulable piece of the combinational network."""

    index: int                      # global program order
    proc_index: int                 # which process it came from
    analysis: ProcAnalysis
    stmt: StatementUnit = None      # None -> whole-process call unit
    reads: Set = field(default_factory=set)
    writes: Set = field(default_factory=set)
    mem_reads: Set = field(default_factory=set)
    mem_writes: Set = field(default_factory=set)
    locals_touched: Set[str] = field(default_factory=set)

    @property
    def is_call(self) -> bool:
        return self.stmt is None


@dataclass
class ScheduleGroup:
    """A topological position: one unit, or a cyclic group to iterate."""

    units: List[Unit]
    cyclic: bool


@dataclass
class Schedule:
    """The complete settle plan for one design."""

    groups: List[ScheduleGroup]
    opaque: List[ProcAnalysis]
    units: List[Unit]

    @property
    def guarded(self) -> bool:
        """True when opaque processes force convergence-checked settling."""
        return bool(self.opaque)


def build_units(analyses: Sequence[ProcAnalysis]) -> Tuple[List[Unit],
                                                           List[ProcAnalysis]]:
    """Flatten process analyses into schedulable units plus opaque leftovers."""
    units: List[Unit] = []
    opaque: List[ProcAnalysis] = []
    for proc_index, analysis in enumerate(analyses):
        if analysis.opaque:
            opaque.append(analysis)
            continue
        if analysis.transpilable:
            for stmt in analysis.units:
                units.append(Unit(
                    index=len(units), proc_index=proc_index, analysis=analysis,
                    stmt=stmt, reads=set(stmt.reads), writes=set(stmt.writes),
                    mem_reads=set(stmt.mem_reads),
                    mem_writes=set(stmt.mem_writes),
                    locals_touched=set(stmt.locals_touched)))
        else:
            units.append(Unit(
                index=len(units), proc_index=proc_index, analysis=analysis,
                reads=set(analysis.reads), writes=set(analysis.writes),
                mem_reads=set(analysis.mem_reads),
                mem_writes=set(analysis.mem_writes)))
    return units, opaque


def build_edges(units: Sequence[Unit]) -> List[Set[int]]:
    """Adjacency sets: an edge u -> v means u must run before v."""
    edges: List[Set[int]] = [set() for _ in units]

    def add(src: int, dst: int) -> None:
        if src != dst:
            edges[src].add(dst)

    writers: Dict[object, List[int]] = {}
    readers: Dict[object, List[int]] = {}
    for unit in units:
        for sig in unit.writes:
            writers.setdefault(sig, []).append(unit.index)
        for mem in unit.mem_writes:
            writers.setdefault(mem, []).append(unit.index)
        for sig in unit.reads:
            readers.setdefault(sig, []).append(unit.index)
        for mem in unit.mem_reads:
            readers.setdefault(mem, []).append(unit.index)

    for obj, writer_list in writers.items():
        # Multiple writers keep program order (last writer wins, as under
        # the fixpoint strategy's registration-order evaluation).
        ordered = sorted(writer_list)
        for earlier, later in zip(ordered, ordered[1:]):
            add(earlier, later)
        for reader in readers.get(obj, ()):  # writer before reader
            for writer in writer_list:
                add(writer, reader)

    # Local temporaries: total program order among the statements of one
    # process that touch the same name (defs and uses alike).
    per_proc_locals: Dict[Tuple[int, str], List[int]] = {}
    for unit in units:
        if unit.stmt is None:
            continue
        for name in unit.locals_touched:
            per_proc_locals.setdefault((unit.proc_index, name),
                                       []).append(unit.index)
    for touchers in per_proc_locals.values():
        ordered = sorted(touchers)
        for earlier, later in zip(ordered, ordered[1:]):
            add(earlier, later)

    return edges


def _self_cyclic(unit: Unit) -> bool:
    """A unit that reads something it writes must be iterated."""
    return bool((unit.reads & unit.writes)
                or (unit.mem_reads & unit.mem_writes))


def _tarjan_sccs(edges: Sequence[Set[int]]) -> List[List[int]]:
    """Iterative Tarjan; returns SCCs (each a list of unit indices)."""
    n = len(edges)
    index_of = [-1] * n
    low = [0] * n
    on_stack = [False] * n
    stack: List[int] = []
    sccs: List[List[int]] = []
    counter = 0

    for root in range(n):
        if index_of[root] != -1:
            continue
        work = [(root, iter(sorted(edges[root])))]
        index_of[root] = low[root] = counter
        counter += 1
        stack.append(root)
        on_stack[root] = True
        while work:
            node, successors = work[-1]
            advanced = False
            for succ in successors:
                if index_of[succ] == -1:
                    index_of[succ] = low[succ] = counter
                    counter += 1
                    stack.append(succ)
                    on_stack[succ] = True
                    work.append((succ, iter(sorted(edges[succ]))))
                    advanced = True
                    break
                if on_stack[succ]:
                    low[node] = min(low[node], index_of[succ])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                low[parent] = min(low[parent], low[node])
            if low[node] == index_of[node]:
                scc = []
                while True:
                    member = stack.pop()
                    on_stack[member] = False
                    scc.append(member)
                    if member == node:
                        break
                sccs.append(sorted(scc))
    return sccs


def build_schedule(analyses: Sequence[ProcAnalysis]) -> Schedule:
    """Order the combinational network for single-pass settling."""
    units, opaque = build_units(analyses)
    edges = build_edges(units)
    sccs = _tarjan_sccs(edges)

    scc_of: Dict[int, int] = {}
    for scc_id, members in enumerate(sccs):
        for member in members:
            scc_of[member] = scc_id

    # Condensation graph + deterministic Kahn (min unit index first).
    cond_edges: List[Set[int]] = [set() for _ in sccs]
    indegree = [0] * len(sccs)
    for src, dsts in enumerate(edges):
        for dst in dsts:
            a, b = scc_of[src], scc_of[dst]
            if a != b and b not in cond_edges[a]:
                cond_edges[a].add(b)
                indegree[b] += 1

    key = [min(members) for members in sccs]
    ready = [(key[i], i) for i in range(len(sccs)) if indegree[i] == 0]
    heapq.heapify(ready)
    ordered: List[int] = []
    while ready:
        _, scc_id = heapq.heappop(ready)
        ordered.append(scc_id)
        for succ in cond_edges[scc_id]:
            indegree[succ] -= 1
            if indegree[succ] == 0:
                heapq.heappush(ready, (key[succ], succ))
    assert len(ordered) == len(sccs), "condensation must be acyclic"

    groups: List[ScheduleGroup] = []
    for scc_id in ordered:
        members = [units[i] for i in sccs[scc_id]]
        cyclic = len(members) > 1 or _self_cyclic(members[0])
        groups.append(ScheduleGroup(units=members, cyclic=cyclic))
    return Schedule(groups=groups, opaque=opaque, units=units)
