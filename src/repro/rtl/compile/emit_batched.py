"""Vectorized N-lane batched emitter: one compiled kernel, many lanes.

The scalar compiled backend (:mod:`.emit`) dissolves a design into one
straight-line Python function.  This module goes one step further and emits
a *batched* variant of the same program: every signal becomes a row of an
``(n_signals, n_lanes)`` int64 matrix, every statement is vectorized over
the lane axis with numpy, and N independent copies of the design advance in
lockstep through a single settle/cycle pair.  Sweeps over parameter points
and verification seed matrices then pay the Python interpreter once per
statement instead of once per statement per point.

Vectorization rules (mirroring the scalar semantics exactly):

* combinational writes fuse value+next updates, masked per lane with
  ``np.where``; ``if``/``elif`` chains are if-converted into lane masks and
  early ``return`` statements become a live-lane mask;
* cyclic groups iterate until *all* lanes converge (a lane that already
  settled simply stops producing changes);
* small pure helper methods (budget checks, accounting) are inlined with
  their returns captured into masked merge temporaries;
* Python-side integer attributes written by processes (e.g. push counters)
  are promoted to lane rows; Python lists read by index become padded
  gather matrices and ``list.append`` is replayed per masked lane, on the
  live per-lane list objects;
* any process the vectorizer cannot prove out falls back to a guarded
  per-lane scalar call (scatter the read columns onto the lane's real
  signals, run the process closure, gather the writes back) — opaque
  processes additionally sync *everything*, so no design is excluded.

Lane compatibility is verification-by-regeneration: the emitter is run once
per lane and lanes may share a batch only when the generated sources are
byte-identical (slot names are structural indices, so identical source
means identical wiring, constants and schedule).

Two deliberate emit-time faults (``batched.cross_lane_mask_reuse`` and
``batched.stale_lane_commit``) hide behind :mod:`repro.verify.mutate`
switches so the differential oracle can prove it notices cross-lane
contamination.
"""

from __future__ import annotations

import ast
import hashlib
import inspect
import re
from dataclasses import dataclass, field, replace
from typing import Any, Callable, Dict, List, Optional, Sequence, Set, Tuple

from ..component import Memory
from ..signal import Signal
from .analyze import (
    _FAIL,
    AnyOf,
    ProcAnalysis,
    _Analyzer,
    _closure_env,
    _is_fsm_like,
    _parse_proc,
    analyze_proc,
)
from .schedule import Schedule, Unit, build_schedule

#: Emit-time fault switches implemented by this emitter.
MUTATION_MASK_REUSE = "batched.cross_lane_mask_reuse"
MUTATION_STALE_COMMIT = "batched.stale_lane_commit"

_MAX_INLINE_DEPTH = 8

#: Expression value categories.
_CONST = "const"   # compile-time Python value
_BOOL = "bool"     # numpy bool row (or scalar bool broadcast)
_VEC = "vec"       # numpy int64 row (or scalar int broadcast)


class VectorizeError(Exception):
    """A process cannot be vectorized; it falls back to a per-lane call."""


class _Demote(Exception):
    """A statement-split process failed vectorization: rebuild the schedule
    with that process demoted to a whole-process call unit and re-emit."""

    def __init__(self, proc_index: int, reason: str) -> None:
        super().__init__(reason)
        self.proc_index = proc_index
        self.reason = reason


@dataclass
class _Ex:
    """One transpiled expression: a fully parenthesized numpy fragment."""

    code: str
    kind: str
    const: Any = None
    #: Upper bound on the value when known (enables width-mask elision).
    sigmask: Optional[int] = None


@dataclass
class LaneCallPlan:
    """Runtime recipe for running one process per lane, un-vectorized."""

    proc: Callable[[], None]
    #: Signal slots to scatter before / examine after the call (sound
    #: read∪write set).  ``None`` means *all* slots (opaque process).
    sig_slots: Optional[List[int]]
    #: Memory slots to scatter/gather.  ``None`` means all (opaque).
    mem_slots: Optional[List[int]]
    seq: bool
    opaque: bool
    reason: str
    #: Position of ``proc`` in the design's comb/seq process list, so a
    #: rebound sibling program can substitute its own lane's process.
    proc_index: int = -1


@dataclass
class BatchReport:
    """What the batched emitter did with one design."""

    n_comb_procs: int
    n_vectorized_comb: int
    n_lane_call_comb: int
    n_opaque_procs: int
    n_seq_procs: int
    n_vectorized_seq: int
    n_lane_call_seq: int
    n_cyclic_groups: int
    guarded: bool
    n_attr_rows: int
    n_gather_lists: int
    n_append_lists: int
    fallback_reasons: List[str] = field(default_factory=list)
    mutations: Tuple[str, ...] = ()


@dataclass
class BatchedProgram:
    """Everything one lane contributes to a batched simulation.

    The generated ``source`` is structural (slot indices only); two designs
    may share a batch exactly when their programs' :attr:`signature` match.
    The aux registries hold this lane's live Python objects in the order
    the source expects them.
    """

    source: str
    report: BatchReport
    signals: List[Signal]
    memories: List[Memory]
    max_settle: int
    #: (owner, attr) pairs promoted to lane rows, in ``_pa{j}`` order.
    attr_slots: List[Tuple[Any, str]] = field(default_factory=list)
    #: Python lists read by vectorized gathers, in ``_pl{j}`` order.
    gather_lists: List[list] = field(default_factory=list)
    #: Python lists appended to by vectorized code, in ``_ls{j}`` order.
    append_lists: List[list] = field(default_factory=list)
    #: Per-lane fallback calls, in ``_lc{q}`` order (comb, incl. opaque).
    comb_calls: List[LaneCallPlan] = field(default_factory=list)
    #: Per-lane fallback calls, in ``_lq{q}`` order (sequential).
    seq_calls: List[LaneCallPlan] = field(default_factory=list)
    #: This lane's processes in design order (rebinding substitutes a
    #: sibling lane's process at the same index).
    comb_procs: List[Callable] = field(default_factory=list)
    seq_procs: List[Callable] = field(default_factory=list)
    #: Emission inputs recorded for :func:`rebind_batched_program`:
    #: ``(owner, attr, value)`` triples whose values were baked into the
    #: source as constants, ``(container, fingerprint)`` pairs for
    #: containers whose *elements* were read at compile time, and
    #: ``(owner, method, args, result)`` records of methods that ran at
    #: compile time (FSM encoders) — a sibling design must match these
    #: exactly to reuse the source without re-emitting, and the reference
    #: design must still match them for a cached program to stay valid.
    bake_attrs: List[Tuple[Any, str, Any]] = field(default_factory=list)
    bake_containers: List[Tuple[Any, Any]] = field(default_factory=list)
    bake_calls: List[Tuple[Any, str, Tuple, Any]] = \
        field(default_factory=list)

    @property
    def signature(self) -> str:
        """Lane-compatibility key: identical signature == identical kernel."""
        payload = "\0".join([
            self.source,
            str(len(self.signals)),
            str(len(self.memories)),
            ",".join(str(m.depth) for m in self.memories),
            ",".join(str(m._mask) for m in self.memories),
        ])
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()


# -- compile-time helpers -----------------------------------------------------------

_BIN_OPS: Dict[type, Tuple[str, Callable[[Any, Any], Any]]] = {
    ast.Add: ("+", lambda a, b: a + b),
    ast.Sub: ("-", lambda a, b: a - b),
    ast.Mult: ("*", lambda a, b: a * b),
    ast.FloorDiv: ("//", lambda a, b: a // b),
    ast.Mod: ("%", lambda a, b: a % b),
    ast.LShift: ("<<", lambda a, b: a << b),
    ast.RShift: (">>", lambda a, b: a >> b),
    ast.BitOr: ("|", lambda a, b: a | b),
    ast.BitAnd: ("&", lambda a, b: a & b),
    ast.BitXor: ("^", lambda a, b: a ^ b),
}

_CMP_OPS: Dict[type, Tuple[str, Callable[[Any, Any], Any]]] = {
    ast.Eq: ("==", lambda a, b: a == b),
    ast.NotEq: ("!=", lambda a, b: a != b),
    ast.Lt: ("<", lambda a, b: a < b),
    ast.LtE: ("<=", lambda a, b: a <= b),
    ast.Gt: (">", lambda a, b: a > b),
    ast.GtE: (">=", lambda a, b: a >= b),
}


def _const_ex(value: Any) -> _Ex:
    mask = None
    if isinstance(value, bool):
        mask = int(value)
    elif isinstance(value, int):
        mask = value if value >= 0 else None
    return _Ex(code=repr(value), kind=_CONST, const=value, sigmask=mask)


def _pow2_mask(n: Any) -> Optional[int]:
    """``n - 1`` when ``n`` is a positive power of two, else None.

    ``x % n == x & (n - 1)`` holds for *any* int64 ``x`` (including
    negatives, by two's complement) when ``n`` is a power of two, and the
    ``&`` ufunc is several times cheaper than ``%`` on small lane arrays.
    """
    if isinstance(n, int) and n > 0 and (n & (n - 1)) == 0:
        return n - 1
    return None


def _active_batched_mutations() -> Tuple[str, ...]:
    """The currently enabled ``batched.*`` fault switches (emit-time)."""
    try:
        from ...verify import mutate
    except ImportError:  # pragma: no cover - verify not importable
        return ()
    return tuple(sorted(name for name in mutate.active()
                        if name.startswith("batched.")))


#: Sentinel recorded when a compile-time method call raised (the emission
#: demoted that path; a sibling lane must raise identically).
CALL_RAISED = object()

#: Scalar leaves a container fingerprint captures by value.
_FP_SCALARS = (bool, int, float, complex, str, bytes, type(None))


def container_fingerprint(obj: Any) -> Any:
    """Order- and value-faithful snapshot of a container's scalar shape.

    Comparing an object's fingerprint now against one taken at emission
    time detects any mutation that could invalidate baked constants
    (element values, lengths, key sets).  Non-scalar elements snapshot as
    an opaque marker: every value the emitter *read* out of them was
    recorded through its own bake entry, so their drift is checked there.
    """
    if isinstance(obj, (list, tuple)):
        return (type(obj).__name__, tuple(
            (type(v).__name__, v) if isinstance(v, _FP_SCALARS)
            else ("<obj>",) for v in obj))
    if isinstance(obj, dict):
        return ("dict", tuple(
            ((type(k).__name__, k) if isinstance(k, _FP_SCALARS)
             else ("<obj>",),
             (type(v).__name__, v) if isinstance(v, _FP_SCALARS)
             else ("<obj>",)) for k, v in obj.items()))
    return None


class _BakeTrace:
    """Every lane-specific value the emitter folded into the source.

    Identical code objects do not guarantee identical emission: closure and
    attribute *values* become constants, container elements get baked by
    constant subscripts and ``in`` folds, and FSM encoders execute at
    compile time.  The trace records exactly those inputs so
    :func:`~repro.rtl.compile.rebind.rebind_batched_program` can prove a
    sibling design would emit byte-identical source without re-emitting —
    and so a *cached* reference can prove its own design has not mutated
    since emission.
    """

    def __init__(self) -> None:
        #: (id(owner), attr) -> (owner, attr, baked scalar value)
        self.attrs: Dict[Tuple[int, str], Tuple[Any, str, Any]] = {}
        #: id -> container whose elements were read at compile time
        self.containers: Dict[int, Any] = {}
        #: (id(owner), method, args) -> (owner, method, args, result) for
        #: methods the emitter executed (FSM ``encode``); ``result`` is
        #: :data:`CALL_RAISED` when the call raised.
        self.calls: Dict[Tuple[int, str, Tuple], Tuple] = {}

    def record_container(self, obj: Any) -> None:
        if isinstance(obj, (list, tuple, dict)):
            self.containers[id(obj)] = obj

    def record_call(self, owner: Any, method: str, args: Tuple,
                    result: Any) -> None:
        self.calls[(id(owner), method, args)] = (owner, method, args,
                                                 result)


class _Resolver(_Analyzer):
    """The analyzer's compile-time resolution, reused standalone.

    The batched transpiler maintains its own locals map on this object as
    it walks statements, so ``resolve`` sees the same bindings the analyzer
    would have seen at that program point.  While a :class:`_BakeTrace` is
    installed (class attribute, set for the duration of one emission),
    every attribute scalar and container-element read that could reach the
    generated source is recorded on it.
    """

    trace: Optional[_BakeTrace] = None

    def __init__(self, proc: Callable) -> None:
        super().__init__(ProcAnalysis(proc=proc), _closure_env(proc))

    def _resolve_attr(self, base: Any, attr: str) -> Any:
        value = super()._resolve_attr(base, attr)
        trace = _Resolver.trace
        if trace is not None and base is not _FAIL \
                and not isinstance(base, AnyOf) \
                and isinstance(value, (bool, int, float, str)):
            trace.attrs[(id(base), attr)] = (base, attr, value)
        return value

    def _resolve_subscript(self, base: Any, index: Any) -> Any:
        trace = _Resolver.trace
        if trace is not None:
            # Recorded even when resolution fails: an out-of-range constant
            # subscript demotes the process, and a sibling lane must have
            # failed identically for the shared source to be sound.
            trace.record_container(base)
        return super()._resolve_subscript(base, index)


@dataclass
class _Frame:
    """Per-function emission context (the process or one inlined helper)."""

    res: _Resolver
    prefix: str
    #: Kind bindings for runtime locals: name -> _Ex (var reference/const).
    local_kinds: Dict[str, _Ex] = field(default_factory=dict)
    #: Live-lane mask variable once a conditional ``return`` ran, else None.
    live: Optional[str] = None
    #: True once an unconditional ``return`` killed the rest of the body.
    terminated: bool = False
    #: Return capture variable for value-returning inlined helpers.
    ret_var: Optional[str] = None
    #: Deferred constant returns: (mask, const) merges, applied in order.
    #: Constant codes are safe to defer to the end of the inlined body
    #: (they reference no temporaries), where common shapes collapse to a
    #: single select — or to the branch mask itself — instead of a zeros
    #: init plus one masked merge per ``return``.
    ret_pending: List[Tuple[Optional[str], int]] = field(default_factory=list)
    #: True once ``ret_var`` was emitted (a non-constant return forced it).
    ret_materialized: bool = False
    #: Flips when the frame emitted a signal/memory/attr/list side effect.
    impure: bool = False


class _Vectorizer:
    """Transpile one process (or statement unit) into lane-vectorized code."""

    def __init__(self, emitter: "_BatchEmitter", proc: Callable,
                 mode: str, guarded: bool,
                 write_slots: Optional[Set[int]] = None) -> None:
        self.em = emitter
        self.proc = proc
        self.mode = mode            # "comb" | "seq"
        self.guarded = guarded      # guarded comb writes (convergence loop)
        #: Signal slots this process may write (None = unknown: snapshot
        #: every bound row view).  Used to elide local-binding copies.
        self.write_slots = write_slots
        self.out: List[str] = []
        self.indent = ""
        self.frames: List[_Frame] = []
        #: mask-var -> the mask-var it was emitted as the negation of.
        self.complements: Dict[str, str] = {}

    # -- plumbing -------------------------------------------------------------

    def fail(self, reason: str) -> "VectorizeError":
        name = getattr(self.proc, "__qualname__", str(self.proc))
        return VectorizeError(f"{name}: {reason}")

    def line(self, text: str) -> None:
        self.out.append(self.indent + text)

    def temp(self) -> str:
        return self.em.temp()

    @property
    def frame(self) -> _Frame:
        return self.frames[-1]

    def push_frame(self, res: _Resolver, ret_var: Optional[str]) -> _Frame:
        frame = _Frame(res=res, prefix=self.em.prefix(), ret_var=ret_var)
        self.frames.append(frame)
        return frame

    def eff(self, mask: Optional[str]) -> Optional[str]:
        """Combine the branch mask with the frame's live-lane mask."""
        live = self.frame.live
        if mask is None:
            return live
        if live is None:
            return mask
        return f"({mask} & {live})"

    # -- statement emission ----------------------------------------------------

    def run_proc(self, frame: _Frame, body: List[ast.stmt],
                 mask: Optional[str] = None) -> None:
        self.frames.append(frame)
        try:
            self.emit_body(body, mask)
        finally:
            self.frames.pop()

    def emit_body(self, body: Sequence[ast.stmt], mask: Optional[str]) -> None:
        for stmt in body:
            if self.frame.terminated:
                break
            self.emit_stmt(stmt, mask)

    def emit_stmt(self, stmt: ast.stmt, mask: Optional[str]) -> None:
        if isinstance(stmt, ast.Assign):
            if len(stmt.targets) != 1:
                raise self.fail("multiple assignment targets")
            self.emit_assign(stmt.targets[0], stmt.value, mask)
        elif isinstance(stmt, ast.AugAssign):
            if type(stmt.op) not in _BIN_OPS:
                raise self.fail(f"augmented {type(stmt.op).__name__}")
            load = self.aug_load(stmt.target)
            value = ast.BinOp(left=load, op=stmt.op, right=stmt.value)
            ast.copy_location(value, stmt)
            ast.fix_missing_locations(value)
            self.emit_assign(stmt.target, value, mask)
        elif isinstance(stmt, ast.AnnAssign):
            if stmt.value is None:
                return
            self.emit_assign(stmt.target, stmt.value, mask)
        elif isinstance(stmt, ast.Expr):
            self.emit_expr_stmt(stmt.value, mask)
        elif isinstance(stmt, ast.If):
            self.emit_if(stmt, mask)
        elif isinstance(stmt, ast.Return):
            self.emit_return(stmt, mask)
        elif isinstance(stmt, ast.Pass):
            return
        else:
            raise self.fail(f"unsupported statement {type(stmt).__name__}")

    def aug_load(self, target: ast.expr) -> ast.expr:
        """Build the load counterpart of an augmented-assignment target."""
        load = ast.copy_location(
            ast.parse(ast.unparse(target), mode="eval").body, target)
        ast.fix_missing_locations(load)
        return load

    def emit_if(self, stmt: ast.If, mask: Optional[str]) -> None:
        test = self.expr(stmt.test, truth=True)
        if test.kind == _CONST:
            branch = stmt.body if test.const else stmt.orelse
            self.emit_body(branch, mask)
            return
        # The condition must be captured before the body runs: guarded comb
        # writes may update rows the condition read.
        cvar = self.temp()
        self.line(f"{cvar} = {self.as_bool(test)}")
        if mask is None:
            mvar = cvar
        else:
            mvar = self.temp()
            self.line(f"{mvar} = ({mask} & {cvar})")
        self.em.maybe_mutate_mask(self, mvar)
        self.emit_body(stmt.body, mvar)
        if stmt.orelse:
            evar = self.temp()
            if mask is None:
                self.line(f"{evar} = ~{cvar}")
                self.complements[evar] = cvar
            else:
                self.line(f"{evar} = ({mask} & ~{cvar})")
            self.emit_body(stmt.orelse, evar)

    def emit_return(self, stmt: ast.Return, mask: Optional[str]) -> None:
        frame = self.frame
        value_ex: Optional[_Ex] = None
        if stmt.value is not None:
            value_ex = self.expr(stmt.value)
            if value_ex.kind == _CONST and value_ex.const is None:
                value_ex = None
        if value_ex is not None and frame.ret_var is None:
            raise self.fail("process-level return with a value")
        em = self.eff(mask)
        if frame.ret_var is not None and value_ex is not None:
            if value_ex.kind == _CONST and not frame.ret_materialized:
                frame.ret_pending.append((em, int(value_ex.const)))
            else:
                self.materialize_ret(frame)
                vec = self.as_vec(value_ex)
                if em is None:
                    self.line(f"{frame.ret_var} = "
                              f"{self.snapshot_code(value_ex)}")
                else:
                    self.line(f"{frame.ret_var} = _np.where({em}, {vec}, "
                              f"{frame.ret_var})")
        if mask is None:
            # A top-level return: every lane still live returns here, so the
            # rest of the function is dead code for all lanes.
            frame.terminated = True
            return
        lv = self.temp()
        if frame.live is None:
            self.line(f"{lv} = ~({em})")
            self.complements[lv] = em
        else:
            self.line(f"{lv} = ({frame.live} & ~({em}))")
        frame.live = lv

    def materialize_ret(self, frame: _Frame) -> None:
        """Emit the return-capture array plus any deferred constant merges."""
        if frame.ret_materialized:
            return
        frame.ret_materialized = True
        self.line(f"{frame.ret_var} = _np.zeros(_NL, dtype=_np.int64)")
        for em, const in frame.ret_pending:
            if em is None:
                self.line(f"{frame.ret_var}[...] = {const}")
            else:
                self.line(f"{frame.ret_var} = _np.where({em}, {const}, "
                          f"{frame.ret_var})")
        frame.ret_pending = []

    def finalize_ret(self, frame: _Frame) -> _Ex:
        """Collapse an inlined helper's deferred returns into one value."""
        if frame.ret_materialized:
            return _Ex(frame.ret_var, _VEC)
        pending = frame.ret_pending
        if not pending:
            # No lane ever returned a value; scalar code would have
            # produced None — the zeros default stands in, as before.
            return _const_ex(0)
        if len(pending) == 1:
            em, const = pending[0]
            if em is None:
                return _const_ex(const)
            if const == 1:
                return _Ex(em, _BOOL, sigmask=1)
            if const == 0:
                return _const_ex(0)
            self.line(f"{frame.ret_var} = _np.where({em}, {const}, 0)")
            bound = const if const >= 0 else None
            return _Ex(frame.ret_var, _VEC, sigmask=bound)
        if len(pending) == 2:
            (m1, c1), (m2, c2) = pending
            if m1 is not None and self.complements.get(m2) == m1:
                if (c1, c2) == (1, 0):
                    return _Ex(m1, _BOOL, sigmask=1)
                if (c1, c2) == (0, 1):
                    return _Ex(f"(~{m1})", _BOOL, sigmask=1)
                bound = max(c1, c2) if c1 >= 0 and c2 >= 0 else None
                self.line(f"{frame.ret_var} = _np.where({m1}, {c1}, {c2})")
                return _Ex(frame.ret_var, _VEC, sigmask=bound)
        self.materialize_ret(frame)
        return _Ex(frame.ret_var, _VEC)

    # -- assignments -----------------------------------------------------------

    def emit_assign(self, target: ast.expr, value: ast.expr,
                    mask: Optional[str]) -> None:
        if isinstance(target, ast.Name):
            self.assign_local(target.id, value, mask)
            return
        if isinstance(target, ast.Attribute):
            if target.attr == "next":
                base = self.frame.res.resolve(target.value)
                if isinstance(base, Signal):
                    self.write_signal(base, value, mask)
                    return
                raise self.fail("write target is not a plain signal")
            self.write_attr(target, value, mask)
            return
        if isinstance(target, ast.Subscript):
            base = self.frame.res.resolve(target.value)
            if isinstance(base, Memory):
                self.write_memory(base, target.slice, value, mask)
                return
            raise self.fail("subscript store target is not a memory")
        raise self.fail(f"unsupported target {type(target).__name__}")

    def assign_local(self, name: str, value_node: ast.expr,
                     mask: Optional[str]) -> None:
        frame = self.frame
        resolved = frame.res.resolve(value_node)
        if resolved is not _FAIL and not isinstance(resolved, AnyOf) \
                and not isinstance(resolved, (int, bool)) \
                and resolved is not None:
            # Aliasing a compile-time object (signal, memory, list, fsm...):
            # record the binding, emit nothing.
            if mask is not None:
                raise self.fail(f"conditional alias binding of {name!r}")
            frame.res.locals[name] = resolved
            frame.local_kinds.pop(name, None)
            return
        ex = self.expr(value_node)
        previous = frame.local_kinds.get(name)
        if ex.kind == _CONST and mask is None:
            frame.res.locals[name] = ex.const
            frame.local_kinds[name] = ex
            return
        var = previous.code if previous is not None \
            and previous.kind != _CONST else f"_L{frame.prefix}_{name}"
        frame.res.locals[name] = _FAIL
        if mask is None:
            # A bare name on the RHS is a live array (a signal row view, an
            # attribute row, another local): binding must SNAPSHOT it, or a
            # later in-place row update would leak through the alias —
            # scalar code copies an int here.
            self.line(f"{var} = {self.snapshot_code(ex)}")
            kind = ex.kind if ex.kind != _CONST else _VEC
            frame.local_kinds[name] = _Ex(var, kind, sigmask=ex.sigmask)
            return
        vec = self.as_vec(ex)
        if previous is None:
            # Scalar semantics: lanes outside the mask never read this
            # local afterwards (they would hit UnboundLocalError), so any
            # lane value is acceptable there.
            self.line(f"{var} = _np.where({mask}, {vec}, 0)")
        elif previous.kind == _CONST:
            self.line(f"{var} = _np.where({mask}, {vec}, "
                      f"{repr(int(previous.const))})")
        else:
            self.line(f"{var} = _np.where({mask}, {vec}, {var})")
        prev_mask = previous.sigmask if previous is not None else 0
        merged = None
        if ex.sigmask is not None and prev_mask is not None:
            merged = max(ex.sigmask, prev_mask)
        frame.local_kinds[name] = _Ex(var, _VEC, sigmask=merged)

    def write_signal(self, sig: Signal, value_node: ast.expr,
                     mask: Optional[str]) -> None:
        self.frame.impure = True
        slot = self.em.slot_of(sig, self)
        ex = self.expr(value_node)
        em = self.eff(mask)
        if ex.kind == _CONST:
            code = repr(int(ex.const) & sig._mask)
        elif ex.sigmask is not None and ex.sigmask <= sig._mask:
            code = ex.code
        else:
            code = f"({ex.code} & {sig._mask})"
        if self.mode == "seq":
            nrow = self.em.nrow(slot)
            if em is None:
                self.line(f"{nrow}[...] = {code}")
            else:
                # In-place masked store: one ufunc call instead of a full
                # where-select plus a slice assignment.  Branch masks are
                # always numpy bool arrays, which ``where=`` requires.
                self.line(f"_np.copyto({nrow}, {code}, where={em})")
            return
        # Combinational writes keep only the value row hot; the next rows
        # are resynchronized wholesale by one copyto at the end of settle
        # (unless some comb process *reads* ``.next``, which forces the
        # classic per-write mirroring).
        mirror = self.em.mirror_next
        vrow = self.em.vrow(slot)
        nrow = self.em.nrow(slot) if mirror else None
        if self.guarded:
            t = self.temp()
            if em is None:
                self.line(f"{t} = {code}")
            else:
                self.line(f"{t} = _np.where({em}, {code}, {vrow})")
            self.line(f"if ({vrow} != {t}).any():")
            self.line(f"    {vrow}[...] = {t}")
            if mirror:
                self.line(f"    {nrow}[...] = {t}")
            self.line("    _chg = True")
            return
        if em is None:
            if mirror:
                self.line(f"{vrow}[...] = {nrow}[...] = {code}")
            else:
                self.line(f"{vrow}[...] = {code}")
        elif mirror:
            t = self.temp()
            self.line(f"{t} = _np.where({em}, {code}, {vrow})")
            self.line(f"{vrow}[...] = {nrow}[...] = {t}")
        else:
            self.line(f"_np.copyto({vrow}, {code}, where={em})")

    def write_memory(self, mem: Memory, index_node: ast.expr,
                     value_node: ast.expr, mask: Optional[str]) -> None:
        if isinstance(index_node, ast.Slice):
            raise self.fail("memory slice store")
        self.frame.impure = True
        name = self.em.mem_of(mem, self)
        idx = self.expr(index_node)
        ex = self.expr(value_node)
        em = self.eff(mask)
        if ex.kind == _CONST:
            code = repr(int(ex.const) & mem._mask)
        elif ex.sigmask is not None and ex.sigmask <= mem._mask:
            code = ex.code
        else:
            code = f"({ex.code} & {mem._mask})"
        if idx.kind == _CONST:
            cell = f"{name}[{int(idx.const) % mem.depth}]"
        else:
            ix = self.temp()
            self.line(f"{ix} = {self.mem_index(idx, mem.depth)}")
            cell = f"{name}[{ix}, _LANES]"
        if em is None:
            self.line(f"{cell} = {code}")
        else:
            self.line(f"{cell} = _np.where({em}, {code}, {cell})")

    def write_attr(self, target: ast.Attribute, value_node: ast.expr,
                   mask: Optional[str]) -> None:
        owner = self.frame.res.resolve(target.value)
        if owner is _FAIL or isinstance(owner, AnyOf):
            raise self.fail(f"cannot resolve attribute owner for "
                            f"{target.attr!r}")
        row = self.em.attr_row(owner, target.attr, self, register=True)
        self.frame.impure = True
        ex = self.expr(value_node)
        em = self.eff(mask)
        code = repr(int(ex.const)) if ex.kind == _CONST else self.as_vec(ex)
        if em is None:
            self.line(f"{row}[...] = {code}")
        else:
            self.line(f"_np.copyto({row}, {code}, where={em})")

    # -- expression statements (calls, anchors) --------------------------------

    def emit_expr_stmt(self, node: ast.expr, mask: Optional[str]) -> None:
        if isinstance(node, ast.Constant):
            return  # docstring
        if isinstance(node, (ast.Name, ast.Attribute)):
            return  # bare read: a sensitivity anchor; batched settles run all
        if isinstance(node, ast.Call):
            func_node = node.func
            if isinstance(func_node, ast.Attribute) \
                    and func_node.attr == "append" and len(node.args) == 1 \
                    and not node.keywords:
                base = self.frame.res.resolve(func_node.value)
                if isinstance(base, list):
                    self.emit_append(base, node.args[0], mask)
                    return
            self.inline_call(node, mask, want_value=False)
            return
        raise self.fail(f"unsupported expression statement "
                        f"{type(node).__name__}")

    def emit_append(self, target: list, value_node: ast.expr,
                    mask: Optional[str]) -> None:
        name = self.em.append_list(target, self)
        self.frame.impure = True
        ex = self.expr(value_node)
        em = self.eff(mask)
        if ex.kind == _CONST:
            loop = f"for _j in range(_NL):" if em is None else \
                f"for _j in _np.nonzero({em})[0]:"
            self.line(loop)
            self.line(f"    {name}[_j].append({repr(int(ex.const))})")
            return
        t = self.temp()
        self.line(f"{t} = {self.as_vec(ex)}")
        loop = "for _j in range(_NL):" if em is None else \
            f"for _j in _np.nonzero({em})[0]:"
        self.line(loop)
        self.line(f"    {name}[_j].append(int({t}[_j]))")

    # -- expressions -----------------------------------------------------------

    #: Expressions that are live views into batch storage rather than fresh
    #: arrays: a bare row/local name, or a constant-index memory row.
    _VIEW_RE = re.compile(r"_\w+(\[\d+\])?")
    _VROW_RE = re.compile(r"_v(\d+)")

    def snapshot_code(self, ex: _Ex) -> str:
        """The expression's code, copied if it would alias live storage.

        Value-row bindings skip the copy when the row provably stays
        untouched for the local's lifetime (one contiguous process block):
        vectorized sequential processes never write value rows, and a comb
        process only writes its own write set.  Everything else — next
        rows, attribute rows, memory rows, other locals — still snapshots.
        """
        if ex.kind == _CONST or not self._VIEW_RE.fullmatch(ex.code):
            return ex.code
        m = self._VROW_RE.fullmatch(ex.code)
        if m is not None:
            if self.mode == "seq":
                return ex.code
            if self.write_slots is not None \
                    and int(m.group(1)) not in self.write_slots:
                return ex.code
        return f"{ex.code}.copy()"

    def as_vec(self, ex: _Ex) -> str:
        if ex.kind == _CONST:
            return repr(int(ex.const))
        return ex.code

    def mem_index(self, idx: _Ex, depth: int) -> str:
        """A dynamic memory index wrapped to ``depth``, cheapest form first."""
        vec = self.as_vec(idx)
        if idx.sigmask is not None and idx.sigmask < depth:
            return vec
        pmask = _pow2_mask(depth)
        if pmask is not None:
            return f"({vec} & {pmask})"
        return f"(({vec}) % {depth})"

    def as_bool(self, ex: _Ex) -> str:
        if ex.kind == _CONST:
            return repr(bool(ex.const))
        if ex.kind == _BOOL:
            return ex.code
        return f"({ex.code} != 0)"

    def expr(self, node: ast.expr, truth: bool = False) -> _Ex:
        if isinstance(node, ast.Constant):
            if isinstance(node.value, (bool, int)) or node.value is None:
                return _const_ex(node.value)
            if isinstance(node.value, str):
                return _Ex(repr(node.value), _CONST, const=node.value)
            raise self.fail(f"unsupported constant {node.value!r}")
        if isinstance(node, ast.Name):
            return self.expr_name(node, truth)
        if isinstance(node, ast.Attribute):
            return self.expr_attribute(node, truth)
        if isinstance(node, ast.Subscript):
            return self.expr_subscript(node)
        if isinstance(node, ast.Call):
            return self.expr_call(node, truth)
        if isinstance(node, ast.BoolOp):
            return self.expr_boolop(node, truth)
        if isinstance(node, ast.UnaryOp):
            return self.expr_unary(node, truth)
        if isinstance(node, ast.BinOp):
            return self.expr_binop(node)
        if isinstance(node, ast.Compare):
            return self.expr_compare(node)
        if isinstance(node, ast.IfExp):
            return self.expr_ifexp(node, truth)
        if isinstance(node, ast.Tuple):
            raise self.fail("tuple expression")
        raise self.fail(f"unsupported expression {type(node).__name__}")

    def expr_name(self, node: ast.Name, truth: bool) -> _Ex:
        frame = self.frame
        if node.id in frame.local_kinds:
            return frame.local_kinds[node.id]
        resolved = frame.res.resolve(node)
        return self.resolved_value(node, resolved, truth)

    def expr_attribute(self, node: ast.Attribute, truth: bool) -> _Ex:
        frame = self.frame
        if node.attr in ("value", "next"):
            base = frame.res.resolve(node.value)
            if isinstance(base, Signal):
                slot = self.em.slot_of(base, self)
                if node.attr == "next" and self.mode == "seq":
                    row = self.em.nrow(slot)
                elif node.attr == "next":
                    row = self.em.nrow(slot)
                else:
                    row = self.em.vrow(slot)
                return _Ex(row, _VEC, sigmask=base._mask)
            if isinstance(base, AnyOf):
                raise self.fail("signal read through ambiguous alias")
        if node.attr == "bits":
            raise self.fail("Bits view read")
        owner = frame.res.resolve(node.value)
        if owner is not _FAIL and not isinstance(owner, AnyOf):
            key = (id(owner), node.attr)
            row = self.em.attr_row_if_registered(key)
            if row is not None:
                return _Ex(row, _VEC)
            if key in self.em.bad_attrs:
                raise self.fail(f"non-integer Python attribute "
                                f"{node.attr!r}")
        resolved = frame.res.resolve(node)
        return self.resolved_value(node, resolved, truth)

    def resolved_value(self, node: ast.expr, resolved: Any,
                       truth: bool) -> _Ex:
        if resolved is _FAIL or isinstance(resolved, AnyOf):
            label = getattr(node, "id", None) or getattr(node, "attr", "?")
            raise self.fail(f"cannot resolve {label!r}")
        if isinstance(resolved, (bool, int)) or resolved is None:
            return _const_ex(resolved)
        if isinstance(resolved, str):
            return _Ex(repr(resolved), _CONST, const=resolved)
        if isinstance(resolved, Signal):
            if truth:
                slot = self.em.slot_of(resolved, self)
                return _Ex(f"({self.em.vrow(slot)} != 0)", _BOOL, sigmask=1)
            raise self.fail("bare signal used as a value")
        raise self.fail(f"unsupported compile-time value "
                        f"{type(resolved).__name__}")

    def expr_subscript(self, node: ast.Subscript) -> _Ex:
        if isinstance(node.slice, ast.Slice):
            raise self.fail("slice read")
        base = self.frame.res.resolve(node.value)
        if isinstance(base, Memory):
            name = self.em.mem_of(base, self)
            idx = self.expr(node.slice)
            if idx.kind == _CONST:
                return _Ex(f"{name}[{int(idx.const) % base.depth}]", _VEC,
                           sigmask=base._mask)
            return _Ex(f"{name}[{self.mem_index(idx, base.depth)}, _LANES]",
                       _VEC, sigmask=base._mask)
        if isinstance(base, (list, tuple)):
            idx = self.expr(node.slice)
            if idx.kind == _CONST:
                if _Resolver.trace is not None:
                    _Resolver.trace.record_container(base)
                try:
                    element = base[int(idx.const)]
                except (IndexError, TypeError):
                    raise self.fail("constant subscript out of range")
                if isinstance(element, (bool, int)):
                    return _const_ex(element)
                raise self.fail("constant subscript of non-integer element")
            if isinstance(base, tuple):
                raise self.fail("dynamic subscript of a tuple")
            mat, length = self.em.gather_list(base, self)
            # np.clip dispatches through getlimits and costs microseconds
            # per call on lane-sized arrays; min/max ufuncs do the same
            # clamp directly (the lower clamp is dead for masked indices).
            vec = self.as_vec(idx)
            if idx.sigmask is None:
                vec = f"_np.maximum({vec}, 0)"
            return _Ex(f"{mat}[0][_LANES, _np.minimum({vec}, "
                       f"{length} - 1)]", _VEC)
        raise self.fail("unsupported subscript base")

    def expr_call(self, node: ast.Call, truth: bool) -> _Ex:
        frame = self.frame
        func_node = node.func
        # fsm.is_in("NAME") -> state register comparison.
        if isinstance(func_node, ast.Attribute) and func_node.attr == "is_in" \
                and len(node.args) == 1 and not node.keywords:
            base = frame.res.resolve(func_node.value)
            state_name = frame.res.resolve(node.args[0])
            if base is not _FAIL and not isinstance(base, AnyOf) \
                    and _is_fsm_like(base) and isinstance(state_name, str):
                try:
                    code = base.encode(state_name)
                except Exception:
                    if _Resolver.trace is not None:
                        # The failed encode demoted this path; a sibling
                        # lane's encoder must fail it identically.
                        _Resolver.trace.record_call(
                            base, "encode", (state_name,), CALL_RAISED)
                    raise self.fail(f"unknown FSM state {state_name!r}")
                if _Resolver.trace is not None:
                    # encode() executed at compile time and its result is
                    # about to become a source constant.
                    _Resolver.trace.record_call(
                        base, "encode", (state_name,), code)
                slot = self.em.slot_of(base.state, self)
                return _Ex(f"({self.em.vrow(slot)} == {code})", _BOOL,
                           sigmask=1)
        func = frame.res.resolve(func_node)
        if func is len and len(node.args) == 1 and not node.keywords:
            target = frame.res.resolve(node.args[0])
            if isinstance(target, (tuple, str)):
                if _Resolver.trace is not None:
                    _Resolver.trace.record_container(target)
                return _const_ex(len(target))
            if isinstance(target, list):
                _mat, length = self.em.gather_list(target, self)
                return _Ex(length, _VEC)
            raise self.fail("len() of an unresolvable object")
        if func in (int, bool) and len(node.args) == 1 and not node.keywords:
            inner = self.expr(node.args[0], truth=True)
            if inner.kind == _CONST:
                return _const_ex(func(inner.const))
            if func is bool:
                return _Ex(self.as_bool(inner), _BOOL, sigmask=1)
            return inner
        if func in (min, max) and len(node.args) >= 2 and not node.keywords:
            parts = [self.expr(arg) for arg in node.args]
            if all(p.kind == _CONST for p in parts):
                return _const_ex(func(p.const for p in parts))
            np_func = "_np.minimum" if func is min else "_np.maximum"
            code = self.as_vec(parts[0])
            for part in parts[1:]:
                code = f"{np_func}({code}, {self.as_vec(part)})"
            masks = [p.sigmask for p in parts]
            bound = None
            if all(m is not None for m in masks):
                bound = min(masks) if func is min else max(masks)
            return _Ex(code, _VEC, sigmask=bound)
        if func is abs and len(node.args) == 1 and not node.keywords:
            inner = self.expr(node.args[0])
            if inner.kind == _CONST:
                return _const_ex(abs(inner.const))
            return _Ex(f"_np.abs({inner.code})", _VEC, sigmask=inner.sigmask)
        return self.inline_call(node, mask=None, want_value=True,
                                truth=truth)

    def expr_boolop(self, node: ast.BoolOp, truth: bool) -> _Ex:
        is_and = isinstance(node.op, ast.And)
        parts: List[_Ex] = []
        for i, value in enumerate(node.values):
            last = i == len(node.values) - 1
            ex = self.expr(value, truth=truth)
            if ex.kind == _CONST:
                decisive = (not bool(ex.const)) if is_and else bool(ex.const)
                if decisive:
                    # Lanes reaching this operand stop here; later operands
                    # are dead.  In truth context (or with nothing emitted
                    # before it) the whole expression folds to it.
                    if truth or not parts:
                        return ex
                    parts.append(ex)
                    break
                # Neutral constant: execution always moves past it, and for
                # value semantics the result can only be it when it is last.
                if not truth and last:
                    parts.append(ex)
                continue
            parts.append(ex)
        if not parts:
            # All operands were neutral constants: result is the last value.
            return self.expr(node.values[-1], truth=truth)
        if truth:
            if len(parts) == 1:
                single = parts[0]
                return _Ex(self.as_bool(single), _BOOL, sigmask=1)
            op = " & " if is_and else " | "
            code = op.join(self.as_bool(p) for p in parts)
            return _Ex(f"({code})", _BOOL, sigmask=1)
        # Value semantics: `a and b` is b where a is truthy else a.  When
        # every operand is 0/1-valued the select chain degenerates to the
        # bitwise join (``a and b == a & b`` over {0, 1}), which costs one
        # ufunc per operand instead of a where-select per operand.
        if len(parts) > 1 and all(
                p.kind == _BOOL
                or (p.sigmask is not None and p.sigmask <= 1)
                for p in parts):
            op = " & " if is_and else " | "
            code = op.join(self.as_bool(p) for p in parts)
            return _Ex(f"({code})", _BOOL, sigmask=1)
        result = parts[-1]
        for prev in reversed(parts[:-1]):
            cond = self.as_bool(prev)
            if is_and:
                code = f"_np.where({cond}, {self.as_vec(result)}, " \
                       f"{self.as_vec(prev)})"
            else:
                code = f"_np.where({cond}, {self.as_vec(prev)}, " \
                       f"{self.as_vec(result)})"
            bound = None
            if prev.sigmask is not None and result.sigmask is not None:
                bound = max(prev.sigmask, result.sigmask)
            result = _Ex(code, _VEC, sigmask=bound)
        return result

    def expr_unary(self, node: ast.UnaryOp, truth: bool) -> _Ex:
        if isinstance(node.op, ast.Not):
            inner = self.expr(node.operand, truth=True)
            if inner.kind == _CONST:
                return _const_ex(not inner.const)
            if inner.kind == _BOOL:
                return _Ex(f"(~{inner.code})", _BOOL, sigmask=1)
            # One comparison instead of a boolification plus an invert:
            # ``x == 0`` is exactly ``not bool(x)`` for integer rows.
            return _Ex(f"({self.as_vec(inner)} == 0)", _BOOL, sigmask=1)
        inner = self.expr(node.operand)
        if isinstance(node.op, ast.UAdd):
            return inner
        if inner.kind == _CONST:
            value = -inner.const if isinstance(node.op, ast.USub) \
                else ~inner.const
            return _const_ex(value)
        op = "-" if isinstance(node.op, ast.USub) else "~"
        return _Ex(f"({op}{self.as_vec(inner)})", _VEC)

    def expr_binop(self, node: ast.BinOp) -> _Ex:
        entry = _BIN_OPS.get(type(node.op))
        if entry is None:
            raise self.fail(f"operator {type(node.op).__name__}")
        symbol, fold = entry
        left = self.expr(node.left)
        right = self.expr(node.right)
        if left.kind == _CONST and right.kind == _CONST:
            try:
                return _const_ex(fold(left.const, right.const))
            except Exception as exc:
                raise self.fail(f"constant fold failed: {exc}")
        if isinstance(node.op, ast.Mod) and right.kind == _CONST:
            pmask = _pow2_mask(right.const)
            if pmask is not None:
                return _Ex(f"({self.as_vec(left)} & {pmask})", _VEC,
                           sigmask=pmask)
        code = f"({self.as_vec(left)} {symbol} {self.as_vec(right)})"
        bound = None
        if isinstance(node.op, ast.BitAnd):
            for side in (left, right):
                if side.kind == _CONST and side.const >= 0:
                    bound = side.const if bound is None \
                        else min(bound, side.const)
                elif side.sigmask is not None:
                    bound = side.sigmask if bound is None \
                        else min(bound, side.sigmask)
        elif isinstance(node.op, (ast.BitOr, ast.BitXor)):
            if left.sigmask is not None and right.sigmask is not None:
                bound = left.sigmask | right.sigmask
        elif isinstance(node.op, ast.Mod):
            if right.kind == _CONST and right.const > 0:
                bound = right.const - 1
        return _Ex(code, _VEC, sigmask=bound)

    def expr_compare(self, node: ast.Compare) -> _Ex:
        operands = [node.left] + list(node.comparators)
        pieces: List[str] = []
        folded: Optional[bool] = True
        exprs = []
        for op, left_node, right_node in zip(node.ops, operands,
                                             operands[1:]):
            if isinstance(op, (ast.Is, ast.IsNot)):
                left = self.frame.res.resolve(left_node)
                right = self.frame.res.resolve(right_node)
                if left is _FAIL or right is _FAIL \
                        or isinstance(left, AnyOf) \
                        or isinstance(right, AnyOf):
                    raise self.fail("'is' on runtime values")
                value = (left is right) if isinstance(op, ast.Is) \
                    else (left is not right)
                exprs.append(_const_ex(value))
                continue
            if isinstance(op, (ast.In, ast.NotIn)):
                container = self.frame.res.resolve(right_node)
                if _Resolver.trace is not None:
                    _Resolver.trace.record_container(container)
                if not isinstance(container, (tuple, list)) or not all(
                        isinstance(x, int) for x in container):
                    raise self.fail("'in' on a runtime container")
                item = self.expr(left_node)
                if item.kind == _CONST:
                    hit = item.const in container
                    exprs.append(_const_ex(
                        hit if isinstance(op, ast.In) else not hit))
                    continue
                vec = self.as_vec(item)
                alts = " | ".join(f"({vec} == {int(x)})" for x in container) \
                    or "False"
                code = f"({alts})" if isinstance(op, ast.In) \
                    else f"(~({alts}))"
                exprs.append(_Ex(code, _BOOL, sigmask=1))
                continue
            entry = _CMP_OPS.get(type(op))
            if entry is None:
                raise self.fail(f"comparison {type(op).__name__}")
            symbol, fold = entry
            left = self.expr(left_node)
            right = self.expr(right_node)
            if left.kind == _CONST and right.kind == _CONST:
                exprs.append(_const_ex(fold(left.const, right.const)))
                continue
            exprs.append(_Ex(
                f"({self.as_vec(left)} {symbol} {self.as_vec(right)})",
                _BOOL, sigmask=1))
        for ex in exprs:
            if ex.kind == _CONST:
                if not ex.const:
                    folded = False
                continue
            folded = None
            pieces.append(self.as_bool(ex))
        if folded is not None:
            return _const_ex(folded)
        if len(pieces) == 1:
            return _Ex(pieces[0], _BOOL, sigmask=1)
        return _Ex(f"({' & '.join(pieces)})", _BOOL, sigmask=1)

    def expr_ifexp(self, node: ast.IfExp, truth: bool) -> _Ex:
        test = self.expr(node.test, truth=True)
        if test.kind == _CONST:
            return self.expr(node.body if test.const else node.orelse,
                             truth=truth)
        body = self.expr(node.body, truth=truth)
        orelse = self.expr(node.orelse, truth=truth)
        cond = self.as_bool(test)
        if body.kind == _CONST and orelse.kind == _CONST:
            if body.const == 1 and orelse.const == 0:
                return _Ex(cond, _BOOL, sigmask=1)
            if body.const == 0 and orelse.const == 1:
                return _Ex(f"(~{cond})", _BOOL, sigmask=1)
        code = f"_np.where({cond}, {self.as_vec(body)}, " \
               f"{self.as_vec(orelse)})"
        bound = None
        if body.sigmask is not None and orelse.sigmask is not None:
            bound = max(body.sigmask, orelse.sigmask)
        return _Ex(code, _VEC, sigmask=bound)

    # -- helper inlining -------------------------------------------------------

    def inline_call(self, node: ast.Call, mask: Optional[str],
                    want_value: bool, truth: bool = False) -> _Ex:
        if len(self.frames) > _MAX_INLINE_DEPTH:
            raise self.fail("helper inline depth limit")
        if node.keywords and any(kw.arg is None for kw in node.keywords):
            raise self.fail("**kwargs call")
        func, bound_self = self.resolve_call_target(node)
        inner = getattr(func, "__func__", func)
        if isinstance(inner, (classmethod, staticmethod)):
            inner = inner.__func__
        if not inspect.isfunction(inner):
            raise self.fail(f"cannot inline call target {inner!r}")
        parsed = _parse_proc(inner)
        if parsed is None:
            raise self.fail(f"no source for helper "
                            f"{getattr(inner, '__name__', inner)}")
        if parsed.args.vararg or parsed.args.kwarg or parsed.args.kwonlyargs:
            raise self.fail("helper with *args/**kwargs/kw-only args")

        res = _Resolver(inner)
        params = [a.arg for a in parsed.args.args]
        actual_self = getattr(func, "__self__", bound_self)
        offset = 0
        pfx = self.em.prefix()
        kinds: Dict[str, _Ex] = {}
        if params and actual_self is not None:
            res.locals[params[0]] = actual_self
            offset = 1
        positional = params[offset:]
        bindings: Dict[str, Optional[ast.expr]] = {p: None
                                                   for p in positional}
        for name, arg in zip(positional, node.args):
            bindings[name] = arg
        if len(node.args) > len(positional):
            raise self.fail("too many helper arguments")
        for kw in node.keywords:
            if kw.arg not in bindings or bindings[kw.arg] is not None:
                raise self.fail(f"bad helper keyword {kw.arg!r}")
            bindings[kw.arg] = kw.value
        defaults = inner.__defaults__ or ()
        default_map = dict(zip(positional[len(positional) - len(defaults):],
                               defaults))
        for name in positional:
            arg_node = bindings[name]
            if arg_node is None:
                if name not in default_map:
                    raise self.fail(f"missing helper argument {name!r}")
                value = default_map[name]
                if not (isinstance(value, (bool, int)) or value is None):
                    raise self.fail(f"non-literal default for {name!r}")
                res.locals[name] = value
                kinds[name] = _const_ex(value)
                continue
            ex = self.expr(arg_node)
            if ex.kind == _CONST:
                res.locals[name] = ex.const
                kinds[name] = ex
                continue
            var = f"_L{pfx}_{name}"
            self.line(f"{var} = {self.snapshot_code(ex)}")
            res.locals[name] = _FAIL
            kinds[name] = _Ex(var, ex.kind, sigmask=ex.sigmask)

        ret_var = self.temp() if want_value else None
        frame = _Frame(res=res, prefix=pfx, local_kinds=kinds,
                       ret_var=ret_var)
        self.frames.append(frame)
        try:
            self.emit_body(parsed.body, mask)
        finally:
            self.frames.pop()
        if want_value and frame.impure:
            # A value-returning helper evaluated inside an expression runs
            # unconditionally in vector form; that is only sound when it
            # has no side effects.
            raise self.fail("side-effecting helper used as a value")
        if frame.impure:
            self.frame.impure = True
        if not want_value:
            return _const_ex(None)
        return self.finalize_ret(frame)

    def resolve_call_target(self, node: ast.Call) -> Tuple[Any, Any]:
        res = self.frame.res
        func = res.resolve(node.func)
        bound_self = None
        if func is _FAIL and isinstance(node.func, ast.Attribute):
            base = res.resolve(node.func.value)
            if base is not _FAIL and not isinstance(base, AnyOf) \
                    and not inspect.isclass(base):
                method = inspect.getattr_static(type(base), node.func.attr,
                                                _FAIL)
                if callable(method) and method is not _FAIL:
                    return method, base
        elif isinstance(node.func, ast.Attribute) and callable(func) \
                and not isinstance(func, type):
            base = res.resolve(node.func.value)
            if base is not _FAIL and not isinstance(base, AnyOf) \
                    and not inspect.ismodule(base) \
                    and not inspect.isclass(base):
                bound_self = base
        if func is _FAIL or not callable(func):
            raise self.fail("cannot resolve call target")
        return func, bound_self


# -- whole-design emitter -----------------------------------------------------------


class _BatchEmitter:
    """Emit the batched settle/cycle module for one design instance."""

    def __init__(self, top, max_settle: int,
                 mutations: Tuple[str, ...]) -> None:
        self.top = top
        self.max_settle = max_settle
        self.mutations = mutations
        self.signals: List[Signal] = top.all_signals()
        self.memories: List[Memory] = top.all_memories()
        self.comb_procs: List[Callable] = top.all_comb_procs()
        self.seq_procs: List[Callable] = top.all_seq_procs()
        self.sig_slot = {id(sig): i for i, sig in enumerate(self.signals)}
        self.mem_slot = {id(mem): k for k, mem in enumerate(self.memories)}
        self.bad_attrs: Set[Tuple[int, str]] = set()
        self._scan_python_state()
        self.mirror_next = self._scan_comb_next_reads()

    def _scan_comb_next_reads(self) -> bool:
        """True when some comb process *reads* ``.next``.

        The fast path writes only the value rows during settle and restores
        the ``value == next`` invariant with a single whole-matrix copyto at
        the end; that is invisible unless a combinational process observes
        another signal's ``.next`` mid-settle, in which case every write
        keeps the classic per-write mirroring.
        """
        for proc in self.comb_procs:
            tree = _parse_proc(proc)
            if tree is None:
                return True  # no source: mirror conservatively
            for node in ast.walk(tree):
                if isinstance(node, ast.Attribute) and node.attr == "next" \
                        and isinstance(node.ctx, ast.Load):
                    return True
                if isinstance(node, ast.AugAssign) \
                        and isinstance(node.target, ast.Attribute) \
                        and node.target.attr == "next":
                    return True
        return False

    def _write_slot_set(self, analysis) -> Optional[Set[int]]:
        """Slots a whole-proc unit writes, or None when that set is unknown.

        A known write set lets the vectorizer skip the defensive ``.copy()``
        when binding a value row the process never overwrites; None keeps
        every snapshot conservative (statement-split units share one frame
        across interleaved processes, so their write sets do not compose).
        """
        if analysis is None:
            return None
        slots: Set[int] = set()
        for sig in analysis.writes:
            slot = self.sig_slot.get(id(sig))
            if slot is None:
                return None
            slots.add(slot)
        return slots

    # -- registries (reset per emission attempt) -------------------------------

    def _reset(self) -> None:
        self._temp = 0
        self._pfx = 0
        self.used_v: Set[int] = set()
        self.used_n: Set[int] = set()
        self.used_mem: Set[int] = set()
        self.attr_rows: Dict[Tuple[int, str], int] = {}
        self.attr_slots: List[Tuple[Any, str]] = []
        self.gathers: Dict[int, int] = {}
        self.gather_lists: List[list] = []
        self.appends: Dict[int, int] = {}
        self.append_lists: List[list] = []
        self.comb_calls: List[LaneCallPlan] = []
        self.seq_calls: List[LaneCallPlan] = []
        self.fallback_reasons: List[str] = []
        self._mask_mutated = False
        self._n_vec_comb = 0
        self._n_vec_seq = 0

    def temp(self) -> str:
        self._temp += 1
        return f"_t{self._temp}"

    def prefix(self) -> str:
        self._pfx += 1
        return str(self._pfx)

    def vrow(self, slot: int) -> str:
        self.used_v.add(slot)
        return f"_v{slot}"

    def nrow(self, slot: int) -> str:
        self.used_n.add(slot)
        return f"_n{slot}"

    def slot_of(self, sig: Signal, vec: _Vectorizer) -> int:
        slot = self.sig_slot.get(id(sig))
        if slot is None:
            raise vec.fail(f"signal {sig.name!r} outside the design")
        return slot

    def mem_of(self, mem: Memory, vec: _Vectorizer) -> str:
        slot = self.mem_slot.get(id(mem))
        if slot is None:
            raise vec.fail("memory outside the design")
        self.used_mem.add(slot)
        return f"_mm{slot}"

    def attr_row(self, owner: Any, attr: str, vec: _Vectorizer,
                 register: bool) -> str:
        key = (id(owner), attr)
        index = self.attr_rows.get(key)
        if index is None:
            if key not in self._attr_candidates:
                raise vec.fail(f"Python attribute {attr!r} not promotable")
            index = len(self.attr_slots)
            self.attr_rows[key] = index
            self.attr_slots.append((owner, attr))
        return f"_pa{index}"

    def attr_row_if_registered(self, key: Tuple[int, str]) -> Optional[str]:
        index = self.attr_rows.get(key)
        if index is not None:
            return f"_pa{index}"
        if key in self._attr_candidates:
            # Reads must see later vectorized writes: promote on first read.
            owner, attr = self._attr_candidates[key]
            index = len(self.attr_slots)
            self.attr_rows[key] = index
            self.attr_slots.append((owner, attr))
            return f"_pa{index}"
        return None

    def gather_list(self, target: list, vec: _Vectorizer) -> Tuple[str, str]:
        if id(target) in self._pass1_appends:
            raise vec.fail("list is both gathered and appended")
        index = self.gathers.get(id(target))
        if index is None:
            if not all(isinstance(x, int) for x in target):
                raise vec.fail("gathered list holds non-integers")
            index = len(self.gather_lists)
            self.gathers[id(target)] = index
            self.gather_lists.append(target)
        return f"_pl{index}", f"_plen{index}"

    def append_list(self, target: list, vec: _Vectorizer) -> str:
        if id(target) in self._pass1_reads:
            raise vec.fail("list is both gathered and appended")
        index = self.appends.get(id(target))
        if index is None:
            index = len(self.append_lists)
            self.appends[id(target)] = index
            self.append_lists.append(target)
        return f"_ls{index}"

    def maybe_mutate_mask(self, vec: _Vectorizer, mvar: str) -> None:
        """``batched.cross_lane_mask_reuse``: corrupt the first sequential
        lane mask with its lane-reversed self, so lanes take branches that
        belong to other lanes' state."""
        if MUTATION_MASK_REUSE in self.mutations and vec.mode == "seq" \
                and not self._mask_mutated:
            vec.line(f"{mvar} = {mvar} | {mvar}[::-1]")
            self._mask_mutated = True

    # -- pass 1: find Python-side state processes touch ------------------------

    def _scan_python_state(self) -> None:
        self._attr_candidates: Dict[Tuple[int, str], Tuple[Any, str]] = {}
        self._pass1_reads: Set[int] = set()
        self._pass1_appends: Set[int] = set()
        for proc in list(self.comb_procs) + list(self.seq_procs):
            tree = _parse_proc(proc)
            if tree is None:
                continue
            res = _Resolver(proc)
            for node in ast.walk(tree):
                if isinstance(node, (ast.Assign, ast.AugAssign)):
                    targets = node.targets if isinstance(node, ast.Assign) \
                        else [node.target]
                    for target in targets:
                        if isinstance(target, ast.Attribute) \
                                and target.attr != "next":
                            self._scan_attr_store(res, target)
                elif isinstance(node, ast.Subscript):
                    base = res.resolve(node.value)
                    if isinstance(base, list):
                        self._pass1_reads.add(id(base))
                elif isinstance(node, ast.Call):
                    func = node.func
                    if isinstance(func, ast.Attribute) \
                            and func.attr == "append":
                        base = res.resolve(func.value)
                        if isinstance(base, list):
                            self._pass1_appends.add(id(base))
                    elif isinstance(func, ast.Name) and func.id == "len" \
                            and node.args:
                        base = res.resolve(node.args[0])
                        if isinstance(base, list):
                            self._pass1_reads.add(id(base))

    def _scan_attr_store(self, res: _Resolver,
                         target: ast.Attribute) -> None:
        owner = res.resolve(target.value)
        if owner is _FAIL or isinstance(owner, AnyOf):
            return
        key = (id(owner), target.attr)
        try:
            initial = inspect.getattr_static(owner, target.attr)
        except (AttributeError, TypeError):
            initial = _FAIL
        if isinstance(initial, int):  # bool is int
            self._attr_candidates[key] = (owner, target.attr)
        else:
            self.bad_attrs.add(key)

    # -- emission --------------------------------------------------------------

    def emit(self) -> BatchedProgram:
        analyses = [analyze_proc(proc) for proc in self.comb_procs]
        forced: Set[int] = set()
        for _attempt in range(len(self.comb_procs) + 2):
            try:
                return self._emit_once(analyses, forced)
            except _Demote as demote:
                forced.add(demote.proc_index)
                self.fallback_reasons_seed = demote.reason
        raise VectorizeError("batched emitter failed to converge")

    def _emit_once(self, analyses: List[ProcAnalysis],
                   forced: Set[int]) -> BatchedProgram:
        self._reset()
        effective = [replace(a, units=None)
                     if i in forced and a.units is not None else a
                     for i, a in enumerate(analyses)]
        schedule = build_schedule(effective)
        settle_body: List[str] = []
        frames: Dict[int, _Frame] = {}
        self._emit_settle(schedule, effective, forced, frames, settle_body)
        cycle_body: List[str] = []
        self._emit_cycle(cycle_body)
        source = self._assemble(settle_body, cycle_body)
        report = self._report(schedule)
        comb_index = {id(proc): i for i, proc in enumerate(self.comb_procs)}
        for plan in self.comb_calls:
            plan.proc_index = comb_index[id(plan.proc)]
        seq_index = {id(proc): i for i, proc in enumerate(self.seq_procs)}
        for plan in self.seq_calls:
            plan.proc_index = seq_index[id(plan.proc)]
        return BatchedProgram(
            source=source, report=report, signals=self.signals,
            memories=self.memories, max_settle=self.max_settle,
            attr_slots=list(self.attr_slots),
            gather_lists=list(self.gather_lists),
            append_lists=list(self.append_lists),
            comb_calls=list(self.comb_calls),
            seq_calls=list(self.seq_calls),
            comb_procs=list(self.comb_procs),
            seq_procs=list(self.seq_procs))

    def _emit_settle(self, schedule: Schedule,
                     analyses: List[ProcAnalysis], forced: Set[int],
                     frames: Dict[int, _Frame], out: List[str]) -> None:
        out.append("    if not sim._attached:")
        out.append("        sim._check_attached()")
        out.append("    if sim._in_dirty:")
        out.append("        sim._sync_in()")
        guarded = schedule.guarded
        if guarded:
            out.append(f"    for _round in range({self.max_settle}):")
            out.append("        _chg = False")
            self._emit_groups(schedule, forced, frames, out, "        ",
                              guarded=True)
            self._emit_opaque(schedule, out, "        ")
            out.append("        if not _chg:")
            out.append("            break")
            out.append("    else:")
            out.append("        sim._raise_comb_loop()")
            out.append("    _rounds = _round + 1")
        else:
            self._emit_groups(schedule, forced, frames, out, "    ",
                              guarded=False)
            out.append("    _rounds = 1")
        if not self.mirror_next:
            out.append("    _np.copyto(_VN, _V)")
        out.append("    sim._dirty = False")
        out.append("    return _rounds")

    def _emit_groups(self, schedule: Schedule, forced: Set[int],
                     frames: Dict[int, _Frame], out: List[str],
                     indent: str, guarded: bool) -> None:
        for group in schedule.groups:
            if group.cyclic and not guarded:
                out.append(f"{indent}for _round in "
                           f"range({self.max_settle}):")
                out.append(f"{indent}    _chg = False")
                for unit in group.units:
                    self._emit_unit(unit, forced, frames, out,
                                    indent + "    ", guarded=True)
                out.append(f"{indent}    if not _chg:")
                out.append(f"{indent}        break")
                out.append(f"{indent}else:")
                out.append(f"{indent}    sim._raise_comb_loop()")
            else:
                for unit in group.units:
                    self._emit_unit(unit, forced, frames, out, indent,
                                    guarded=guarded)

    def _emit_unit(self, unit: Unit, forced: Set[int],
                   frames: Dict[int, _Frame], out: List[str],
                   indent: str, guarded: bool) -> None:
        pi = unit.proc_index
        proc = self.comb_procs[pi]
        label = getattr(proc, "__qualname__", f"comb[{pi}]")
        if not unit.is_call:
            vec = _Vectorizer(self, proc, mode="comb", guarded=guarded)
            vec.indent = indent
            frame = frames.get(pi)
            if frame is None:
                frame = _Frame(res=_Resolver(proc), prefix=self.prefix())
                frames[pi] = frame
            mark_attr = len(self.attr_slots)
            try:
                vec.run_proc(frame, [unit.stmt.node])
            except VectorizeError as exc:
                del self.attr_slots[mark_attr:]
                raise _Demote(pi, str(exc))
            out.append(f"{indent}# comb {label}")
            out.extend(vec.out)
            self._n_vec_comb += 1
            return
        analysis = unit.analysis
        if pi not in forced:
            vec = _Vectorizer(self, proc, mode="comb", guarded=guarded,
                              write_slots=self._write_slot_set(analysis))
            vec.indent = indent
            parsed = _parse_proc(proc)
            saved = self._snapshot()
            if parsed is not None:
                frame = _Frame(res=_Resolver(proc), prefix=self.prefix())
                try:
                    vec.run_proc(frame, parsed.body)
                    out.append(f"{indent}# comb {label}")
                    out.extend(vec.out)
                    self._n_vec_comb += 1
                    return
                except VectorizeError as exc:
                    self._restore(saved)
                    self.fallback_reasons.append(str(exc))
            else:
                self.fallback_reasons.append(f"{label}: no source")
        plan = self._call_plan(proc, analysis, seq=False)
        index = len(self.comb_calls)
        self.comb_calls.append(plan)
        out.append(f"{indent}# comb {label} (per-lane fallback)")
        if guarded:
            out.append(f"{indent}if _lc{index}():")
            out.append(f"{indent}    _chg = True")
        else:
            out.append(f"{indent}_lc{index}()")

    def _emit_opaque(self, schedule: Schedule, out: List[str],
                     indent: str) -> None:
        for analysis in schedule.opaque:
            proc = analysis.proc
            label = getattr(proc, "__qualname__", "opaque")
            reason = "; ".join(analysis.opaque_reasons) or "opaque"
            plan = LaneCallPlan(proc=proc, sig_slots=None, mem_slots=None,
                                seq=False, opaque=True, reason=reason)
            index = len(self.comb_calls)
            self.comb_calls.append(plan)
            self.fallback_reasons.append(f"{label}: {reason}")
            out.append(f"{indent}# opaque {label} (full per-lane sync)")
            out.append(f"{indent}if _lc{index}():")
            out.append(f"{indent}    _chg = True")

    def _snapshot(self):
        return (self._temp, self._pfx, len(self.attr_slots),
                len(self.gather_lists), len(self.append_lists),
                set(self.used_v), set(self.used_n), set(self.used_mem))

    def _restore(self, saved) -> None:
        (self._temp, self._pfx, n_attr, n_gather, n_append,
         self.used_v, self.used_n, self.used_mem) = saved
        for owner_attr in self.attr_slots[n_attr:]:
            self.attr_rows.pop((id(owner_attr[0]), owner_attr[1]), None)
        del self.attr_slots[n_attr:]
        for target in self.gather_lists[n_gather:]:
            self.gathers.pop(id(target), None)
        del self.gather_lists[n_gather:]
        for target in self.append_lists[n_append:]:
            self.appends.pop(id(target), None)
        del self.append_lists[n_append:]

    def _call_plan(self, proc: Callable, analysis: ProcAnalysis,
                   seq: bool) -> LaneCallPlan:
        if analysis.opaque:
            return LaneCallPlan(proc=proc, sig_slots=None, mem_slots=None,
                                seq=seq, opaque=True,
                                reason="; ".join(analysis.opaque_reasons))
        sig_slots: Set[int] = set()
        for sig in list(analysis.reads) + list(analysis.writes):
            slot = self.sig_slot.get(id(sig))
            if slot is None:
                return LaneCallPlan(proc=proc, sig_slots=None,
                                    mem_slots=None, seq=seq, opaque=True,
                                    reason="touches a foreign signal")
            sig_slots.add(slot)
        mem_slots: Set[int] = set()
        for mem in list(analysis.mem_reads) + list(analysis.mem_writes):
            slot = self.mem_slot.get(id(mem))
            if slot is None:
                return LaneCallPlan(proc=proc, sig_slots=None,
                                    mem_slots=None, seq=seq, opaque=True,
                                    reason="touches a foreign memory")
            mem_slots.add(slot)
        return LaneCallPlan(proc=proc, sig_slots=sorted(sig_slots),
                            mem_slots=sorted(mem_slots), seq=seq,
                            opaque=False, reason="not vectorizable")

    def _emit_cycle(self, out: List[str]) -> None:
        out.append("    if not sim._attached:")
        out.append("        sim._check_attached()")
        out.append("    if sim._dirty or sim._in_dirty:")
        out.append("        _settle(sim)")
        for qi, proc in enumerate(self.seq_procs):
            label = getattr(proc, "__qualname__", f"seq[{qi}]")
            vec = _Vectorizer(self, proc, mode="seq", guarded=False)
            vec.indent = "    "
            parsed = _parse_proc(proc)
            analysis = self._analyze_seq(proc)
            saved = self._snapshot()
            emitted = False
            if parsed is not None:
                # The scalar analyzer's notion of "opaque" includes features
                # (list appends, attribute counters) this emitter supports,
                # so every sequential process gets a vectorization attempt.
                frame = _Frame(res=_Resolver(proc), prefix=self.prefix())
                try:
                    vec.run_proc(frame, parsed.body)
                    out.append(f"    # seq {label}")
                    out.extend(vec.out)
                    self._n_vec_seq += 1
                    emitted = True
                except VectorizeError as exc:
                    self._restore(saved)
                    self.fallback_reasons.append(str(exc))
            else:
                self.fallback_reasons.append(f"{label}: no source")
            if not emitted:
                plan = self._call_plan(proc, analysis, seq=True)
                index = len(self.seq_calls)
                self.seq_calls.append(plan)
                out.append(f"    # seq {label} (per-lane fallback)")
                out.append(f"    _lq{index}()")
        if MUTATION_STALE_COMMIT in self.mutations:
            # ``batched.stale_lane_commit``: the clock-edge commit forgets
            # the last lane's column, freezing that lane's registers.
            out.append("    _np.copyto(_V[:, :-1], _VN[:, :-1])")
        else:
            out.append("    _np.copyto(_V, _VN)")
        out.append("    _settle(sim)")
        out.append("    sim._cycles += 1")
        out.append("    if sim._has_watchers:")
        out.append("        sim._post_cycle()")

    def _analyze_seq(self, proc: Callable) -> ProcAnalysis:
        analysis = ProcAnalysis(proc=proc)
        tree = _parse_proc(proc)
        if tree is None:
            analysis.opaque = True
            analysis.opaque_reasons.append("no source")
            return analysis
        walker = _Analyzer(analysis, _closure_env(proc))
        walker.visit_body(tree.body)
        return analysis

    # -- module assembly -------------------------------------------------------

    def _assemble(self, settle_body: List[str],
                  cycle_body: List[str]) -> str:
        bindings = ["_np=_NP", "_LANES=_LIDX", "_NL=_NLANES"]
        for slot in sorted(self.used_v):
            bindings.append(f"_v{slot}=_VR[{slot}]")
        for slot in sorted(self.used_n):
            bindings.append(f"_n{slot}=_NR[{slot}]")
        for slot in sorted(self.used_mem):
            bindings.append(f"_mm{slot}=_MM[{slot}]")
        for j in range(len(self.attr_slots)):
            bindings.append(f"_pa{j}=_PA[{j}]")
        for j in range(len(self.gather_lists)):
            bindings.append(f"_pl{j}=_PL[{j}]")
            bindings.append(f"_plen{j}=_PLEN[{j}]")
        for j in range(len(self.append_lists)):
            bindings.append(f"_ls{j}=_LS[{j}]")
        for q in range(len(self.comb_calls)):
            bindings.append(f"_lc{q}=_LC[{q}]")
        for q in range(len(self.seq_calls)):
            bindings.append(f"_lq{q}=_LQ[{q}]")
        settle_params = ", ".join(["sim"] + bindings + ["_V=_V", "_VN=_VN"])
        cycle_params = ", ".join(
            ["sim"] + bindings + ["_V=_V", "_VN=_VN", "_settle=settle"])
        lines = [
            '"""Generated by repro.rtl.compile.emit_batched — do not '
            'edit."""',
            "",
            f"def settle({settle_params}):",
            *settle_body,
            "",
            f"def cycle({cycle_params}):",
            *cycle_body,
        ]
        return "\n".join(lines) + "\n"

    def _report(self, schedule: Schedule) -> BatchReport:
        lane_comb = [p for p in self.comb_calls if not p.opaque]
        return BatchReport(
            n_comb_procs=len(self.comb_procs),
            n_vectorized_comb=self._n_vec_comb,
            n_lane_call_comb=len(lane_comb),
            n_opaque_procs=len(schedule.opaque),
            n_seq_procs=len(self.seq_procs),
            n_vectorized_seq=self._n_vec_seq,
            n_lane_call_seq=len(self.seq_calls),
            n_cyclic_groups=sum(1 for g in schedule.groups if g.cyclic),
            guarded=schedule.guarded,
            n_attr_rows=len(self.attr_slots),
            n_gather_lists=len(self.gather_lists),
            n_append_lists=len(self.append_lists),
            fallback_reasons=list(self.fallback_reasons),
            mutations=self.mutations)


def emit_batched_program(top, max_settle: int = 64,
                         mutations: Optional[Tuple[str, ...]] = None
                         ) -> BatchedProgram:
    """Emit the batched lockstep program for one design instance.

    The program's :attr:`~BatchedProgram.signature` is the lane-compatibility
    key: designs may share a :class:`~repro.rtl.batch.BatchedSimulator`
    exactly when their signatures match (verification by regeneration).
    """
    if mutations is None:
        mutations = _active_batched_mutations()
    # The trace records every lane-specific value baked into the source;
    # rebind_batched_program verifies them on sibling lanes instead of
    # paying a full re-emission per lane.  Emissions never nest, so a
    # class-level slot (scoped to this call) is safe.
    trace = _BakeTrace()
    previous = _Resolver.trace
    _Resolver.trace = trace
    try:
        program = _BatchEmitter(top, max_settle, tuple(mutations)).emit()
    finally:
        _Resolver.trace = previous
    program.bake_attrs = list(trace.attrs.values())
    program.bake_containers = [(obj, container_fingerprint(obj))
                               for obj in trace.containers.values()]
    program.bake_calls = list(trace.calls.values())
    return program
