"""Source emission for the compiled settle strategy.

Given a :class:`~repro.rtl.compile.schedule.Schedule`, this module generates
one specialised Python module per design:

* transpiled statements are rewritten onto *slots* — signals and memories
  become pre-bound local names (``_s12``, ``_m3``) so the hot path performs
  no dict or attribute-chain lookups beyond a single C-level slot access;
* bit-width masks are inlined as integer literals at every assignment, doing
  at code-generation time what ``Signal.next`` otherwise does per write;
* commits are fused into the writes (``_s12._value = _s12._next = ...``)
  because the topological order guarantees no reader ran earlier;
* cyclic groups iterate with per-signal change detection until stable;
* opaque processes demote the whole settle to a guarded convergence loop —
  never wrong, merely slower.

The generated source is kept on the simulator (``sim.compiled_source``) so
it can be inspected, diffed and unit-tested like any other artefact.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Callable, Dict, List, Sequence

from ..component import Memory
from ..errors import CombinationalLoopError
from ..signal import Signal
from .analyze import ProcAnalysis
from .schedule import Schedule, Unit


@dataclass
class CompileReport:
    """What the compiler did with a design (for tests and debugging)."""

    n_procs: int
    n_transpiled_procs: int
    n_call_procs: int
    n_opaque_procs: int
    n_units: int
    n_cyclic_groups: int
    cyclic_group_sizes: List[int]
    guarded: bool
    opaque_reasons: List[str]

    def summary(self) -> str:
        return (f"{self.n_procs} comb procs: {self.n_transpiled_procs} "
                f"dissolved, {self.n_call_procs} called, "
                f"{self.n_opaque_procs} opaque; {self.n_units} units, "
                f"{self.n_cyclic_groups} cyclic groups"
                f"{' (guarded)' if self.guarded else ''}")


@dataclass
class CompiledProgram:
    """The executable artefact: settle/cycle plus its provenance."""

    settle: Callable
    cycle: Callable
    source: str
    report: CompileReport


class _Slots:
    """Stable slot numbering for every object the generated code touches."""

    def __init__(self) -> None:
        self.signals: Dict[Signal, str] = {}
        self.memories: Dict[Memory, str] = {}
        self.procs: Dict[int, str] = {}
        self._sig_objects: List[Signal] = []
        self._mem_objects: List[Memory] = []
        self._proc_objects: List[Callable] = []

    def signal(self, sig: Signal) -> str:
        name = self.signals.get(sig)
        if name is None:
            name = f"_s{len(self._sig_objects)}"
            self.signals[sig] = name
            self._sig_objects.append(sig)
        return name

    def memory(self, mem: Memory) -> str:
        name = self.memories.get(mem)
        if name is None:
            name = f"_m{len(self._mem_objects)}"
            self.memories[mem] = name
            self._mem_objects.append(mem)
        return name

    def proc(self, index: int, func: Callable) -> str:
        name = self.procs.get(index)
        if name is None:
            name = f"_p{len(self._proc_objects)}"
            self.procs[index] = name
            self._proc_objects.append(func)
        return name

class _Transpiler(ast.NodeTransformer):
    """Rewrite an analysed statement onto slot-indexed signal access."""

    def __init__(self, analysis: ProcAnalysis, slots: _Slots,
                 proc_tag: str, guarded: bool) -> None:
        self.analysis = analysis
        self.notes = analysis.notes
        self.slots = slots
        self.proc_tag = proc_tag
        self.guarded = guarded
        self.temp_counter = 0

    # -- helpers ---------------------------------------------------------------

    def _slot_value(self, sig: Signal) -> ast.Attribute:
        return ast.Attribute(value=ast.Name(id=self.slots.signal(sig),
                                            ctx=ast.Load()),
                             attr="_value", ctx=ast.Load())

    def _mangle(self, name: str) -> str:
        return f"_L{self.proc_tag}_{name}"

    # -- expressions -----------------------------------------------------------

    def visit_Name(self, node: ast.Name):
        noted = self.notes.get(id(node), _MISSING)
        if noted is not _MISSING:
            if isinstance(noted, Signal):
                return self._slot_value(noted)
            if _is_const(noted):
                return ast.Constant(value=noted)
        if node.id in self.analysis.local_names:
            return ast.Name(id=self._mangle(node.id), ctx=node.ctx)
        return node

    def visit_Attribute(self, node: ast.Attribute):
        noted = self.notes.get(id(node), _MISSING)
        if noted is not _MISSING and isinstance(noted, Signal):
            attr = "_next" if node.attr == "next" else "_value"
            return ast.Attribute(value=ast.Name(id=self.slots.signal(noted),
                                                ctx=ast.Load()),
                                 attr=attr, ctx=ast.Load())
        if noted is not _MISSING and _is_const(noted):
            return ast.Constant(value=noted)
        return self.generic_visit(node)

    def visit_Subscript(self, node: ast.Subscript):
        noted = self.notes.get(id(node), _MISSING)
        if noted is not _MISSING and isinstance(noted, Memory):
            index = self.visit(node.slice)
            data = ast.Attribute(value=ast.Name(id=self.slots.memory(noted),
                                                ctx=ast.Load()),
                                 attr="_data", ctx=ast.Load())
            wrapped = ast.BinOp(left=_group(index), op=ast.Mod(),
                                right=ast.Constant(value=noted.depth))
            return ast.Subscript(value=data, slice=wrapped, ctx=node.ctx)
        if noted is not _MISSING and isinstance(noted, Signal):
            return self._slot_value(noted)
        if noted is not _MISSING and _is_const(noted):
            return ast.Constant(value=noted)
        return self.generic_visit(node)

    def visit_Call(self, node: ast.Call):
        noted = self.notes.get(id(node), _MISSING)
        if noted is not _MISSING:
            if isinstance(noted, tuple) and len(noted) == 2 \
                    and isinstance(noted[0], Signal):
                state_sig, code = noted  # fsm.is_in("NAME")
                return ast.Compare(left=self._slot_value(state_sig),
                                   ops=[ast.Eq()],
                                   comparators=[ast.Constant(value=code)])
            if isinstance(noted, Signal):
                return self._slot_value(noted)
        return self.generic_visit(node)

    # -- statements ------------------------------------------------------------

    def visit_Expr(self, node: ast.Expr):
        # Bare reads (sensitivity anchors) schedule dependencies but emit no
        # runtime work.
        transformed = self.visit(node.value)
        if isinstance(transformed, (ast.Attribute, ast.Constant, ast.Name)):
            return None
        return ast.Expr(value=transformed)

    def visit_Assign(self, node: ast.Assign):
        target = node.targets[0]
        noted = self.notes.get(id(target), _MISSING) \
            if isinstance(target, ast.Attribute) else _MISSING
        if noted is not _MISSING and isinstance(noted, Signal):
            value = self.visit(node.value)
            masked = _apply_mask(value, noted._mask)
            slot = self.slots.signal(noted)
            if not self.guarded:
                # Fused write+commit: topological order guarantees no
                # earlier unit wanted the old value.
                return ast.Assign(
                    targets=[
                        ast.Attribute(value=ast.Name(id=slot, ctx=ast.Load()),
                                      attr="_value", ctx=ast.Store()),
                        ast.Attribute(value=ast.Name(id=slot, ctx=ast.Load()),
                                      attr="_next", ctx=ast.Store()),
                    ],
                    value=masked)
            temp = f"_v{self.proc_tag}_{self.temp_counter}"
            self.temp_counter += 1
            return _parse_stmts(
                f"{temp} = {ast.unparse(_group(masked))}\n"
                f"{slot}._next = {temp}\n"
                f"if {slot}._value != {temp}:\n"
                f"    {slot}._value = {temp}\n"
                f"    _chg = True\n")
        return self.generic_visit(node)


_MISSING = object()


def _is_const(obj) -> bool:
    return obj is None or isinstance(obj, (int, bool, str))


def _group(node: ast.expr) -> ast.expr:
    """Ensure correct precedence when splicing an expression."""
    return node  # ast.unparse adds parentheses as needed


def _apply_mask(value: ast.expr, mask: int) -> ast.expr:
    if isinstance(value, ast.Constant) and isinstance(value.value, int):
        return ast.Constant(value=int(value.value) & mask)
    return ast.BinOp(left=value, op=ast.BitAnd(),
                     right=ast.Constant(value=mask))


def _parse_stmts(source: str) -> List[ast.stmt]:
    return ast.parse(source).body


def _unparse_block(stmts: Sequence[ast.stmt], indent: str) -> List[str]:
    lines: List[str] = []
    for stmt in stmts:
        ast.fix_missing_locations(stmt)
        for line in ast.unparse(stmt).splitlines():
            lines.append(indent + line)
    return lines


def _flatten(transformed) -> List[ast.stmt]:
    if transformed is None:
        return []
    if isinstance(transformed, list):
        return transformed
    return [transformed]


class _Emitter:
    """Assemble and exec the specialised settle/cycle module."""

    def __init__(self, schedule: Schedule, comb_procs: Sequence[Callable],
                 seq_procs: Sequence[Callable], max_settle: int) -> None:
        self.schedule = schedule
        self.comb_procs = list(comb_procs)
        self.seq_procs = list(seq_procs)
        self.max_settle = max_settle
        self.slots = _Slots()
        self.lines: List[str] = []

    # -- unit emission ----------------------------------------------------------

    def emit_unit(self, unit: Unit, indent: str, guarded: bool) -> None:
        if unit.is_call:
            proc_name = self.slots.proc(unit.proc_index,
                                        self.comb_procs[unit.proc_index])
            self.lines.append(f"{indent}{proc_name}()")
            for sig in sorted(unit.writes, key=lambda s: s._uid):
                slot = self.slots.signal(sig)
                if guarded:
                    self.lines.append(
                        f"{indent}if {slot}._value != {slot}._next:")
                    self.lines.append(f"{indent}    {slot}._value = {slot}._next")
                    self.lines.append(f"{indent}    _chg = True")
                else:
                    self.lines.append(f"{indent}{slot}._value = {slot}._next")
            return
        transpiler = _Transpiler(unit.analysis, self.slots,
                                 proc_tag=str(unit.proc_index), guarded=guarded)
        transformed = _flatten(transpiler.visit(unit.stmt.node))
        self.lines.extend(_unparse_block(transformed, indent))

    def emit_groups(self, indent: str, guarded: bool) -> None:
        for group in self.schedule.groups:
            if group.cyclic and not guarded:
                self.lines.append(f"{indent}for _round in range({self.max_settle}):")
                self.lines.append(f"{indent}    _chg = False")
                for unit in group.units:
                    self.emit_unit(unit, indent + "    ", guarded=True)
                self.lines.append(f"{indent}    if not _chg:")
                self.lines.append(f"{indent}        break")
                self.lines.append(f"{indent}else:")
                self.lines.append(f"{indent}    sim._raise_comb_loop()")
            else:
                for unit in group.units:
                    self.emit_unit(unit, indent, guarded=guarded)

    def emit_opaque(self, indent: str) -> None:
        for analysis in self.schedule.opaque:
            index = self.comb_procs.index(analysis.proc)
            proc_name = self.slots.proc(index, analysis.proc)
            self.lines.append(f"{indent}{proc_name}()")
        self.lines.append(f"{indent}_w = sim._written")
        self.lines.append(f"{indent}for _sig in _w:")
        self.lines.append(f"{indent}    if _sig._value != _sig._next:")
        self.lines.append(f"{indent}        _sig._value = _sig._next")
        self.lines.append(f"{indent}        _chg = True")
        self.lines.append(f"{indent}del _w[:]")

    # -- function emission -------------------------------------------------------

    def emit_settle_body(self) -> None:
        lines = self.lines
        lines.append("    if not sim._attached:")
        lines.append("        sim._check_attached()")
        lines.append("    _w = sim._written")
        lines.append("    if _w:")
        lines.append("        for _sig in _w:")
        lines.append("            _sig._value = _sig._next")
        lines.append("        del _w[:]")
        if self.schedule.guarded:
            lines.append(f"    for _round in range({self.max_settle}):")
            lines.append("        _chg = False")
            self.emit_groups("        ", guarded=True)
            self.emit_opaque("        ")
            lines.append("        if not _chg:")
            lines.append("            break")
            lines.append("    else:")
            lines.append("        sim._raise_comb_loop()")
            lines.append("    _rounds = _round + 1")
        else:
            self.emit_groups("    ", guarded=False)
            lines.append("    _rounds = 1")
        lines.append("    if sim._written:")
        lines.append("        sim._drain_check()")
        lines.append("    if sim._verify:")
        lines.append("        sim._verify_settled()")
        lines.append("    sim._dirty = False")
        lines.append("    return _rounds")

    def emit_module(self) -> str:
        self.lines = []
        body_lines: List[str] = []
        self.lines = body_lines
        self.emit_settle_body()

        # Slot bindings become keyword defaults: one LOAD_FAST per use.
        sig_params = [f"{name}=_SIGS[{i}]" for i, name in
                      enumerate(self.slots.signals.values())]
        mem_params = [f"{name}=_MEMS[{i}]" for i, name in
                      enumerate(self.slots.memories.values())]
        proc_params = [f"{name}=_PROCS[{i}]" for i, name in
                       enumerate(self.slots.procs.values())]
        params = ", ".join(["sim"] + sig_params + mem_params + proc_params)

        seq_params = [f"_q{i}=_SEQS[{i}]" for i in range(len(self.seq_procs))]
        cycle_params = ", ".join(["sim"] + seq_params + ["_settle=settle"])
        seq_calls = "\n".join(f"    _q{i}()" for i in range(len(self.seq_procs)))

        module = [
            '"""Generated by repro.rtl.compile — do not edit."""',
            "",
            f"def settle({params}):",
            *body_lines,
            "",
            f"def cycle({cycle_params}):",
            # The attached check must run before the sequential processes:
            # a detached simulator skipping its leading settle would
            # otherwise fire a phantom clock edge into state now owned by
            # the replacement simulator.
            "    if not sim._attached:",
            "        sim._check_attached()",
            "    if sim._dirty or sim._written:",
            "        _settle(sim)",
        ]
        if seq_calls:
            module.append(seq_calls)
        module.extend([
            "    _w = sim._written",
            "    for _sig in _w:",
            "        _sig._value = _sig._next",
            "    del _w[:]",
            "    _settle(sim)",
            "    sim._cycles += 1",
            "    for _watch in sim._watchers:",
            "        _watch(sim._cycles)",
        ])
        return "\n".join(module) + "\n"

    def build(self) -> CompiledProgram:
        source = self.emit_module()
        namespace: Dict[str, object] = {
            "_SIGS": list(self.slots.signals),
            "_MEMS": list(self.slots.memories),
            "_PROCS": [self.comb_procs[index] for index in self.slots.procs],
            "_SEQS": list(self.seq_procs),
            "CombinationalLoopError": CombinationalLoopError,
        }
        code = compile(source, "<repro.rtl.compile>", "exec")
        exec(code, namespace)
        report = self._report()
        return CompiledProgram(settle=namespace["settle"],
                               cycle=namespace["cycle"],
                               source=source, report=report)

    def _report(self) -> CompileReport:
        transpiled = {u.proc_index for u in self.schedule.units
                      if not u.is_call}
        called = {u.proc_index for u in self.schedule.units if u.is_call}
        cyclic = [g for g in self.schedule.groups if g.cyclic]
        reasons: List[str] = []
        for analysis in self.schedule.opaque:
            reasons.extend(analysis.opaque_reasons)
        return CompileReport(
            n_procs=len(self.comb_procs),
            n_transpiled_procs=len(transpiled),
            n_call_procs=len(called),
            n_opaque_procs=len(self.schedule.opaque),
            n_units=len(self.schedule.units),
            n_cyclic_groups=len(cyclic),
            cyclic_group_sizes=[len(g.units) for g in cyclic],
            guarded=self.schedule.guarded,
            opaque_reasons=reasons,
        )


def emit_program(schedule: Schedule, comb_procs: Sequence[Callable],
                 seq_procs: Sequence[Callable],
                 max_settle: int) -> CompiledProgram:
    """Generate, compile and return the specialised program for a design."""
    return _Emitter(schedule, comb_procs, seq_procs, max_settle).build()
