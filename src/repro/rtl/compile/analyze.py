"""Static read/write analysis of combinational processes.

The compiled backend schedules every combinational process exactly once per
settle (in dependency order), so it must know, *before* simulation, every
:class:`~repro.rtl.signal.Signal` and :class:`~repro.rtl.component.Memory` a
process could ever read or write — including reads hidden behind branches
that a dynamic trace of one evaluation would miss.  This module extracts
those sets from the process's abstract syntax tree:

* attribute chains (``self.fifo.empty``) are resolved at compile time by
  evaluating them against the process's closure and globals, using
  ``inspect.getattr_static`` so properties are analysed rather than invoked;
* dynamic subscripts into Python containers of signals
  (``self._regs[addr].value``) over-approximate to *every* element;
* calls into resolvable helpers (``self._budget_open()``, ``fsm.is_in(...)``,
  local closure functions) are analysed recursively;
* anything that cannot be resolved marks the process *opaque*, which the
  emitter handles with a convergence loop instead of a single pass — slower
  but always correct.

The same walk decides whether a process is *transpilable*: a body made only
of plain signal plumbing (assignments, ternaries, arithmetic, ``fsm.is_in``)
can be dissolved into the generated settle function statement by statement,
removing even the Python call overhead — the software analogue of the
paper's wrapper dissolution.
"""

from __future__ import annotations

import ast
import inspect
import textwrap
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Set

from ..bits import Bits
from ..component import Memory
from ..signal import Signal

#: Sentinel for "could not be resolved at compile time".
_FAIL = object()

#: Builtins that are safe to see in a process body without recursing.
_SAFE_CALLS = {
    int, bool, len, range, enumerate, min, max, abs, sum, sorted, zip,
    divmod, round, tuple, list, isinstance, Bits,
}

#: Maximum helper-call recursion depth before giving up (opaque).
_MAX_CALL_DEPTH = 8


class AnyOf:
    """Compile-time union of candidate objects (dynamic subscript/branch)."""

    __slots__ = ("options",)

    def __init__(self, options) -> None:
        flat = []
        for opt in options:
            if isinstance(opt, AnyOf):
                flat.extend(opt.options)
            else:
                flat.append(opt)
        self.options = flat

    def __repr__(self) -> str:
        return f"AnyOf({len(self.options)} options)"


@dataclass
class StatementUnit:
    """One transpilable top-level statement of a combinational process."""

    node: ast.stmt
    reads: Set = field(default_factory=set)
    writes: Set = field(default_factory=set)
    mem_reads: Set = field(default_factory=set)
    mem_writes: Set = field(default_factory=set)
    #: Local temporaries this statement defines / uses (for ordering).
    locals_touched: Set[str] = field(default_factory=set)


@dataclass
class ProcAnalysis:
    """Everything the scheduler and emitter need to know about one process."""

    proc: Callable[[], None]
    reads: Set = field(default_factory=set)
    writes: Set = field(default_factory=set)
    mem_reads: Set = field(default_factory=set)
    mem_writes: Set = field(default_factory=set)
    #: True when the analysis could not account for everything the process
    #: might touch; the emitter then falls back to guarded convergence.
    opaque: bool = False
    opaque_reasons: List[str] = field(default_factory=list)
    #: Statement-level decomposition (only when every statement transpiles).
    units: Optional[List[StatementUnit]] = None
    #: AST-node resolution notes consumed by the emitter's transpiler.
    notes: Dict[int, Any] = field(default_factory=dict)
    #: Names of process-local temporaries (for collision-free mangling).
    local_names: Set[str] = field(default_factory=set)

    @property
    def transpilable(self) -> bool:
        return self.units is not None and not self.opaque


#: Source text cache keyed by code object: every instance of a design class
#: shares the same process code objects, so compiling the second (and every
#: later) instance skips the expensive ``inspect.getsource`` walk.
_SOURCE_CACHE: Dict[Any, Optional[str]] = {}


def _proc_source(func: Callable) -> Optional[str]:
    code = getattr(func, "__code__", None)
    if code is None:
        return None
    try:
        return _SOURCE_CACHE[code]
    except KeyError:
        pass
    try:
        source = textwrap.dedent(inspect.getsource(func))
    except (OSError, TypeError, SyntaxError, IndentationError):
        source = None
    _SOURCE_CACHE[code] = source
    return source


def _parse_proc(func: Callable) -> Optional[ast.FunctionDef]:
    """Parse ``func`` down to its ``FunctionDef`` node (None on failure)."""
    source = _proc_source(func)
    if source is None:
        return None
    try:
        tree = ast.parse(source)
    except (SyntaxError, IndentationError, ValueError):
        return None
    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            return node if isinstance(node, ast.FunctionDef) else None
    return None


def _closure_env(func: Callable) -> Dict[str, Any]:
    """The names a function body can resolve: closure cells over globals."""
    env = dict(getattr(func, "__globals__", {}))
    freevars = getattr(func.__code__, "co_freevars", ())
    cells = getattr(func, "__closure__", None) or ()
    for name, cell in zip(freevars, cells):
        try:
            env[name] = cell.cell_contents
        except ValueError:  # empty cell
            env.pop(name, None)
    return env


def _is_fsm_like(obj: Any) -> bool:
    """Duck-check for the :class:`~repro.rtl.fsm.FSM` helper."""
    return (hasattr(obj, "state") and isinstance(getattr(obj, "state", None), Signal)
            and hasattr(obj, "encode") and hasattr(obj, "is_in"))


class _Analyzer:
    """AST walker accumulating reads/writes for a single process."""

    def __init__(self, analysis: ProcAnalysis, env: Dict[str, Any],
                 depth: int = 0, call_stack: Optional[Set[Any]] = None) -> None:
        self.analysis = analysis
        self.env = env
        self.depth = depth
        self.call_stack = call_stack if call_stack is not None else set()
        #: name -> _FAIL (runtime value) or resolved object / AnyOf
        self.locals: Dict[str, Any] = {}
        #: Per-statement transpilability of the current statement.
        self.stmt_transpilable = True
        self.stmt_locals: Set[str] = set()
        self.reads = analysis.reads
        self.writes = analysis.writes
        self.mem_reads = analysis.mem_reads
        self.mem_writes = analysis.mem_writes

    # -- bookkeeping -----------------------------------------------------------

    def bail(self, reason: str) -> None:
        """Something unanalysable: the whole process becomes opaque."""
        self.analysis.opaque = True
        if len(self.analysis.opaque_reasons) < 8:
            self.analysis.opaque_reasons.append(reason)

    def not_transpilable(self) -> None:
        self.stmt_transpilable = False

    def note(self, node: ast.AST, value: Any) -> None:
        self.analysis.notes[id(node)] = value

    def read_signal(self, obj: Any) -> None:
        for sig in _expand(obj):
            if isinstance(sig, Signal):
                self.reads.add(sig)
            elif isinstance(sig, Memory):
                self.mem_reads.add(sig)

    def write_signal(self, obj: Any) -> None:
        for sig in _expand(obj):
            if isinstance(sig, Signal):
                self.writes.add(sig)
            elif isinstance(sig, Memory):
                self.mem_writes.add(sig)

    # -- compile-time resolution ------------------------------------------------

    def resolve(self, node: ast.AST) -> Any:
        """Resolve ``node`` to a compile-time object, ``AnyOf`` or ``_FAIL``.

        Resolution never executes user code: attributes are fetched with
        ``getattr_static`` so properties and other descriptors fail cleanly
        instead of running.
        """
        if isinstance(node, ast.Constant):
            return node.value
        if isinstance(node, ast.Name):
            if node.id in self.locals:
                return self.locals[node.id]
            if node.id in self.env:
                return self.env[node.id]
            builtin = getattr(__builtins__, node.id, _FAIL) if not isinstance(
                __builtins__, dict) else __builtins__.get(node.id, _FAIL)
            return builtin
        if isinstance(node, ast.Attribute):
            base = self.resolve(node.value)
            return self._resolve_attr(base, node.attr)
        if isinstance(node, ast.Subscript):
            base = self.resolve(node.value)
            if base is _FAIL:
                return _FAIL
            index = self.resolve(node.slice)
            return self._resolve_subscript(base, index)
        if isinstance(node, ast.Call):
            # getattr(obj, "attr"[, default]) with resolvable arguments.
            func = self.resolve(node.func)
            if func is getattr and len(node.args) in (2, 3) and not node.keywords:
                base = self.resolve(node.args[0])
                attr = self.resolve(node.args[1])
                if base is not _FAIL and isinstance(attr, str):
                    resolved = self._resolve_attr(base, attr)
                    if resolved is _FAIL and len(node.args) == 3:
                        return self.resolve(node.args[2])
                    return resolved
            return _FAIL
        return _FAIL

    def _resolve_attr(self, base: Any, attr: str) -> Any:
        if base is _FAIL:
            return _FAIL
        if isinstance(base, AnyOf):
            resolved = [self._resolve_attr(opt, attr) for opt in base.options]
            ok = [r for r in resolved if r is not _FAIL]
            if not ok:
                return _FAIL
            return AnyOf(ok) if len(ok) > 1 else ok[0]
        try:
            value = inspect.getattr_static(base, attr)
        except (AttributeError, TypeError):
            return _FAIL
        if isinstance(value, (property, classmethod, staticmethod)):
            return _FAIL  # descriptor: would execute code; analysed elsewhere
        if hasattr(value, "__get__") and not callable(value) and not isinstance(
                value, (Signal, Memory)):
            return _FAIL
        # getattr_static returns plain functions for methods; keep them —
        # call analysis re-binds the instance explicitly.
        return value

    def _resolve_subscript(self, base: Any, index: Any) -> Any:
        if isinstance(base, AnyOf):
            resolved = [self._resolve_subscript(opt, index) for opt in base.options]
            ok = [r for r in resolved if r is not _FAIL]
            if not ok:
                return _FAIL
            return AnyOf(ok) if len(ok) > 1 else ok[0]
        if isinstance(base, Memory):
            # The memory itself is the dependency; elements are runtime values.
            return _FAIL
        if isinstance(base, (list, tuple)):
            if index is not _FAIL and not isinstance(index, AnyOf):
                try:
                    return base[index]
                except (IndexError, TypeError, KeyError):
                    return _FAIL
            if base:
                return AnyOf(list(base)) if len(base) > 1 else base[0]
            return _FAIL
        if isinstance(base, dict):
            if index is not _FAIL and not isinstance(index, AnyOf):
                try:
                    return base[index]
                except (KeyError, TypeError):
                    return _FAIL
            values = list(base.values())
            if values:
                return AnyOf(values) if len(values) > 1 else values[0]
            return _FAIL
        return _FAIL

    def _iter_elements(self, value: Any) -> Optional[List[Any]]:
        """Elements of a resolvable iterable, or None."""
        if isinstance(value, (list, tuple)):
            return list(value)
        if isinstance(value, dict):
            return list(value)
        if isinstance(value, AnyOf):
            out: List[Any] = []
            for opt in value.options:
                elems = self._iter_elements(opt)
                if elems is None:
                    return None
                out.extend(elems)
            return out
        return None

    # -- statement walk ---------------------------------------------------------

    def visit_body(self, body: List[ast.stmt]) -> None:
        for stmt in body:
            self.visit_stmt(stmt)

    def visit_stmt(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, ast.Assign):
            if len(stmt.targets) > 1:
                self.not_transpilable()
            self.visit_expr(stmt.value)
            for target in stmt.targets:
                self.visit_target(target, stmt.value)
        elif isinstance(stmt, ast.AugAssign):
            self.not_transpilable()
            self.visit_expr(stmt.value)
            self.visit_aug_target(stmt.target)
        elif isinstance(stmt, ast.AnnAssign):
            self.not_transpilable()
            if stmt.value is not None:
                self.visit_expr(stmt.value)
            if isinstance(stmt.target, ast.Name):
                self.assign_local(stmt.target.id, self.resolve(stmt.value)
                                  if stmt.value is not None else _FAIL)
        elif isinstance(stmt, ast.Expr):
            if isinstance(stmt.value, ast.Constant):
                return  # docstring
            self.visit_expr(stmt.value)
        elif isinstance(stmt, ast.If):
            self.visit_expr(stmt.test, truth=True)
            self.visit_body(stmt.body)
            self.visit_body(stmt.orelse)
        elif isinstance(stmt, (ast.For, ast.While)):
            self.not_transpilable()
            self.visit_loop(stmt)
        elif isinstance(stmt, ast.Return):
            if stmt.value is not None:
                self.not_transpilable()
                self.visit_expr(stmt.value)
            else:
                # A bare `return` early-exits the process; later statements
                # may not run, which a statement-split schedule cannot model.
                self.not_transpilable()
        elif isinstance(stmt, (ast.Pass,)):
            return
        elif isinstance(stmt, ast.Assert):
            self.not_transpilable()
            self.visit_expr(stmt.test, truth=True)
            if stmt.msg is not None:
                self.visit_expr(stmt.msg)
        elif isinstance(stmt, ast.Raise):
            # Raising aborts the simulation; it cannot hide signal traffic.
            self.not_transpilable()
            if stmt.exc is not None and not isinstance(stmt.exc, ast.Call):
                self.visit_expr(stmt.exc)
        elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                               ast.ClassDef, ast.Import, ast.ImportFrom,
                               ast.Global, ast.Nonlocal)):
            self.not_transpilable()
            self.bail(f"unsupported statement {type(stmt).__name__}")
        else:
            self.not_transpilable()
            self.bail(f"unsupported statement {type(stmt).__name__}")

    def visit_loop(self, stmt) -> None:
        if isinstance(stmt, ast.While):
            self.visit_expr(stmt.test, truth=True)
            for _ in range(2):  # second pass: aliases assigned in the body
                self.visit_body(stmt.body)
            self.visit_body(stmt.orelse)
            return
        self.visit_expr(stmt.iter)
        self.bind_loop_target(stmt.target, stmt.iter)
        for _ in range(2):
            self.visit_body(stmt.body)
        self.visit_body(stmt.orelse)

    def bind_loop_target(self, target: ast.expr, iter_node: ast.expr) -> None:
        """Bind loop targets to element unions when the iterable resolves."""
        elements: Optional[List[Any]] = None
        enumerated = False
        if isinstance(iter_node, ast.Call):
            func = self.resolve(iter_node.func)
            if func is enumerate and iter_node.args:
                elements = self._iter_elements(self.resolve(iter_node.args[0]))
                enumerated = True
            elif func is range:
                elements = []  # targets are plain ints: no aliases
        if elements is None and not enumerated:
            elements = self._iter_elements(self.resolve(iter_node))

        def union(elems: Optional[List[Any]]) -> Any:
            if not elems:
                return _FAIL
            return AnyOf(elems) if len(elems) > 1 else elems[0]

        if enumerated and isinstance(target, ast.Tuple) and len(target.elts) == 2:
            self.assign_local_target(target.elts[0], _FAIL)
            self.assign_local_target(target.elts[1], union(elements))
        else:
            self.assign_local_target(target, union(elements))

    def assign_local_target(self, target: ast.expr, value: Any) -> None:
        if isinstance(target, ast.Name):
            self.assign_local(target.id, value)
        elif isinstance(target, ast.Tuple):
            for elt in target.elts:
                self.assign_local_target(elt, _FAIL)
        # Attribute/Subscript loop targets would mutate structure: bail.
        elif isinstance(target, (ast.Attribute, ast.Subscript)):
            self.bail("loop target mutates an attribute or subscript")

    def assign_local(self, name: str, value: Any) -> None:
        """Record a local binding, accumulating unions across branches."""
        self.stmt_locals.add(name)
        previous = self.locals.get(name, None)
        if previous is None:
            self.locals[name] = value
            return
        if previous is _FAIL or value is _FAIL:
            self.locals[name] = _FAIL
            return
        if previous is value:
            return
        self.locals[name] = AnyOf([previous, value])

    # -- assignment targets -----------------------------------------------------

    def visit_target(self, target: ast.expr, value_node: ast.expr) -> None:
        if isinstance(target, ast.Name):
            self.assign_local(target.id, self.resolve(value_node))
            return
        if isinstance(target, ast.Attribute):
            if target.attr == "next":
                base = self.resolve(target.value)
                if base is _FAIL:
                    self.not_transpilable()
                    self.bail(f"cannot resolve write target "
                              f"{ast.dump(target)[:60]}")
                    return
                if _contains_signal(base):
                    self.write_signal(base)
                    self.note(target, base)
                    if isinstance(base, AnyOf):
                        self.not_transpilable()
                    return
            # Writing some other attribute (Python-side state) does not touch
            # the signal graph but cannot be transpiled.
            self.not_transpilable()
            self.visit_expr(target.value)
            return
        if isinstance(target, ast.Subscript):
            base = self.resolve(target.value)
            if isinstance(base, Memory) or (
                    isinstance(base, AnyOf)
                    and any(isinstance(o, Memory) for o in base.options)):
                self.write_signal(base)
                self.note(target, base)
                self.not_transpilable()  # comb memory writes stay interpreted
                self.visit_expr(target.slice)
                return
            if base is _FAIL:
                self.not_transpilable()
                self.bail("cannot resolve subscript write target")
                return
            if _contains_signal(base):
                self.not_transpilable()
                self.bail("subscript store into a container of signals")
                return
            self.not_transpilable()
            self.visit_expr(target.slice)
            return
        if isinstance(target, (ast.Tuple, ast.List)):
            self.not_transpilable()
            for elt in target.elts:
                self.visit_target(elt, value_node)
            return
        self.not_transpilable()
        self.bail(f"unsupported assignment target {type(target).__name__}")

    def visit_aug_target(self, target: ast.expr) -> None:
        """``x += ...`` — target is read and written."""
        if isinstance(target, ast.Name):
            self.assign_local(target.id, _FAIL)
            return
        if isinstance(target, ast.Attribute) and target.attr == "next":
            base = self.resolve(target.value)
            if base is _FAIL:
                self.bail("cannot resolve augmented write target")
                return
            if _contains_signal(base):
                self.write_signal(base)
                self.read_signal(base)
                return
        if isinstance(target, ast.Attribute):
            self.visit_expr(target.value)
            return
        if isinstance(target, ast.Subscript):
            base = self.resolve(target.value)
            if isinstance(base, Memory):
                self.mem_writes.add(base)
                self.mem_reads.add(base)
                self.visit_expr(target.slice)
                return
            self.visit_expr(target.value)
            self.visit_expr(target.slice)
            return
        self.bail(f"unsupported augmented target {type(target).__name__}")

    # -- expressions ------------------------------------------------------------

    def visit_expr(self, node: ast.expr, truth: bool = False) -> None:
        if isinstance(node, ast.Constant):
            return
        if isinstance(node, ast.Attribute):
            if node.attr in ("value", "bits", "next"):
                base = self.resolve(node.value)
                if _contains_signal(base):
                    self.read_signal(base)
                    self.note(node, base)
                    if node.attr != "value" or isinstance(base, AnyOf):
                        self.not_transpilable()
                    return
            resolved = self.resolve(node)
            self._expr_resolved(node, resolved, truth)
            return
        if isinstance(node, (ast.Name, ast.Subscript)):
            resolved = self.resolve(node)
            if resolved is not _FAIL and _contains_signal(resolved):
                self._expr_resolved(node, resolved, truth)
                return
            if isinstance(node, ast.Subscript):
                base = self.resolve(node.value)
                if isinstance(base, Memory) or (
                        isinstance(base, AnyOf)
                        and any(isinstance(o, Memory) for o in base.options)):
                    self.read_signal(base)
                    self.note(node, base)
                    self.visit_expr(node.slice)
                    return
                if base is _FAIL:
                    # e.g. subscripting a runtime value; analyse children.
                    self.visit_expr(node.value)
                    self.visit_expr(node.slice)
                    self.not_transpilable()
                    return
                # Subscript of plain data (list of ints...): deps only via
                # the index expression.
                self.visit_expr(node.slice)
                if not isinstance(node.slice, ast.Constant):
                    self.not_transpilable()
                elif not isinstance(base, (list, tuple, dict, str, bytes)):
                    self.not_transpilable()
                else:
                    resolved_const = self._resolve_subscript(
                        base, self.resolve(node.slice))
                    if not _is_literal(resolved_const):
                        self.not_transpilable()
                    else:
                        self.note(node, resolved_const)
                return
            # Plain name: a runtime local or a resolvable constant.
            if isinstance(node, ast.Name) and node.id in self.locals:
                value = self.locals[node.id]
                if value is not _FAIL and _contains_signal(value):
                    self._expr_resolved(node, value, truth)
                return
            if resolved is not _FAIL and not _is_literal(resolved):
                # Non-literal constant (object reference) used bare: fine for
                # analysis, but the transpiler cannot embed it.
                self.not_transpilable()
            elif resolved is not _FAIL:
                self.note(node, resolved)
            else:
                # An unresolvable bare name could hide anything (even a
                # rebound signal): give up on this process entirely.
                self.not_transpilable()
                self.bail(f"cannot resolve name {getattr(node, 'id', '?')!r}")
            return
        if isinstance(node, ast.Call):
            self.visit_call(node)
            return
        if isinstance(node, ast.BoolOp):
            for value in node.values:
                self.visit_expr(value, truth=True)
            return
        if isinstance(node, ast.UnaryOp):
            self.visit_expr(node.operand, truth=isinstance(node.op, ast.Not))
            return
        if isinstance(node, ast.BinOp):
            self.visit_expr(node.left)
            self.visit_expr(node.right)
            return
        if isinstance(node, ast.Compare):
            self.visit_expr(node.left)
            for comp in node.comparators:
                self.visit_expr(comp)
            return
        if isinstance(node, ast.IfExp):
            self.visit_expr(node.test, truth=True)
            self.visit_expr(node.body, truth=truth)
            self.visit_expr(node.orelse, truth=truth)
            return
        if isinstance(node, (ast.List, ast.Tuple, ast.Set)):
            self.not_transpilable()
            for elt in node.elts:
                self.visit_expr(elt)
            return
        if isinstance(node, ast.Dict):
            self.not_transpilable()
            for key in node.keys:
                if key is not None:
                    self.visit_expr(key)
            for value in node.values:
                self.visit_expr(value)
            return
        if isinstance(node, (ast.ListComp, ast.SetComp, ast.GeneratorExp)):
            self.not_transpilable()
            self.visit_comprehension(node.generators, [node.elt])
            return
        if isinstance(node, ast.DictComp):
            self.not_transpilable()
            self.visit_comprehension(node.generators, [node.key, node.value])
            return
        if isinstance(node, ast.JoinedStr):
            self.not_transpilable()
            for value in node.values:
                if isinstance(value, ast.FormattedValue):
                    self.visit_expr(value.value)
            return
        if isinstance(node, ast.Starred):
            self.not_transpilable()
            self.visit_expr(node.value)
            return
        if isinstance(node, ast.Slice):
            for part in (node.lower, node.upper, node.step):
                if part is not None:
                    self.visit_expr(part)
            self.not_transpilable()
            return
        if isinstance(node, ast.Lambda):
            self.not_transpilable()
            self.bail("lambda inside a combinational process")
            return
        self.not_transpilable()
        self.bail(f"unsupported expression {type(node).__name__}")

    def _expr_resolved(self, node: ast.expr, resolved: Any,
                       truth: bool) -> None:
        """An expression resolving to a compile-time object, used bare."""
        if resolved is _FAIL:
            self.not_transpilable()
            self.bail(f"cannot resolve {ast.dump(node)[:60]}")
            return
        if _contains_signal(resolved):
            # A bare Signal read (truthiness, int()...): depends on its value.
            self.read_signal(resolved)
            self.note(node, resolved)
            if not truth or isinstance(resolved, AnyOf) or not isinstance(
                    resolved, Signal):
                self.not_transpilable()
            return
        if _is_literal(resolved):
            self.note(node, resolved)
            return
        self.not_transpilable()

    def visit_comprehension(self, generators, elements) -> None:
        for gen in generators:
            self.visit_expr(gen.iter)
            self.bind_loop_target(gen.target, gen.iter)
            for cond in gen.ifs:
                self.visit_expr(cond, truth=True)
        for _ in range(2):
            for element in elements:
                self.visit_expr(element)

    # -- calls ------------------------------------------------------------------

    def visit_call(self, node: ast.Call) -> None:
        func = self.resolve(node.func)
        bound_self = None
        if func is _FAIL and isinstance(node.func, ast.Attribute):
            base = self.resolve(node.func.value)
            if base is not _FAIL and not isinstance(base, AnyOf):
                method = inspect.getattr_static(type(base), node.func.attr, _FAIL) \
                    if not inspect.isclass(base) else _FAIL
                if callable(method) and method is not _FAIL:
                    func, bound_self = method, base
        elif isinstance(node.func, ast.Attribute) and callable(func) \
                and not isinstance(func, type):
            base = self.resolve(node.func.value)
            if base is not _FAIL and not isinstance(base, AnyOf) \
                    and not inspect.ismodule(base) and not inspect.isclass(base):
                bound_self = base

        # fsm.is_in("NAME"): reads the FSM state register; transpiles to an
        # integer comparison against the state's encoding.
        if isinstance(node.func, ast.Attribute) and node.func.attr == "is_in" \
                and len(node.args) == 1 and not node.keywords:
            base = self.resolve(node.func.value)
            state_name = self.resolve(node.args[0])
            if base is not _FAIL and not isinstance(base, AnyOf) \
                    and _is_fsm_like(base) and isinstance(state_name, str):
                self.reads.add(base.state)
                try:
                    code = base.encode(state_name)
                except Exception:
                    self.bail(f"unknown FSM state {state_name!r}")
                    return
                self.note(node, (base.state, code))
                return

        # getattr(obj, "attr") resolving to a signal: handled by resolve();
        # the caller records the read via the surrounding .value access.
        if func is getattr:
            resolved = self.resolve(node)
            if resolved is not _FAIL and _contains_signal(resolved):
                self.note(node, resolved)
                return
            for arg in node.args:
                self.visit_expr(arg)
            self.not_transpilable()
            return

        if func in _SAFE_CALLS:
            truth = func in (int, bool)
            for arg in node.args:
                self.visit_expr(arg, truth=truth)
            for kw in node.keywords:
                self.visit_expr(kw.value)
            self.not_transpilable()
            return

        if func is _FAIL or not callable(func):
            self.not_transpilable()
            self.bail(f"cannot resolve call {ast.dump(node.func)[:60]}")
            for arg in node.args:
                self.visit_expr(arg)
            for kw in node.keywords:
                self.visit_expr(kw.value)
            return

        # A resolvable helper: analyse its body recursively.  The callee's
        # reads/writes land in the *caller's current* sets so statement-level
        # attribution stays correct.
        self.not_transpilable()
        for arg in node.args:
            self.visit_expr(arg)
        for kw in node.keywords:
            self.visit_expr(kw.value)
        self.recurse_into(func, bound_self)

    def recurse_into(self, func: Callable, bound_self: Any) -> None:
        if isinstance(func, (classmethod, staticmethod)):
            func = func.__func__
        inner = getattr(func, "__func__", func)  # unwrap bound methods
        key = (inner, id(bound_self))
        if key in self.call_stack:
            return
        if self.depth >= _MAX_CALL_DEPTH:
            self.bail(f"call depth limit at {getattr(inner, '__name__', inner)}")
            return
        if not inspect.isfunction(inner):
            self.bail(f"cannot analyse call target {inner!r}")
            return
        parsed = _parse_proc(inner)
        if parsed is None:
            self.bail(f"no source for {getattr(inner, '__name__', inner)}")
            return
        sub = _Analyzer(self.analysis, _closure_env(inner),
                        depth=self.depth + 1,
                        call_stack=self.call_stack | {key})
        sub.reads = self.reads
        sub.writes = self.writes
        sub.mem_reads = self.mem_reads
        sub.mem_writes = self.mem_writes
        params = [a.arg for a in parsed.args.args + parsed.args.kwonlyargs]
        if parsed.args.vararg:
            params.append(parsed.args.vararg.arg)
        if parsed.args.kwarg:
            params.append(parsed.args.kwarg.arg)
        for param in params:
            sub.locals[param] = _FAIL
        actual_self = getattr(func, "__self__", bound_self)
        if params and actual_self is not None:
            sub.locals[params[0]] = actual_self
        # Recursion only needs reads/writes; transpilability is already off.
        sub.visit_body(parsed.body)


def _expand(obj: Any):
    if isinstance(obj, AnyOf):
        for opt in obj.options:
            yield from _expand(opt)
    else:
        yield obj


def _contains_signal(obj: Any) -> bool:
    return any(isinstance(o, (Signal, Memory)) for o in _expand(obj))


def _is_literal(obj: Any) -> bool:
    """Values the transpiler may embed as literals in generated source."""
    return obj is None or isinstance(obj, (int, bool, str))


def analyze_proc(proc: Callable[[], None]) -> ProcAnalysis:
    """Analyse one combinational process.

    Returns a :class:`ProcAnalysis` whose ``reads``/``writes`` over-approximate
    every branch of the process.  A declared sensitivity list
    (``Component.comb(..., sensitivity=...)``) is honoured as additional
    reads, mirroring the event-driven scheduler's trust in declared lists.
    """
    analysis = ProcAnalysis(proc=proc)
    parsed = _parse_proc(proc)
    if parsed is None:
        analysis.opaque = True
        analysis.opaque_reasons.append("source unavailable")
        return analysis
    walker = _Analyzer(analysis, _closure_env(proc))
    units: List[StatementUnit] = []
    splittable = True
    for stmt in parsed.body:
        if isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Constant):
            continue  # docstring
        # Give the walker fresh per-statement sets: a signal read by two
        # statements must appear in *both* units' read sets, or the second
        # one loses its scheduling edge.
        walker.reads = set()
        walker.writes = set()
        walker.mem_reads = set()
        walker.mem_writes = set()
        walker.stmt_transpilable = True
        walker.stmt_locals = set()
        walker.visit_stmt(stmt)
        analysis.reads |= walker.reads
        analysis.writes |= walker.writes
        analysis.mem_reads |= walker.mem_reads
        analysis.mem_writes |= walker.mem_writes
        unit = StatementUnit(
            node=stmt,
            reads=walker.reads,
            writes=walker.writes,
            mem_reads=walker.mem_reads,
            mem_writes=walker.mem_writes,
            locals_touched=set(walker.stmt_locals),
        )
        # Locals *read* by this statement also order it after their defs.
        unit.locals_touched |= _locals_used(stmt, walker)
        units.append(unit)
        if not walker.stmt_transpilable:
            splittable = False
    declared = getattr(proc, "sensitivity", None)
    if declared is not None:
        for obj in declared:
            if isinstance(obj, Signal):
                analysis.reads.add(obj)
            elif isinstance(obj, Memory):
                analysis.mem_reads.add(obj)
    analysis.local_names = set(walker.locals)
    # A declared sensitivity list applies to the whole process, so such a
    # process is kept as a single call unit rather than split.
    if splittable and not analysis.opaque and units and declared is None:
        analysis.units = units
    return analysis


def _locals_used(stmt: ast.stmt, walker: _Analyzer) -> Set[str]:
    """Names of process-local temporaries referenced anywhere in ``stmt``."""
    used: Set[str] = set()
    for node in ast.walk(stmt):
        if isinstance(node, ast.Name) and node.id in walker.locals:
            used.add(node.id)
    return used
