"""Rebind a batched program to a sibling design without re-emitting.

:func:`~repro.rtl.compile.emit_batched.emit_batched_program` costs tens of
milliseconds per design instance — the dominant cost of constructing a
:class:`~repro.rtl.batch.BatchedSimulator` over N structurally identical
lanes, because the naive path pays it N times just to compare signatures.
This module replaces N-1 of those emissions with a cheap structural proof:
if a sibling design is *recipe-identical* to the reference lane, the
reference source text applies verbatim and only the live-object registries
(signals, memories, attr rows, gather/append lists, per-lane call plans)
need swapping for the sibling's own objects.

"Recipe-identical" is decided conservatively.  Emission resolves Python
state reachable from each process's closure (``_closure_env`` +
``resolve`` in :mod:`.analyze`) and bakes three kinds of lane-specific
facts into the source:

* scalar attribute values folded to constants (``self.capacity`` -> 32),
* container *elements* read at compile time (const subscripts, ``len()``,
  ``in`` folds — including failed subscripts, since out-of-range reads
  demote code paths and the sibling must demote identically),
* results of methods that *ran* at compile time (FSM state encoders).

``emit_batched_program`` records all three on the program
(``bake_attrs`` / ``bake_containers`` / ``bake_calls``).  Rebinding first
re-checks every record against the reference design itself — a cached
reference whose design mutated since emission is rejected, so programs
may be reused across constructions — then walks the reference and
sibling closure graphs in lockstep, building an injective correspondence
``reference object -> sibling object``, and value-checks exactly the
recorded facts on the sibling side.  Containers that were never read at
compile time (per-lane stimulus frames, sink lists) are structure-checked
only, which is what lets lanes carry different data.  *Any* structural
doubt — unmatched type, missing ``__dict__``, inconsistent mapping,
unverifiable bake — abandons the rebind by returning ``None``; the caller
falls back to a full emission and the existing signature comparison, so a
wrong ``None`` costs time, never correctness.
"""

from __future__ import annotations

import inspect
import types
from dataclasses import replace
from typing import Any, Callable, Dict, List, Optional, Set, Tuple

import numpy as _np

from ..component import Memory
from ..signal import Signal
from .emit_batched import (
    CALL_RAISED,
    BatchedProgram,
    _active_batched_mutations,
    container_fingerprint,
)

__all__ = ["rebind_batched_program"]

#: Immutable leaf values compared by ``type`` and (at value positions)
#: ``==``.  The strict ``type(r) is type(l)`` check keeps ``True`` and
#: ``1`` distinct, matching how the emitter folds them.
_SCALARS = (bool, int, float, complex, str, bytes)


class _Bail(Exception):
    """Internal: abandon the rebind (caller re-emits in full)."""


class _Correspondence:
    """Lockstep walk of two object graphs, reference vs. sibling lane.

    ``mapping`` sends reference object ids to sibling objects;
    ``inverse`` ids enforce injectivity (two reference objects may not
    claim the same sibling object — the emitter folds ``is`` comparisons
    of resolved objects, so aliasing structure must match exactly).
    ``shared`` collects ids of objects *identical* in both graphs
    (classes, module-level tables): for those the reference object itself
    is the sibling-side owner.
    """

    def __init__(self, recorded: Set[int]) -> None:
        self.mapping: Dict[int, Any] = {}
        self.inverse: Set[int] = set()
        self.shared: Set[int] = set()
        self.recorded = recorded
        # Keep every walked reference object alive for the duration of
        # the walk: ``id()`` keys are only meaningful while the object
        # they named is.  (Sibling objects stay alive as mapping values.)
        self._pins: List[Any] = []

    # -- lookup used while relocating registries -------------------------------

    def lane_object(self, ref_obj: Any) -> Any:
        """The sibling-side stand-in for ``ref_obj`` (or raise _Bail)."""
        key = id(ref_obj)
        if key in self.mapping:
            return self.mapping[key]
        if key in self.shared:
            return ref_obj
        raise _Bail(f"no correspondence for {type(ref_obj).__name__}")

    # -- the walk --------------------------------------------------------------

    def match(self, r: Any, l: Any, value: bool = False) -> None:
        """Require ``l`` to stand in for ``r``; raise :class:`_Bail` if not.

        ``value=True`` compares scalars by value (closure roots, function
        defaults, recorded-container elements); otherwise scalars are
        type-checked only — instance attributes whose values matter were
        either promoted to per-lane rows (relocated later) or recorded in
        ``bake_attrs`` (verified later).
        """
        if r is l:
            # One shared object (class, module table, interned scalar):
            # nothing lane-specific can hide here unless it is mutable
            # and lane-written, which the emitter never resolves through.
            self.shared.add(id(r))
            self._pins.append(r)
            return
        if isinstance(r, _SCALARS) or isinstance(l, _SCALARS):
            if type(r) is not type(l):
                raise _Bail("scalar type mismatch")
            if value and r != l:
                raise _Bail("scalar value mismatch at a baked position")
            return
        if r is None or l is None:
            raise _Bail("None vs object")
        key = id(r)
        if key in self.mapping:
            if self.mapping[key] is not l:
                raise _Bail("inconsistent correspondence")
            return
        if type(r) is not type(l):
            raise _Bail("type mismatch")
        if isinstance(r, (type, types.ModuleType)):
            # Distinct classes/modules of equal type: resolution results
            # (getattr_static on classes, module globals) could differ in
            # ways no recorded bake captures.  Identity or bust.
            raise _Bail("distinct classes/modules")
        self.mapping[key] = l
        self._pins.append(r)
        if id(l) in self.inverse:
            raise _Bail("correspondence is not injective")
        self.inverse.add(id(l))
        self._dispatch(r, l, value)

    def _dispatch(self, r: Any, l: Any, value: bool) -> None:
        if isinstance(r, Signal):
            if r._mask != l._mask:
                raise _Bail("signal width mismatch")
            return
        if isinstance(r, Memory):
            if r.depth != l.depth or r._mask != l._mask:
                raise _Bail("memory shape mismatch")
            return
        if isinstance(r, _np.ndarray):
            # Runtime state (lane rows): the emitter never reads ndarray
            # contents at compile time.
            return
        if isinstance(r, types.FunctionType):
            self._match_function(r, l)
            return
        if isinstance(r, types.MethodType):
            if r.__func__.__code__ is not l.__func__.__code__:
                raise _Bail("bound method code mismatch")
            self.match(r.__self__, l.__self__)
            return
        if isinstance(r, (list, tuple)):
            self._match_sequence(r, l, value)
            return
        if isinstance(r, dict):
            self._match_dict(r, l, value)
            return
        if isinstance(r, (set, frozenset)):
            # Resolution never folds set *elements* (record_container
            # skips sets), so contents are runtime payload.
            return
        # Generic instance: walk the attribute dict.  Objects without one
        # (__slots__, C extensions) bail — the emitter may have resolved
        # through state this walk cannot see.
        try:
            r_vars, l_vars = vars(r), vars(l)
        except TypeError:
            raise _Bail(f"opaque instance of {type(r).__name__}")
        if r_vars.keys() != l_vars.keys():
            raise _Bail("instance attribute sets differ")
        for name, r_val in r_vars.items():
            self.match(r_val, l_vars[name])

    def _match_function(self, r: Any, l: Any) -> None:
        if r.__code__ is not l.__code__:
            raise _Bail("function code mismatch")
        r_d = r.__defaults__ or ()
        l_d = l.__defaults__ or ()
        if len(r_d) != len(l_d):
            raise _Bail("function default arity mismatch")
        for r_val, l_val in zip(r_d, l_d):
            # Helper-call inlining binds defaults as compile-time consts.
            self.match(r_val, l_val, value=True)
        r_cells = r.__closure__ or ()
        l_cells = l.__closure__ or ()
        if len(r_cells) != len(l_cells):
            raise _Bail("closure shape mismatch")
        for r_cell, l_cell in zip(r_cells, l_cells):
            try:
                r_val = r_cell.cell_contents
            except ValueError:
                try:
                    l_cell.cell_contents
                except ValueError:
                    continue  # both unset: _closure_env drops the name
                raise _Bail("closure cell set on one side only")
            try:
                l_val = l_cell.cell_contents
            except ValueError:
                raise _Bail("closure cell set on one side only")
            # Closure roots are exactly what ``resolve`` reads: scalars
            # here were baked as constants, so value-compare them.
            self.match(r_val, l_val, value=True)

    def _match_sequence(self, r: Any, l: Any, value: bool) -> None:
        full = id(r) in self.recorded
        if not full and _pure_data(r) and _pure_data(l):
            # Never read at compile time and nothing resolvable hides
            # inside: this is lane payload (stimulus frames, sink
            # contents) and is allowed to differ, even in length.
            return
        if len(r) != len(l):
            raise _Bail("sequence length mismatch")
        for r_val, l_val in zip(r, l):
            self.match(r_val, l_val, value=value or full)

    def _match_dict(self, r: Any, l: Any, value: bool) -> None:
        full = id(r) in self.recorded
        if not full and _pure_data(r) and _pure_data(l):
            return
        if r.keys() != l.keys():
            # Keys compare by ==: object keys with default equality fail
            # across lanes, which is the conservative outcome.
            raise _Bail("dict key sets differ")
        for name, r_val in r.items():
            self.match(r_val, l[name], value=value or full)


def _pure_data(obj: Any, _depth: int = 0) -> bool:
    """True when ``obj`` is (nested) scalars only — nothing resolvable.

    A recorded container can never hide below an unrecorded pure parent:
    recording happens at subscript/len/in sites, whose *base* object was
    itself reached through resolution, so every recorded container is
    reachable through edges the correspondence walk traverses.
    """
    if _depth > 8:
        return False
    if obj is None or isinstance(obj, _SCALARS):
        return True
    if isinstance(obj, (list, tuple, set, frozenset)):
        return all(_pure_data(x, _depth + 1) for x in obj)
    if isinstance(obj, dict):
        return all(isinstance(k, _SCALARS) and _pure_data(v, _depth + 1)
                   for k, v in obj.items())
    return False


def _static_attr(owner: Any, attr: str) -> Any:
    try:
        return inspect.getattr_static(owner, attr)
    except AttributeError:
        raise _Bail(f"missing attribute {attr!r}")


def _probe_call(owner: Any, method: str, args: Tuple) -> Any:
    """Re-run a compile-time method call, mapping any raise to a marker."""
    func = getattr(owner, method, None)
    if func is None:
        raise _Bail(f"missing method {method!r}")
    try:
        return func(*args)
    except Exception:
        return CALL_RAISED


def _same_result(got: Any, recorded: Any) -> bool:
    if recorded is CALL_RAISED or got is CALL_RAISED:
        return got is recorded
    return type(got) is type(recorded) and got == recorded


def rebind_batched_program(reference: BatchedProgram, top: Any,
                           max_settle: int = 64,
                           mutations: Optional[Tuple[str, ...]] = None,
                           ) -> Optional[BatchedProgram]:
    """Bind ``reference``'s generated source to sibling design ``top``.

    Returns a :class:`BatchedProgram` sharing the reference's source text
    (hence trivially signature-identical) with ``top``'s own live-object
    registries, or ``None`` when ``top`` cannot be *proven* to emit the
    same source — the caller must then fall back to
    :func:`emit_batched_program`.  Every bail is conservative: a ``None``
    for a truly compatible design only costs the emission we were trying
    to skip.
    """
    if mutations is None:
        mutations = _active_batched_mutations()
    if tuple(reference.report.mutations) != tuple(mutations):
        return None  # the reference source baked different seeded faults
    if reference.max_settle != max_settle:
        return None
    try:
        return _rebind(reference, top)
    except _Bail:
        return None


def _check_reference_drift(reference: BatchedProgram) -> None:
    """Reject a reference whose design mutated since emission.

    Within one construction this is a no-op by definition; it is what
    makes holding a reference in a cross-construction cache sound — every
    value the source baked is re-derived from the reference design and
    compared against the emission-time record.
    """
    for owner, attr, value in reference.bake_attrs:
        current = _static_attr(owner, attr)
        if type(current) is not type(value) or current != value:
            raise _Bail("reference attribute drifted since emission")
    for container, fingerprint in reference.bake_containers:
        if container_fingerprint(container) != fingerprint:
            raise _Bail("reference container drifted since emission")
    for owner, method, args, result in reference.bake_calls:
        if not _same_result(_probe_call(owner, method, args), result):
            raise _Bail("reference call result drifted since emission")


def _rebind(reference: BatchedProgram, top: Any) -> BatchedProgram:
    signals: List[Signal] = top.all_signals()
    memories: List[Memory] = top.all_memories()
    comb_procs: List[Callable] = top.all_comb_procs()
    seq_procs: List[Callable] = top.all_seq_procs()
    if (len(signals) != len(reference.signals)
            or len(memories) != len(reference.memories)
            or len(comb_procs) != len(reference.comb_procs)
            or len(seq_procs) != len(reference.seq_procs)):
        raise _Bail("registry shape mismatch")

    _check_reference_drift(reference)
    corr = _Correspondence(
        recorded={id(c) for c, _fp in reference.bake_containers})

    # Pin the slot order first: signal/memory correspondence by position
    # is what the generated slot indices assume.  Then walk every process
    # pair — their closures reach all Python state emission resolved.
    for r_sig, l_sig in zip(reference.signals, signals):
        corr.match(r_sig, l_sig)
    for r_mem, l_mem in zip(reference.memories, memories):
        corr.match(r_mem, l_mem)
    for r_proc, l_proc in zip(reference.comb_procs + reference.seq_procs,
                              comb_procs + seq_procs):
        corr.match(r_proc, l_proc)

    # Verify every scalar the emitter folded into the source holds the
    # same value on this lane's owners, and every compile-time method
    # call reproduces its recorded result.
    for owner, attr, value in reference.bake_attrs:
        lane_value = _static_attr(corr.lane_object(owner), attr)
        if type(lane_value) is not type(value) or lane_value != value:
            raise _Bail("baked attribute value differs")
    for owner, method, args, result in reference.bake_calls:
        lane_owner = corr.lane_object(owner)
        if not _same_result(_probe_call(lane_owner, method, args), result):
            raise _Bail("compile-time call result differs")

    # Relocate the live-object registries onto this lane's objects.
    attr_slots = []
    for owner, attr in reference.attr_slots:
        lane_owner = corr.lane_object(owner)
        if not isinstance(_static_attr(lane_owner, attr), int):
            raise _Bail("promoted attribute is not an int on this lane")
        attr_slots.append((lane_owner, attr))
    gather_lists = []
    for lst in reference.gather_lists:
        lane_lst = corr.lane_object(lst)
        if not isinstance(lane_lst, list) or not all(
                isinstance(x, int) for x in lane_lst):
            raise _Bail("gather list is not all-int on this lane")
        gather_lists.append(lane_lst)
    append_lists = []
    for lst in reference.append_lists:
        lane_lst = corr.lane_object(lst)
        if not isinstance(lane_lst, list):
            raise _Bail("append target is not a list on this lane")
        append_lists.append(lane_lst)

    def relocate(plan, procs):
        if not 0 <= plan.proc_index < len(procs):
            raise _Bail("per-lane call plan lost its process index")
        return replace(plan, proc=procs[plan.proc_index])

    comb_calls = [relocate(plan, comb_procs)
                  for plan in reference.comb_calls]
    seq_calls = [relocate(plan, seq_procs)
                 for plan in reference.seq_calls]

    return BatchedProgram(
        source=reference.source,
        report=reference.report,
        signals=signals,
        memories=memories,
        max_settle=reference.max_settle,
        attr_slots=attr_slots,
        gather_lists=gather_lists,
        append_lists=append_lists,
        comb_calls=comb_calls,
        seq_calls=seq_calls,
        comb_procs=comb_procs,
        seq_procs=seq_procs,
        # Bake records stay with the reference's objects on purpose: a
        # rebound program is a *product*, not a rebind reference — using
        # it as one simply bails and re-emits.
    )
