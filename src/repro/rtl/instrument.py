"""Process-wide instrumentation counters.

The serve layer's core promise — a warm persistent cache performs **zero**
simulations — is only provable if "a simulation happened" is observable
from outside the simulator.  This module is that observation point: a tiny
named-counter registry that the simulator constructors bump and that tests
(and the service's status endpoints) read.

Counters are deliberately process-global and monotonic; callers that need
a delta snapshot around a region use :func:`snapshot` / :func:`delta`::

    before = snapshot()
    runner.run(points)          # should be fully cache-served
    assert delta(before)["simulator_constructions"] == 0

The registry is not thread-synchronised beyond the GIL's int-add atomicity,
which is sufficient for counting; worker *processes* each count in their
own registry (the job layer aggregates shard counts explicitly).
"""

from __future__ import annotations

from typing import Dict, Optional

#: Names bumped by the RTL layer itself.  Other layers may register their
#: own names freely — the registry is open.
SIMULATOR_CONSTRUCTIONS = "simulator_constructions"
BATCHED_CONSTRUCTIONS = "batched_simulator_constructions"

_counters: Dict[str, int] = {}


def bump(name: str, amount: int = 1) -> int:
    """Increment ``name`` and return its new value."""
    value = _counters.get(name, 0) + amount
    _counters[name] = value
    return value


def value(name: str) -> int:
    """Current value of ``name`` (0 if never bumped)."""
    return _counters.get(name, 0)


def snapshot() -> Dict[str, int]:
    """Copy of every counter, for later :func:`delta` comparison."""
    return dict(_counters)


def delta(before: Dict[str, int],
          after: Optional[Dict[str, int]] = None) -> Dict[str, int]:
    """Per-counter difference between two snapshots (``after`` = now)."""
    if after is None:
        after = snapshot()
    names = set(before) | set(after)
    return {name: after.get(name, 0) - before.get(name, 0) for name in names}


def simulations_since(before: Dict[str, int]) -> int:
    """Total simulator constructions (scalar + batched) since ``before``.

    The acceptance metric of the persistent-store layer: a warm re-sweep
    must leave this at exactly 0.
    """
    diff = delta(before)
    return (diff.get(SIMULATOR_CONSTRUCTIONS, 0)
            + diff.get(BATCHED_CONSTRUCTIONS, 0))
