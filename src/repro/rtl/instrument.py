"""Process-wide instrumentation counters — compat shim over ``repro.obs``.

Historically this module owned a tiny named-counter dict that the
simulator constructors bump and that tests (and the service's status
endpoints) read.  That registry has been absorbed by the unified
telemetry layer: every function here now delegates to the process-global
:data:`repro.obs.metrics.REGISTRY`, so the counters this module reports
and the ones ``GET /metrics`` / ``GET /healthz`` serve are **the same
storage** — bump here, scrape there.

The public contract is unchanged and still what the zero-simulation
assertions are written against::

    before = snapshot()
    runner.run(points)          # should be fully cache-served
    assert delta(before)["simulator_constructions"] == 0

Unlike the original dict (which leaned on the GIL's int-add atomicity),
the backing registry takes a real :class:`threading.Lock` per mutation —
``ThreadingHTTPServer`` handler threads and the job manager's pump
thread bump these counters concurrently.  Worker *processes* still count
in their own registry (the job layer aggregates shard counts explicitly).
"""

from __future__ import annotations

from typing import Dict, Optional

from ..obs.metrics import REGISTRY

#: Names bumped by the RTL layer itself.  Other layers may register their
#: own names freely — the registry is open.
SIMULATOR_CONSTRUCTIONS = "simulator_constructions"
BATCHED_CONSTRUCTIONS = "batched_simulator_constructions"


def bump(name: str, amount: int = 1) -> int:
    """Increment ``name`` and return its new value."""
    return int(REGISTRY.inc(name, amount))


def value(name: str) -> int:
    """Current value of ``name`` (0 if never bumped)."""
    return int(REGISTRY.value(name))


def snapshot() -> Dict[str, int]:
    """Copy of every (unlabeled) counter, for later :func:`delta` comparison."""
    return REGISTRY.counters()


def delta(before: Dict[str, int],
          after: Optional[Dict[str, int]] = None) -> Dict[str, int]:
    """Per-counter difference between two snapshots (``after`` = now)."""
    if after is None:
        after = snapshot()
    names = set(before) | set(after)
    return {name: after.get(name, 0) - before.get(name, 0) for name in names}


def simulations_since(before: Dict[str, int]) -> int:
    """Total simulator constructions (scalar + batched) since ``before``.

    The acceptance metric of the persistent-store layer: a warm re-sweep
    must leave this at exactly 0.
    """
    diff = delta(before)
    return (diff.get(SIMULATOR_CONSTRUCTIONS, 0)
            + diff.get(BATCHED_CONSTRUCTIONS, 0))
