"""Waveform tracing.

Two tracers are provided:

* :class:`Recorder` keeps per-cycle samples of selected signals in memory,
  which tests and the characterisation harness use to measure latencies and
  handshake timing.
* :class:`VCDWriter` writes an IEEE-1364 value-change-dump file, so
  simulations of the reproduced designs can be inspected in GTKWave just like
  the VHDL originals would be.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, TextIO

from .component import Component
from .signal import Signal
from .simulator import Simulator


class Recorder:
    """Sample a set of signals after every simulated cycle."""

    def __init__(self, sim: Simulator, signals: Sequence[Signal]) -> None:
        self._signals = list(signals)
        self._names = [sig.name for sig in self._signals]
        self._rows: List[Dict[str, int]] = []
        self._sim: Optional[Simulator] = sim
        sim.add_watcher(self._sample, on_reset=self.on_reset)

    def detach(self) -> None:
        """Stop sampling: unregister from the simulator (idempotent).

        Recorded rows stay available; detaching lets the simulator be
        reused without this recorder continuing to accumulate samples.
        """
        if self._sim is not None:
            self._sim.remove_watcher(self._sample)
            self._sim = None

    def _sample(self, cycle: int) -> None:
        row = {"cycle": cycle}
        for sig in self._signals:
            row[sig.name] = sig.value
        self._rows.append(row)

    def on_reset(self) -> None:
        """Drop all samples; called by :meth:`Simulator.reset`.

        Without this, post-reset samples would be appended after pre-reset
        rows with clashing (restarted) cycle numbers.
        """
        self._rows.clear()

    @property
    def rows(self) -> List[Dict[str, int]]:
        """All recorded samples, one dict per cycle."""
        return list(self._rows)

    def series(self, name: str) -> List[int]:
        """The value of signal ``name`` over time."""
        return [row[name] for row in self._rows]

    def first_cycle_where(self, name: str, value: int) -> Optional[int]:
        """The first cycle at which ``name`` had ``value``, or ``None``."""
        for row in self._rows:
            if row[name] == value:
                return row["cycle"]
        return None

    def count_cycles_where(self, name: str, value: int) -> int:
        """How many recorded cycles had ``name == value``."""
        return sum(1 for row in self._rows if row[name] == value)


def _vcd_identifiers() -> Iterable[str]:
    """Generate short printable VCD identifiers ('!', '"', '#', ... '!!', ...)."""
    alphabet = [chr(c) for c in range(33, 127)]
    single = list(alphabet)
    for ident in single:
        yield ident
    for first in alphabet:
        for second in alphabet:
            yield first + second


class VCDWriter:
    """Minimal VCD dumper for a component hierarchy.

    The writer registers itself as a simulator watcher; call :meth:`close`
    (or use it as a context manager) when the simulation is finished.
    """

    def __init__(self, sim: Simulator, top: Component, fileobj: TextIO,
                 timescale: str = "1ns", signals: Optional[Sequence[Signal]] = None) -> None:
        self._sim = sim
        self._file = fileobj
        self._signals = list(signals) if signals is not None else top.all_signals()
        idents = _vcd_identifiers()
        self._ids: Dict[Signal, str] = {sig: next(idents) for sig in self._signals}
        self._last: Dict[Signal, Optional[int]] = {sig: None for sig in self._signals}
        self._closed = False
        self._write_header(top, timescale)
        sim.add_watcher(self._on_cycle, on_reset=self.on_reset)

    def _write_header(self, top: Component, timescale: str) -> None:
        out = self._file
        out.write("$date reproduction of DATE'05 iterator pattern $end\n")
        out.write(f"$timescale {timescale} $end\n")
        out.write(f"$scope module {top.name} $end\n")
        for sig in self._signals:
            out.write(f"$var wire {sig.width} {self._ids[sig]} {sig.name} $end\n")
        out.write("$upscope $end\n$enddefinitions $end\n")
        out.write("$dumpvars\n")
        for sig in self._signals:
            self._emit(sig, sig.value)
        out.write("$end\n")

    def _emit(self, sig: Signal, value: int) -> None:
        ident = self._ids[sig]
        if sig.width == 1:
            self._file.write(f"{value}{ident}\n")
        else:
            self._file.write(f"b{value:b} {ident}\n")
        self._last[sig] = value

    def _on_cycle(self, cycle: int) -> None:
        if self._closed:
            return
        self._file.write(f"#{cycle}\n")
        for sig in self._signals:
            if sig.value != self._last[sig]:
                self._emit(sig, sig.value)

    def on_reset(self) -> None:
        """Re-dump every signal at the next cycle marker after a reset.

        A VCD stream cannot be rewound, so the writer instead forgets its
        last-emitted values: the first post-reset sample re-emits the full
        signal state, keeping the dump self-consistent for viewers.
        """
        self._last = {sig: None for sig in self._signals}

    def close(self) -> None:
        """Stop recording and detach from the simulator (idempotent).

        The file object is not closed — the caller owns it.
        """
        if not self._closed:
            self._closed = True
            self._sim.remove_watcher(self._on_cycle)

    def __enter__(self) -> "VCDWriter":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()
