"""Thread-safe process-wide metrics registry.

Three metric kinds, all supporting labeled series:

* **counter** — monotonic; :meth:`MetricsRegistry.inc`.
* **gauge** — last-write-wins; :meth:`MetricsRegistry.set_gauge`.
* **histogram** — bucketed observations with sum and count;
  :meth:`MetricsRegistry.observe`.

One process-global :data:`REGISTRY` is the default sink: the RTL layer's
construction counters (via the :mod:`repro.rtl.instrument` compat shim),
the store's hit/miss accounting, the job manager's shard telemetry and
the exploration runner's cache statistics all land here, and the sweep
server renders the whole registry as Prometheus text exposition on
``GET /metrics`` (:func:`render_prometheus`).

Every mutation takes one :class:`threading.Lock` — ``ThreadingHTTPServer``
handler threads, the job manager's pump thread and test threads all write
concurrently, and "the GIL makes int-add atomic" stopped being a
load-bearing guarantee the moment read-modify-write sequences (histogram
bucket + sum + count) entered the picture.
"""

from __future__ import annotations

import threading
from typing import Dict, Iterable, List, Optional, Tuple

COUNTER = "counter"
GAUGE = "gauge"
HISTOGRAM = "histogram"

#: Default histogram buckets (seconds): log-spaced from 100us to ~100s,
#: sized for the latencies this stack actually produces (settle calls,
#: store I/O, shard evaluations).
DEFAULT_BUCKETS = (0.0001, 0.0005, 0.001, 0.005, 0.01, 0.05, 0.1, 0.5,
                   1.0, 5.0, 10.0, 30.0, 60.0, 120.0)

LabelKey = Tuple[Tuple[str, str], ...]


def _label_key(labels: Dict[str, object]) -> LabelKey:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class _Series:
    """One (name, labels) series of one metric kind."""

    __slots__ = ("kind", "value", "buckets", "bucket_counts", "sum", "count")

    def __init__(self, kind: str,
                 buckets: Optional[Tuple[float, ...]] = None) -> None:
        self.kind = kind
        self.value = 0.0
        if kind == HISTOGRAM:
            self.buckets = buckets or DEFAULT_BUCKETS
            self.bucket_counts = [0] * len(self.buckets)
            self.sum = 0.0
            self.count = 0


class MetricsRegistry:
    """Named, labeled metric series behind one lock.

    Metric kinds are fixed at first use: incrementing a name that was
    previously observed as a histogram raises — silent kind drift would
    corrupt the exposition format.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        #: name -> (kind, {label_key -> _Series})
        self._metrics: Dict[str, Tuple[str, Dict[LabelKey, _Series]]] = {}

    # -- write side --------------------------------------------------------

    def _series(self, name: str, kind: str,
                labels: Dict[str, object]) -> _Series:
        entry = self._metrics.get(name)
        if entry is None:
            entry = (kind, {})
            self._metrics[name] = entry
        elif entry[0] != kind:
            raise ValueError(
                f"metric {name!r} is a {entry[0]}, not a {kind}")
        key = _label_key(labels)
        series = entry[1].get(key)
        if series is None:
            series = entry[1][key] = _Series(kind)
        return series

    def inc(self, name: str, amount: float = 1, **labels) -> float:
        """Increment a counter series; returns the new value."""
        with self._lock:
            series = self._series(name, COUNTER, labels)
            series.value += amount
            return series.value

    def set_gauge(self, name: str, value: float, **labels) -> None:
        """Set a gauge series to ``value``."""
        with self._lock:
            self._series(name, GAUGE, labels).value = value

    def observe(self, name: str, value: float, **labels) -> None:
        """Record one observation into a histogram series."""
        with self._lock:
            series = self._series(name, HISTOGRAM, labels)
            series.sum += value
            series.count += 1
            for i, bound in enumerate(series.buckets):
                if value <= bound:
                    series.bucket_counts[i] += 1
                    break

    # -- read side ---------------------------------------------------------

    def value(self, name: str, **labels) -> float:
        """Current value of a counter/gauge series (0 if never written)."""
        with self._lock:
            entry = self._metrics.get(name)
            if entry is None:
                return 0
            series = entry[1].get(_label_key(labels))
            if series is None or series.kind == HISTOGRAM:
                return 0
            return series.value

    def histogram(self, name: str, **labels) -> Optional[Dict[str, object]]:
        """Snapshot of one histogram series, or ``None``."""
        with self._lock:
            entry = self._metrics.get(name)
            if entry is None or entry[0] != HISTOGRAM:
                return None
            series = entry[1].get(_label_key(labels))
            if series is None:
                return None
            return {
                "buckets": list(zip(series.buckets, series.bucket_counts)),
                "sum": series.sum,
                "count": series.count,
            }

    def counters(self) -> Dict[str, float]:
        """Flat snapshot of every *unlabeled* counter series.

        This is the view the :mod:`repro.rtl.instrument` compat shim (and
        ``GET /healthz``) exposes: the historical instrument registry was
        exactly a name -> int map, so the shim's ``snapshot``/``delta``
        contract survives unchanged.
        """
        with self._lock:
            out = {}
            for name, (kind, series_map) in self._metrics.items():
                if kind != COUNTER:
                    continue
                series = series_map.get(())
                if series is not None:
                    out[name] = (int(series.value)
                                 if series.value == int(series.value)
                                 else series.value)
            return out

    def snapshot(self) -> Dict[str, Dict[str, object]]:
        """Structured snapshot of the whole registry (all kinds, all labels)."""
        with self._lock:
            out: Dict[str, Dict[str, object]] = {}
            for name, (kind, series_map) in self._metrics.items():
                rendered = {}
                for key, series in series_map.items():
                    label_str = ",".join(f"{k}={v}" for k, v in key)
                    if kind == HISTOGRAM:
                        rendered[label_str] = {"sum": series.sum,
                                               "count": series.count}
                    else:
                        rendered[label_str] = series.value
                out[name] = {"kind": kind, "series": rendered}
            return out

    def reset(self) -> None:
        """Drop every series (tests only — production counters are monotonic)."""
        with self._lock:
            self._metrics.clear()


#: The process-global default registry.
REGISTRY = MetricsRegistry()


def _format_value(value: float) -> str:
    if value == int(value):
        return str(int(value))
    return repr(value)


def _format_labels(key: LabelKey, extra: Iterable[Tuple[str, str]] = ()
                   ) -> str:
    pairs = list(key) + list(extra)
    if not pairs:
        return ""
    body = ",".join(
        '{}="{}"'.format(k, str(v).replace("\\", r"\\").replace('"', r"\""))
        for k, v in pairs)
    return "{" + body + "}"


def render_prometheus(registry: Optional[MetricsRegistry] = None,
                      prefix: str = "repro_") -> str:
    """Prometheus text exposition (format 0.0.4) of a registry.

    Counter names get the conventional ``_total`` suffix; histograms
    render the standard ``_bucket``/``_sum``/``_count`` triple with
    cumulative ``le`` buckets (including ``+Inf``).
    """
    registry = registry if registry is not None else REGISTRY
    with registry._lock:
        lines: List[str] = []
        for name in sorted(registry._metrics):
            kind, series_map = registry._metrics[name]
            metric = prefix + name + ("_total" if kind == COUNTER else "")
            lines.append(f"# TYPE {metric} {kind}")
            for key in sorted(series_map):
                series = series_map[key]
                if kind == HISTOGRAM:
                    base = prefix + name
                    cumulative = 0
                    for bound, count in zip(series.buckets,
                                            series.bucket_counts):
                        cumulative += count
                        labels = _format_labels(key, [("le", repr(bound))])
                        lines.append(f"{base}_bucket{labels} {cumulative}")
                    labels = _format_labels(key, [("le", "+Inf")])
                    lines.append(f"{base}_bucket{labels} {series.count}")
                    lines.append(f"{base}_sum{_format_labels(key)} "
                                 f"{_format_value(series.sum)}")
                    lines.append(f"{base}_count{_format_labels(key)} "
                                 f"{series.count}")
                else:
                    lines.append(f"{metric}{_format_labels(key)} "
                                 f"{_format_value(series.value)}")
        return "\n".join(lines) + "\n"
